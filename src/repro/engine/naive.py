"""Brute-force possible-worlds query engine — the exactness oracle.

Evaluates a ``Q`` query in every possible world of the pvc-database
(instantiated to deterministic relations with semiring multiplicities) and
aggregates the per-world results into exact tuple-level probabilities.
Exponential in the number of variables, hence only usable on small
databases — which is precisely its job: it is the independent ground truth
the compiled engine is verified against in the test suite.

Per-world evaluation runs through the **deterministic mode of the shared
physical executor** (:mod:`repro.query.executor`): the query is planned
once and the same plan is executed on every enumerated world.  To keep
the oracle independent of the machinery it verifies, the plan is built
*without* logical rewrites and *without* hash-join extraction — ``σ(×…)``
is evaluated literally, as a filter over nested-loop products, the
Figure-4 reading.  The oracle therefore shares only the trivially-
structural lowering with the optimized engines, not the optimizer or the
join planner.
"""

from __future__ import annotations

from typing import Mapping

from repro.codegen import CodegenUnsupported, codegen_enabled, codegen_strict, kernel_for
from repro.db.pvc_table import PVCDatabase
from repro.db.relation import Relation
from repro.db.worlds import enumerate_database_worlds
from repro.errors import QueryValidationError
from repro.prob.distribution import Distribution
from repro.prob.space import ProbabilitySpace
from repro.query.ast import Query
from repro.query.executor import PreparedQuery, execute_deterministic, prepare
from repro.resilience.deadline import check_deadline

__all__ = ["NaiveEngine", "evaluate_deterministic"]


def evaluate_deterministic(
    query: Query, world: Mapping[str, Relation]
) -> Relation:
    """Evaluate a query on one deterministic world.

    Compatibility shim over the shared physical executor; callers that
    evaluate many worlds should :func:`~repro.query.executor.prepare` once
    and call :func:`~repro.query.executor.execute_deterministic` per world.
    """
    if not world:
        raise QueryValidationError("cannot evaluate a query on an empty world")
    catalog = {name: relation.schema for name, relation in world.items()}
    cardinalities = {name: len(relation) for name, relation in world.items()}
    semiring = next(iter(world.values())).semiring
    prepared = prepare(query, catalog, cardinalities, optimize=False)
    return execute_deterministic(prepared, world, semiring)


class NaiveEngine:
    """Exact query answering by explicit possible-world enumeration.

    ``codegen`` selects per-world execution: ``None`` (default) follows
    the ``REPRO_CODEGEN`` environment knob, ``True``/``False`` force the
    compiled kernels on or off.  With a kernel available the enumeration
    loop becomes tight: the plan is compiled once, bound once (hoisting
    deterministic tables, hash indexes and static subplans out of the
    loop), and each world runs one fused function — with answers
    bit-identical to the interpreted loop.
    """

    def __init__(self, db: PVCDatabase, codegen: bool | None = None):
        self.db = db
        self.codegen = codegen
        #: Diagnostics of the most recent run (``codegen_used``); the
        #: engine adapters surface these as ``QueryResult.stats``.
        self.last_run_info: dict = {}
        #: Memoized ``(prepared, bound)`` of the last successful bind.
        #: Binding hoists static tables and columnar layouts (O(rows));
        #: the bound plan records the epoch vector it snapshotted, so it
        #: is reused across runs exactly until a mutation touches one of
        #: its inputs.
        self._bound_cache: tuple | None = None

    def _bind(self, prepared: PreparedQuery):
        """A bound compiled plan for the whole-database world order, or
        ``None`` when codegen is off or the plan has no compiled form."""
        if not codegen_enabled(self.codegen):
            return None
        cached = self._bound_cache
        if (
            cached is not None
            and cached[0] is prepared
            and cached[1].is_current(self.db)
        ):
            return cached[1]
        kernel = kernel_for(prepared, self.db.semiring)
        if kernel is None:
            return None
        try:
            bound = kernel.bind(self.db, sorted(self.db.variables))
        except CodegenUnsupported:
            if codegen_strict():
                raise
            return None
        self._bound_cache = (prepared, bound)
        return bound

    def _prepare(self, query: Query) -> PreparedQuery:
        """Validate and plan once; every enumerated world reuses the plan.

        No logical rewrites, no hash-join extraction: the oracle
        evaluates the query as written (validation happens inside
        :func:`~repro.query.executor.prepare`).
        """
        return prepare(
            query,
            self.db.catalog(),
            self.db.cardinalities(),
            optimize=False,
            extract_joins=False,
        )

    def tuple_probabilities(self, query: Query) -> dict[tuple, float]:
        """``P[t ∈ answer]`` for every possible answer tuple ``t``.

        For aggregate queries the tuples carry *concrete* aggregate
        values, so e.g. ⟨'M&S', 15⟩ and ⟨'M&S', 50⟩ are distinct answers
        whose probabilities generally do not sum to 1.
        """
        prepared = self._prepare(query)
        semiring = self.db.semiring
        bound = self._bind(prepared)
        self.last_run_info = {"codegen_used": bound is not None}
        probabilities: dict[tuple, float] = {}
        if bound is not None:
            space = ProbabilitySpace(self.db.registry, semiring)
            for valuation, probability in space.enumerate_worlds(
                sorted(self.db.variables)
            ):
                check_deadline("possible-worlds enumeration")
                for values in bound.run_assignment(valuation.assignment):
                    probabilities[values] = (
                        probabilities.get(values, 0.0) + probability
                    )
            return probabilities
        for world, probability in enumerate_database_worlds(self.db):
            # Cooperative checkpoint per world: enumeration is the
            # exponential loop here, and a partial sweep is *not* a
            # sound answer (tuples and masses are both incomplete), so
            # the adapter converts this into QueryTimeoutError.
            check_deadline("possible-worlds enumeration")
            result = execute_deterministic(
                prepared, world, semiring, codegen=self.codegen
            )
            for values in result.support():
                probabilities[values] = probabilities.get(values, 0.0) + probability
        return probabilities

    def multiplicity_distribution(self, query: Query, values: tuple) -> Distribution:
        """Distribution of the multiplicity of one answer tuple."""
        prepared = self._prepare(query)
        semiring = self.db.semiring
        bound = self._bind(prepared)
        self.last_run_info = {"codegen_used": bound is not None}
        accum: dict = {}
        if bound is not None:
            values = tuple(values)
            space = ProbabilitySpace(self.db.registry, semiring)
            for valuation, probability in space.enumerate_worlds(
                sorted(self.db.variables)
            ):
                mapping = bound.run_assignment(valuation.assignment)
                mult = mapping.get(values, semiring.zero)
                accum[mult] = accum.get(mult, 0.0) + probability
            return Distribution(accum)
        for world, probability in enumerate_database_worlds(self.db):
            result = execute_deterministic(
                prepared, world, semiring, codegen=self.codegen
            )
            mult = result.multiplicity(values)
            accum[mult] = accum.get(mult, 0.0) + probability
        return Distribution(accum)

    def answer_relation_distribution(self, query: Query) -> Distribution:
        """Distribution over entire answer relations (as frozensets).

        The heaviest oracle: the exact distribution of the full query
        answer across worlds, used to validate joint behaviours.
        """
        prepared = self._prepare(query)
        semiring = self.db.semiring
        bound = self._bind(prepared)
        self.last_run_info = {"codegen_used": bound is not None}
        accum: dict = {}
        if bound is not None:
            space = ProbabilitySpace(self.db.registry, semiring)
            for valuation, probability in space.enumerate_worlds(
                sorted(self.db.variables)
            ):
                key = frozenset(bound.run_assignment(valuation.assignment))
                accum[key] = accum.get(key, 0.0) + probability
            return Distribution(accum)
        for world, probability in enumerate_database_worlds(self.db):
            result = execute_deterministic(
                prepared, world, semiring, codegen=self.codegen
            )
            key = frozenset(result.support())
            accum[key] = accum.get(key, 0.0) + probability
        return Distribution(accum)
