"""``python -m repro.analysis`` — the static-analysis CLI.

Typical invocations::

    python -m repro.analysis src/repro                  # gate (exit 1 on findings)
    python -m repro.analysis src/repro --format json    # machine-readable
    python -m repro.analysis src/repro --write-baseline # grandfather current findings
    python -m repro.analysis --list-rules

The committed baseline (``analysis-baseline.json`` in the current
directory, when present) is applied automatically; ``--no-baseline``
shows the ungated truth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.report import EXIT_USAGE, report
from repro.analysis.runner import analyze_paths, default_checkers

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Self-hosted static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--json-output", metavar="PATH", default=None,
        help="also write the JSON report to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--rules", metavar="RULE[,RULE...]", default=None,
        help="restrict reporting to the named rule ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every checker and its rule ids, then exit",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print suppressed and baselined findings",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    checkers = default_checkers()
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.name}:")
            for rule in checker.rules:
                print(f"  {rule}")
        print("framework:")
        for rule in ("parse-error", "suppression-unused", "baseline-stale"):
            print(f"  {rule}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = Path(DEFAULT_BASELINE)
        if candidate.exists():
            baseline_path = str(candidate)
    baseline = None
    if baseline_path is not None and not args.no_baseline:
        if args.write_baseline:
            pass  # rewritten below from the raw findings
        else:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(
                    f"repro.analysis: cannot load baseline "
                    f"{baseline_path}: {exc}",
                    file=sys.stderr,
                )
                return EXIT_USAGE

    rules = None
    if args.rules is not None:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]

    result = analyze_paths(
        args.paths, checkers=checkers, baseline=baseline, rules=rules
    )

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(result.findings, target)
        print(
            f"repro.analysis: wrote {len(result.findings)} grandfathered "
            f"finding(s) to {target}; edit each entry's 'why' before "
            f"committing"
        )
        return 0

    return report(
        result,
        format=args.format,
        json_output=args.json_output,
        verbose=args.verbose,
    )


if __name__ == "__main__":
    raise SystemExit(main())
