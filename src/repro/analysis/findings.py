"""Finding records — the one result type every checker produces.

A :class:`Finding` pins a rule violation to a file and line.  Findings
are plain frozen dataclasses so they sort, dedupe, compare across runs
(the baseline mechanism matches on :meth:`Finding.baseline_key`) and
serialise to JSON without any ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities, most severe first.  ``error`` findings gate
#: CI; ``warning`` findings (unused suppressions, stale baseline
#: entries) gate CI too — hygiene rots fastest when it is advisory —
#: but are reported separately so a human can triage at a glance.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``file:line``.

    ``message`` is the human-readable sentence; ``rule_id`` is the
    machine-readable handle used by inline suppressions
    (``# repro: allow(<rule_id>)``), ``--rules`` selection, and the
    committed baseline.
    """

    file: str
    line: int
    rule_id: str
    severity: str = field(default="error", compare=False)
    message: str = field(default="", compare=True)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def baseline_key(self) -> tuple[str, str, str]:
        """The identity used for baseline matching.

        Deliberately excludes the line number: grandfathered findings
        must survive unrelated edits that shift code up or down, and a
        *new* instance of a baselined (file, rule, message) triple is
        indistinguishable from the old one moving — the baseline trades
        that blind spot for stability, which is the standard bargain.
        """
        return (self.file, self.rule_id, self.message)

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.severity}[{self.rule_id}] "
            f"{self.message}"
        )
