"""The line-delimited-JSON TCP protocol, including anytime streaming.

Each request is one JSON object on one line; each response line is a
JSON object with an ``"ok"`` flag.  Supported ``"op"`` values:

``ping``
    → ``{"ok": true, "pong": true}`` (connection liveness).
``stats``
    → ``{"ok": true, "stats": {...}}`` (same payload as ``GET /stats``).
``query``
    Same request fields as ``POST /query``; one response line with the
    encoded result.
``mutate``
    Same request fields as ``POST /mutate``; one response line with the
    applied mutation summary (``rows``, ``db_generation``).
``stream``
    The anytime path: the server iterates ``Session.run_iter`` and
    pushes one line per interval snapshot —
    ``{"ok": true, "snapshot": <encoded result>, "seq": n, ...}`` —
    monotonically tightening until convergence (or the spec's
    budget/time cap), then a terminal
    ``{"ok": true, "done": true, "snapshots": n}`` line.  Clients can
    stop reading (or close) whenever the current interval is good
    enough; soundness is per-snapshot.

A malformed or failing request yields a single
``{"ok": false, "error": {"type": ..., "message": ...}}`` line (with
``retry_after`` when the server shed the request) and the connection
stays open for the next line — errors never kill the read loop.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ReproError
from repro.resilience.faults import fault_point

__all__ = ["handle_connection", "MAX_LINE_BYTES"]

#: One request line may be at most this long.
MAX_LINE_BYTES = 16 * 1024 * 1024


def _error_line(exc: BaseException) -> dict:
    error = {"type": type(exc).__name__, "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"ok": False, "error": error}


async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(json.dumps(payload).encode("utf-8") + b"\n")
    await writer.drain()


async def _serve_line(server, writer: asyncio.StreamWriter, line: bytes) -> None:
    from repro.server.app import ProtocolError, ServerOverloadedError

    try:
        payload = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        server.note_error()
        await _send(writer, _error_line(ProtocolError(f"bad JSON line: {exc}")))
        return
    if not isinstance(payload, dict):
        server.note_error()
        await _send(
            writer,
            _error_line(
                ProtocolError(
                    f"request must be a JSON object, "
                    f"got {type(payload).__name__}"
                )
            ),
        )
        return
    op = payload.get("op", "query")
    try:
        # An injected io fault escapes to the connection loop's generic
        # handler, which answers with a structured error line and keeps
        # the loop alive.
        fault_point("server.tcp.line")
        if op == "ping":
            await _send(writer, {"ok": True, "pong": True})
        elif op == "stats":
            await _send(writer, {"ok": True, "stats": server.stats()})
        elif op == "query":
            response = await server.execute(payload)
            await _send(writer, {"ok": True, **response})
        elif op == "mutate":
            response = await server.mutate(payload)
            await _send(writer, {"ok": True, **response})
        elif op == "stream":
            count = 0
            stream = server.execute_stream(payload)
            try:
                async for item in stream:
                    await _send(writer, {"ok": True, **item})
                    count += 1
            finally:
                # Explicit aclose: when the client vanishes mid-stream
                # the generator's cleanup must run *now* (stopping the
                # producer thread and only then releasing the tenant
                # lock), not whenever GC finalises the generator.
                await stream.aclose()
            await _send(writer, {"ok": True, "done": True, "snapshots": count})
        else:
            raise ProtocolError(
                f"unknown op {op!r}; expected ping, stats, query, mutate "
                f"or stream"
            )
    except ServerOverloadedError as exc:
        server.note_error()
        await _send(writer, _error_line(exc))
    except (ReproError, TypeError, ValueError, KeyError) as exc:
        server.note_error()
        await _send(writer, _error_line(exc))


async def handle_connection(
    server, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one TCP client: a loop of request lines until it closes."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, ValueError, asyncio.LimitOverrunError):
                # ValueError: a line longer than the stream limit.
                break
            if not line:
                break
            if len(line) > MAX_LINE_BYTES:
                server.note_error()
                await _send(
                    writer,
                    _error_line(
                        ReproError(
                            f"request line exceeds {MAX_LINE_BYTES} bytes"
                        )
                    ),
                )
                continue
            if not line.strip():
                continue
            try:
                await _serve_line(server, writer, line)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: the loop must survive
                server.note_error()
                try:
                    await _send(writer, _error_line(exc))
                except (ConnectionError, OSError):
                    break
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
