"""The Engine protocol: three adapters, one QueryResult type — and the
serial-vs-parallel conformance matrix (every engine × worker count)."""

import pytest

from repro import (
    Engine,
    MonteCarloAdapter,
    NaiveAdapter,
    SproutAdapter,
    connect,
    count_,
    create_engine,
    sum_,
)
from repro.engine.base import select_engine_name
from repro.errors import CompilationError, QueryValidationError


@pytest.fixture
def session():
    s = connect(seed=3)
    t = s.table("R", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5),
        ("a", 20, 0.4),
        ("b", 30, 0.7),
    ]:
        t.insert((kind, value), p=p)
    return s


def grouped(s):
    return s.table("R").group_by("kind").agg(n=count_())


class TestProtocol:
    def test_adapters_satisfy_protocol(self, session):
        for name in ("sprout", "naive", "montecarlo"):
            assert isinstance(session.engine(name), Engine)

    def test_create_engine_dispatch(self, session):
        assert isinstance(create_engine("sprout", session.db), SproutAdapter)
        assert isinstance(create_engine("naive", session.db), NaiveAdapter)
        assert isinstance(
            create_engine("montecarlo", session.db), MonteCarloAdapter
        )
        with pytest.raises(QueryValidationError):
            create_engine("quantum", session.db)

    def test_adapters_are_cached_per_session(self, session):
        assert session.engine("naive") is session.engine("naive")


class TestResultParity:
    def test_exact_engines_agree_to_1e9(self, session):
        query = grouped(session)
        sprout = query.run(engine="sprout").tuple_probabilities()
        naive = query.run(engine="naive").tuple_probabilities()
        assert set(sprout) == set(naive)
        for key in naive:
            assert abs(sprout[key] - naive[key]) < 1e-9

    def test_montecarlo_converges(self, session):
        query = grouped(session)
        exact = query.run(engine="naive").tuple_probabilities()
        sampled = query.run(engine="montecarlo", samples=8000).tuple_probabilities()
        for key, probability in exact.items():
            assert sampled.get(key, 0.0) == pytest.approx(probability, abs=0.05)

    def test_all_engines_return_query_result_rows(self, session):
        query = session.table("R").select("kind")
        for name in ("sprout", "naive", "montecarlo"):
            result = query.run(engine=name)
            assert result.engine == name
            assert result.schema.attributes == ("kind",)
            for row in result:
                assert 0.0 <= row.probability() <= 1.0 + 1e-12

    def test_concrete_rows_reject_symbolic_accessors(self, session):
        result = session.table("R").select("kind").run(engine="naive")
        row = result.rows[0]
        assert row.probability() > 0  # precomputed, no compiler needed
        with pytest.raises(CompilationError):
            row.annotation_distribution()

    def test_naive_rejects_run_options(self, session):
        with pytest.raises(QueryValidationError):
            session.run(session.table("R").select("kind"), engine="naive", samples=10)

    def test_montecarlo_rejects_unknown_run_options(self, session):
        # In particular, an auto-fallback carrying sprout-only options must
        # fail with a library error, not a raw TypeError.
        with pytest.raises(QueryValidationError, match="samples"):
            session.run(
                session.table("R").select("kind"),
                engine="montecarlo",
                compute_probabilities=True,
            )

    def test_timings_report_engine_step(self, session):
        query = session.table("R").select("kind")
        assert "enumeration_seconds" in query.run(engine="naive").timings
        assert "sampling_seconds" in query.run(engine="montecarlo").timings
        sprout = query.run(engine="sprout").timings
        assert {"rewrite_seconds", "probability_seconds"} <= set(sprout)


class TestAutoSelection:
    def test_tractable_query_selects_sprout(self, session):
        name, classification = select_engine_name(
            session.db, grouped(session).build()
        )
        assert name == "sprout"
        assert classification.tractable

    def test_hard_query_degrades_to_guaranteed_approximation(self, session):
        # Repeating a base relation leaves Q_ind/Q_hie (Section 6); the
        # redesigned auto policy degrades to deterministic ε-bounds
        # instead of warning and sampling without a guarantee.
        import warnings

        from repro.query.ast import Product, Project, relation

        repeated = Project(Product(relation("R"), relation("R")), ["kind"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            name, classification = select_engine_name(session.db, repeated)
        assert name == "approx"
        assert not classification.tractable

    def test_hard_query_with_sample_spec_selects_montecarlo(self, session):
        from repro.engine.spec import EvalSpec
        from repro.query.ast import Product, Project, relation

        repeated = Project(Product(relation("R"), relation("R")), ["kind"])
        name, classification = select_engine_name(
            session.db, repeated, spec=EvalSpec(mode="sample")
        )
        assert name == "montecarlo"
        assert not classification.tractable


# -- the serial-vs-parallel conformance matrix --------------------------------

#: The worker grid of the conformance matrix.  Seeded results must be
#: identical across all three settings — 1 runs the sharded scheme
#: inline, 2 runs it on a real process pool, "auto" resolves to the
#: machine's CPU count.
WORKER_GRID = (1, 2, "auto")


def _zoo_session(seed=3):
    """A fresh seeded session per matrix cell (engines hold RNG state)."""
    s = connect(seed=seed)
    t = s.table("R", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5),
        ("a", 20, 0.4),
        ("b", 30, 0.7),
        ("b", 40, 0.2),
        ("c", 40, 0.9),
    ]:
        t.insert((kind, value), p=p)
    u = s.table("T", ["rkind", "label"])
    u.insert(("a", "hot"), p=0.6).insert(("b", "cold"), p=0.8)
    return s


def _queries(s):
    """The query zoo: projection, join, group-agg (COUNT and SUM),
    multi-tuple and single-tuple answers."""
    from repro.query.predicates import cmp_

    return {
        "project": s.table("R").select("kind"),
        "group_count": s.table("R").group_by("kind").agg(n=count_()),
        "group_sum": s.table("R").group_by("kind").agg(total=sum_("value")),
        "filtered": s.table("R").where(cmp_("value", "<=", 30)).select("kind"),
        "join": s.table("R")
        .join(s.table("T"), on=[("kind", "rkind")])
        .select("label"),
    }


def _fingerprint(result):
    """Tuples, probabilities and intervals, exactly as reported."""
    return [
        (row.values, row.probability().low, row.probability().high)
        for row in result
    ]


class TestSerialParallelConformance:
    """Every engine × workers ∈ {1, 2, "auto"} → identical answers.

    Exact identity — not approximate: the sharded Monte-Carlo scheme and
    the parallel compilation fan-out are bit-deterministic by
    construction, so the fingerprints (values, interval low, interval
    high) must match to the last bit.
    """

    @pytest.mark.parametrize("name", list(_queries(_zoo_session())))
    def test_sprout_matrix(self, name):
        fingerprints = []
        for workers in WORKER_GRID:
            s = _zoo_session()
            result = s.run(_queries(s)[name], engine="sprout", workers=workers)
            assert result.stats.get("parallel_fallback") is None
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    @pytest.mark.parametrize("name", list(_queries(_zoo_session())))
    def test_naive_matrix(self, name):
        fingerprints = []
        for workers in WORKER_GRID:
            s = _zoo_session()
            result = s.run(_queries(s)[name], engine="naive", workers=workers)
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    @pytest.mark.parametrize("name", ["project", "group_count", "join"])
    def test_approx_matrix(self, name):
        fingerprints = []
        for workers in WORKER_GRID:
            s = _zoo_session()
            result = s.run(
                _queries(s)[name],
                engine="approx",
                epsilon=0.01,
                workers=workers,
            )
            assert result.stats.get("parallel_fallback") is None
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    @pytest.mark.parametrize("name", ["project", "group_count", "filtered"])
    def test_montecarlo_sequential_matrix(self, name):
        fingerprints = []
        stats = []
        for workers in WORKER_GRID:
            s = _zoo_session(seed=17)
            result = s.run(
                _queries(s)[name],
                engine="montecarlo",
                workers=workers,
                epsilon=0.06,
            )
            assert result.stats.get("parallel_fallback") is None
            fingerprints.append(_fingerprint(result))
            stats.append(result.stats)
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]
        # The stopping decision itself is part of the conformance
        # guarantee: same rounds, same samples, regardless of workers.
        assert stats[0]["samples"] == stats[1]["samples"] == stats[2]["samples"]
        assert stats[0]["rounds"] == stats[1]["rounds"] == stats[2]["rounds"]

    @pytest.mark.parametrize("name", ["project", "group_sum"])
    def test_montecarlo_fixed_budget_matrix(self, name):
        fingerprints = []
        for workers in WORKER_GRID:
            s = _zoo_session(seed=23)
            result = s.run(
                _queries(s)[name],
                engine="montecarlo",
                samples=2048,
                workers=workers,
            )
            assert result.stats.get("parallel_fallback") is None
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_auto_engine_matrix(self):
        fingerprints = []
        for workers in WORKER_GRID:
            s = _zoo_session()
            result = s.run(
                _queries(s)["group_count"], engine="auto", workers=workers
            )
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_run_iter_snapshots_conform(self):
        """Anytime snapshots, not just final answers, match across the
        worker grid (Monte-Carlo sequential stopping)."""
        trajectories = []
        for workers in (1, 2):
            s = _zoo_session(seed=31)
            snaps = [
                _fingerprint(snapshot)
                for snapshot in s.run_iter(
                    _queries(s)["project"],
                    engine="montecarlo",
                    workers=workers,
                    epsilon=0.06,
                )
            ]
            trajectories.append(snaps)
        assert trajectories[0] == trajectories[1]

    def test_workers_validation_at_the_session(self):
        s = _zoo_session()
        with pytest.raises(QueryValidationError, match="workers"):
            s.run(_queries(s)["project"], engine="sprout", workers=0)
        with pytest.raises(QueryValidationError, match="workers"):
            s.run(_queries(s)["project"], engine="sprout", workers="many")

    def test_workers_alone_never_changes_the_answer_mode(self):
        """``workers`` is a pure execution knob: adding it to a bare
        Monte-Carlo run keeps the legacy fixed-budget point estimator
        (same default budget, same draws as the sharded serial run) —
        it must not flip the run into sequential-stopping mode."""
        s = _zoo_session(seed=41)
        legacy = s.run(_queries(s)["project"], engine="montecarlo")
        s2 = _zoo_session(seed=41)
        sharded = s2.run(_queries(s2)["project"], engine="montecarlo", workers=2)
        assert sharded.stats["samples"] == legacy.stats["samples"] == 1000
        assert "rounds" not in sharded.stats  # not sequential stopping
        s3 = _zoo_session(seed=41)
        serial_sharded = s3.run(
            _queries(s3)["project"], engine="montecarlo", workers=1
        )
        assert _fingerprint(sharded) == _fingerprint(serial_sharded)

    def test_explicit_exact_spec_still_rejected_by_montecarlo(self):
        """The exactness guard survives the workers knob: an explicit
        exact-mode request is an error, and adding ``workers=`` to it
        must not launder it into a sampled run."""
        from repro.engine.spec import EvalSpec

        s = _zoo_session()
        with pytest.raises(QueryValidationError, match="exact"):
            s.run(_queries(s)["project"], engine="montecarlo", mode="exact")
        with pytest.raises(QueryValidationError, match="exact"):
            s.run(
                _queries(s)["project"],
                engine="montecarlo",
                mode="exact",
                workers=2,
            )
        with pytest.raises(QueryValidationError, match="exact"):
            s.run(_queries(s)["project"], engine="montecarlo", spec="exact")
        with pytest.raises(QueryValidationError, match="exact"):
            s.run(
                _queries(s)["project"],
                engine="montecarlo",
                spec=EvalSpec(mode="exact", epsilon=0.2, workers=2),
            )
        with pytest.raises(QueryValidationError, match="exact"):
            # The all-defaults spec object is an exact request too.
            s.run(_queries(s)["project"], engine="montecarlo", spec=EvalSpec())
        # One spelling is irreducibly ambiguous: EvalSpec(mode="exact",
        # workers=2) is *value-identical* to EvalSpec(workers=2) — exact
        # is the default mode — so it resolves as a pure-execution spec
        # and shards the legacy estimator rather than raising.
        ambiguous = s.run(
            _queries(s)["project"],
            engine="montecarlo",
            spec=EvalSpec(mode="exact", workers=2),
        )
        assert ambiguous.stats["samples"] == 1000

    def test_mode_override_beats_base_spec_mode(self):
        """A ``mode=`` override applies before the exactness guard: a
        workers-only (or even "exact") base spec overridden to "sample"
        is a valid Monte-Carlo request."""
        from repro.engine.spec import EvalSpec

        s = _zoo_session(seed=7)
        r = s.run(
            _queries(s)["project"],
            engine="montecarlo",
            spec=EvalSpec(workers=2),
            mode="sample",
        )
        assert "rounds" in r.stats  # sequential stopping engaged
        s2 = _zoo_session(seed=7)
        r2 = s2.run(
            _queries(s2)["project"],
            engine="montecarlo",
            spec="exact",
            mode="sample",
        )
        assert "rounds" in r2.stats

    def test_workers_only_spec_object_runs_legacy_estimator(self):
        """``spec=EvalSpec(workers=2)`` is pure execution, not an exact
        request: it shards the legacy fixed-budget estimator."""
        from repro.engine.spec import EvalSpec

        s = _zoo_session(seed=13)
        r = s.run(
            _queries(s)["project"],
            engine="montecarlo",
            spec=EvalSpec(workers=2),
        )
        assert r.stats["samples"] == 1000
        assert "rounds" not in r.stats
