"""Query engines: compiled (SPROUT-style), brute-force, and Monte-Carlo.

* :class:`~repro.engine.sprout.SproutEngine` — the paper's architecture:
  Figure-4 rewriting followed by d-tree compilation (exact, efficient on
  tractable queries).
* :class:`~repro.engine.naive.NaiveEngine` — explicit possible-world
  enumeration (exact, exponential; the test oracle).
* :class:`~repro.engine.montecarlo.MonteCarloEngine` — sampling baseline
  in the spirit of MCDB.

All three are also available behind the uniform
:class:`~repro.engine.base.Engine` protocol (adapters returning the same
:class:`~repro.engine.sprout.QueryResult` type), which is what the
:class:`~repro.session.Session` facade dispatches on.
"""

from repro.engine.base import (
    ENGINE_NAMES,
    CompilationCache,
    Engine,
    MonteCarloAdapter,
    NaiveAdapter,
    SproutAdapter,
    create_engine,
    select_engine_name,
)
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine, evaluate_deterministic
from repro.engine.sprout import QueryResult, ResultRow, SproutEngine

__all__ = [
    "SproutEngine",
    "QueryResult",
    "ResultRow",
    "NaiveEngine",
    "evaluate_deterministic",
    "MonteCarloEngine",
    "Engine",
    "ENGINE_NAMES",
    "CompilationCache",
    "SproutAdapter",
    "NaiveAdapter",
    "MonteCarloAdapter",
    "create_engine",
    "select_engine_name",
]
