"""Cross-operator CSE: shared work is emitted — and evaluated — once."""

from __future__ import annotations

from collections import Counter

from repro.algebra.expressions import SConst, Var
from repro.algebra.semiring import BOOLEAN
from repro.codegen import compile_plan
from repro.db.pvc_table import PVCDatabase
from repro.db.worlds import enumerate_database_worlds
from repro.prob.variables import VariableRegistry
from repro.query.ast import Project, Select, Union, relation
from repro.query.executor import prepare
from repro.query.predicates import cmp_


def shared_subplan_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "b"])
    reg.bernoulli("x", 0.5)
    r.add((1, 10), Var("x"))
    r.add((2, 20), SConst(True))
    return db


def shared_subplan_query():
    """A union whose two branches are the *same* subplan."""
    branch = Select(relation("R"), cmp_("b", ">", 5))
    return Union(branch, branch)


class TestSharedSubplans:
    def test_shared_block_evaluated_once(self):
        db = shared_subplan_db()
        query = shared_subplan_query()
        prepared = prepare(
            query, db.catalog(), db.cardinalities(), optimize=False
        )
        kernel = compile_plan(prepared.plan, db.semiring)
        for world, _ in enumerate_database_worlds(db):
            per_world: Counter = Counter()
            kernel.execute(world, trace=lambda key: per_world.update([key]))
            # Every block — including the subplan both union branches
            # consume — fires exactly once per world.
            assert per_world, "trace hook never fired"
            assert set(per_world.values()) == {1}, per_world

    def test_source_labels_shared_temps(self):
        db = shared_subplan_db()
        prepared = prepare(
            shared_subplan_query(),
            db.catalog(),
            db.cardinalities(),
            optimize=False,
        )
        kernel = compile_plan(prepared.plan, db.semiring)
        assert "(shared x2)" in kernel.source
        assert "statics / CSE temps" in kernel.source

    def test_trace_labels_cover_all_blocks(self):
        db = shared_subplan_db()
        prepared = prepare(
            shared_subplan_query(),
            db.catalog(),
            db.cardinalities(),
            optimize=False,
        )
        kernel = compile_plan(prepared.plan, db.semiring)
        fired: list = []
        world, _ = next(iter(enumerate_database_worlds(db)))
        kernel.execute(world, trace=fired.append)
        assert set(fired) <= set(kernel.trace_labels)


class TestSharedIndexes:
    def test_hash_index_sites_deduplicated(self):
        """Two joins probing the same build side share one index site."""
        from repro.query.ast import Product
        from repro.query.predicates import eq

        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=BOOLEAN)
        r = db.create_table("R", ["a", "b"])
        s = db.create_table("S", ["c", "d"])
        reg.bernoulli("x", 0.5)
        r.add((1, 1), Var("x"))
        r.add((2, 2), SConst(True))
        s.add((1, "p"), SConst(True))
        s.add((2, "q"), SConst(True))
        join = Project(
            Select(Product(relation("R"), relation("S")), eq("b", "c")),
            ["a", "d"],
        )
        query = Union(join, join)
        prepared = prepare(query, db.catalog(), db.cardinalities())
        kernel = compile_plan(prepared.plan, db.semiring)
        site_keys = [site[0] for site in kernel.index_sites]
        assert len(site_keys) == len(set(site_keys))
