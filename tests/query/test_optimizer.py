"""Tests for the rule-registry logical optimizer (stage 1 of step I)."""

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase, Schema
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    lit,
    relation,
)
from repro.query.optimizer import (
    DEFAULT_RULES,
    MAX_PASSES,
    fold_constant_predicates,
    merge_selections,
    optimize,
    optimize_traced,
    pushdown_selections,
)

CATALOG = {
    "R": Schema(["a", "b", "c"]),
    "S": Schema(["d", "e"]),
}


def count_nodes(query, kind):
    return sum(1 for node in query.walk() if isinstance(node, kind))


class TestMergeSelectionDedup:
    """Regression: σ_φ(σ_φ(Q)) must not duplicate atoms (→ σ_φ(Q))."""

    def test_identical_cascaded_selections_dedupe(self):
        phi = eq("a", 1)
        query = Select(Select(relation("R"), phi), phi)
        merged = merge_selections(query)
        assert isinstance(merged, Select)
        assert not isinstance(merged.child, Select)
        assert len(merged.predicate.atoms()) == 1

    def test_partial_overlap_dedupes_shared_atoms(self):
        inner = conj(eq("a", 1), cmp_("b", "<", 3))
        outer = conj(eq("a", 1), cmp_("c", ">=", 2))
        merged = merge_selections(Select(Select(relation("R"), inner), outer))
        atoms = merged.predicate.atoms()
        assert len(atoms) == 3
        assert len(set(atoms)) == 3

    def test_structural_equality_of_atoms(self):
        # Distinct-but-equal Comparison objects count as duplicates.
        query = Select(Select(relation("R"), eq("a", 1)), eq("a", 1))
        merged = merge_selections(query)
        assert len(merged.predicate.atoms()) == 1

    def test_no_change_preserves_identity(self):
        query = Select(relation("R"), eq("a", 1))
        assert merge_selections(query) is query


class TestConstantFolding:
    def test_true_literal_atoms_dropped(self):
        query = Select(relation("R"), conj(cmp_(lit(1), "<", lit(2)), eq("a", 1)))
        folded = fold_constant_predicates(query, CATALOG)
        assert len(folded.predicate.atoms()) == 1

    def test_all_true_atoms_remove_selection(self):
        query = Select(relation("R"), cmp_(lit(1), "<", lit(2)))
        folded = fold_constant_predicates(query, CATALOG)
        assert isinstance(folded, BaseRelation)

    def test_false_atom_collapses_predicate(self):
        query = Select(
            relation("R"), conj(eq("a", 1), cmp_(lit(2), "<", lit(1)))
        )
        folded = fold_constant_predicates(query, CATALOG)
        assert len(folded.predicate.atoms()) == 1
        atom = folded.predicate.atoms()[0]
        assert not atom.op(atom.left.value, atom.right.value)

    def test_reflexive_equality_kept(self):
        # A = A is NOT statically true: NaN values break reflexivity at
        # runtime, so the atom must survive folding.
        query = Select(relation("R"), conj(eq("a", "a"), eq("b", 2)))
        folded = fold_constant_predicates(query, CATALOG)
        assert len(folded.predicate.atoms()) == 2


class TestSelectionPushdown:
    def test_through_product(self):
        query = Select(
            Product(relation("R"), relation("S")),
            conj(eq("a", 1), eq("d", 2), eq("a", "d")),
        )
        pushed = pushdown_selections(query, CATALOG)
        # The join atom stays above, the per-side atoms move below.
        assert isinstance(pushed, Select)
        assert len(pushed.predicate.atoms()) == 1
        product = pushed.child
        assert isinstance(product, Product)
        assert isinstance(product.left, Select)
        assert isinstance(product.right, Select)

    def test_through_union(self):
        query = Select(Union(relation("R"), relation("R")), eq("a", 1))
        pushed = pushdown_selections(query, CATALOG)
        assert isinstance(pushed, Union)
        assert isinstance(pushed.left, Select)
        assert isinstance(pushed.right, Select)

    def test_through_extend_rewrites_target(self):
        query = Select(Extend(relation("R"), "a2", "a"), eq("a2", 1))
        pushed = pushdown_selections(query, CATALOG)
        assert isinstance(pushed, Extend)
        atom = pushed.child.predicate.atoms()[0]
        assert atom.left.name == "a"

    def test_through_projection(self):
        query = Select(Project(relation("R"), ["a", "b"]), eq("a", 1))
        pushed = pushdown_selections(query, CATALOG)
        assert isinstance(pushed, Project)
        assert isinstance(pushed.child, Select)

    def test_through_groupagg_on_keys_only(self):
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "b")])
        query = Select(agg, conj(eq("a", 1), cmp_("t", ">=", 5)))
        pushed = pushdown_selections(query, CATALOG)
        # a=1 moves below the $, t>=5 (an aggregation attribute) stays above.
        assert isinstance(pushed, Select)
        assert [a.left.name for a in pushed.predicate.atoms()] == ["t"]
        assert isinstance(pushed.child, GroupAgg)
        assert isinstance(pushed.child.child, Select)


class TestFixpoint:
    def test_trace_reports_fired_rules(self):
        query = Select(
            Select(
                Product(relation("R"), relation("S")),
                conj(eq("a", "d"), eq("a", 1)),
            ),
            eq("a", 1),
        )
        optimized, trace = optimize_traced(query, CATALOG)
        names = {firing.name for firing in trace}
        assert "merge-selections" in names
        assert "pushdown-selections" in names
        assert all(firing.pass_no <= MAX_PASSES for firing in trace)

    def test_converges_well_before_pass_limit(self):
        query = Project(
            Select(
                Product(relation("R"), Extend(relation("S"), "d2", "d")),
                conj(eq("a", "d"), eq("d2", 2), cmp_(lit(1), "<", lit(2))),
            ),
            ["b"],
        )
        _, trace = optimize_traced(query, CATALOG)
        assert max((f.pass_no for f in trace), default=0) < MAX_PASSES - 1

    def test_noop_query_has_empty_trace(self):
        optimized, trace = optimize_traced(relation("R"), CATALOG)
        assert optimized == relation("R")
        assert trace == ()

    def test_registry_is_named(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert names == [
            "fold-constants",
            "merge-selections",
            "pushdown-selections",
            "collapse-projections",
            "pushdown-projections",
        ]


class TestOptimizedEquivalence:
    """Optimizer output evaluates to the same probabilities as the input."""

    def db(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=BOOLEAN)
        r = db.create_table("R", ["a", "b", "c"])
        for i, row in enumerate([(1, 1, 5), (1, 2, 7), (2, 2, 3)]):
            reg.bernoulli(f"r{i}", 0.4 + 0.1 * i)
            r.add(row, Var(f"r{i}"))
        s = db.create_table("S", ["d", "e"])
        for i, row in enumerate([(1, 9), (2, 8)]):
            reg.bernoulli(f"s{i}", 0.5)
            s.add(row, Var(f"s{i}"))
        return db

    @pytest.mark.parametrize(
        "query",
        [
            Select(Select(relation("R"), eq("a", 1)), eq("a", 1)),
            Select(
                Product(relation("R"), relation("S")),
                conj(eq("a", "d"), eq("b", 2), cmp_(lit(1), "<=", lit(1))),
            ),
            Select(Extend(relation("R"), "a2", "a"), eq("a2", 1)),
            Select(Union(relation("R"), relation("R")), cmp_("b", "<=", 1)),
            Select(
                GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "c")]),
                conj(eq("a", 1), cmp_("t", ">=", 5)),
            ),
        ],
        ids=["dup-select", "join-mixed", "extend", "union", "groupagg"],
    )
    def test_probabilities_preserved(self, query):
        db = self.db()
        optimized = optimize(query, db.catalog())
        exact = NaiveEngine(db).tuple_probabilities(query)
        fast = SproutEngine(db).run(optimized).tuple_probabilities()
        assert set(exact) == set(fast)
        for key in exact:
            assert fast[key] == pytest.approx(exact[key], abs=1e-9)
