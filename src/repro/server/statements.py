"""The server-wide prepared-statement cache.

Keyed on *normalised query text* (the edgedb idiom: one shared compiled
cache in front of per-connection state): when tenant B sends the same
SQL tenant A already ran, the parse is skipped here, the optimised
physical plan is reused via the shared
:class:`~repro.engine.base.PlanCache`, and the compiled distributions
come out of the shared :class:`~repro.engine.base.CompilationCache` —
the whole compile pipeline collapses to cache lookups.

Normalisation is deliberately conservative — textual, lossless, and
quote-aware: runs of whitespace *outside* string literals collapse to a
single space and trailing semicolons are dropped, while quoted literals
are preserved byte-for-byte (two queries differing only inside a string
constant must never collide).  Keyword case is **not** folded, so
``SELECT`` and ``select`` are distinct statements; the cache trades a
few extra misses for guaranteed semantic identity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import QueryValidationError
from repro.query.ast import Query
from repro.query.sql import parse_sql

__all__ = ["normalise_statement", "PreparedStatement", "StatementCache"]


def normalise_statement(text: str) -> str:
    """The cache key of a SQL string (see the module docstring)."""
    if not isinstance(text, str):
        raise QueryValidationError(
            f"statement must be a SQL string, got {type(text).__name__}"
        )
    out: list[str] = []
    pending_space = False
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            # Copy the quoted literal verbatim; a doubled '' stays inside.
            j = i + 1
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(text[i : min(j + 1, n)])
            i = j + 1
        elif ch.isspace():
            pending_space = True
            i += 1
        else:
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(ch)
            i += 1
    key = "".join(out)
    while key.endswith(";"):
        key = key[:-1].rstrip()
    return key


@dataclass
class PreparedStatement:
    """One cached statement: its normalised text and parsed query AST."""

    key: str
    query: Query
    uses: int = 1


class StatementCache:
    """Bounded LRU from normalised SQL text to parsed query ASTs.

    Thread-safe (the server parses on executor threads).  Counters
    mirror :class:`~repro.engine.base.CompilationCache`: ``hits`` are
    cross-request (and, on a shared server, cross-tenant) statement
    reuses, ``evictions`` count entries dropped past ``max_entries``.
    Parse errors propagate to the caller and cache nothing.
    """

    #: Lock discipline, enforced statically by the ``locks`` checker of
    #: ``repro.analysis``: counters and the LRU map mutate only under
    #: ``self._lock``.
    _shared_state_ = {
        "_lock": ("hits", "misses", "evictions", "_statements"),
    }

    def __init__(self, max_entries: int | None = 256):
        if max_entries is not None and max_entries <= 0:
            raise QueryValidationError(
                f"max_entries must be a positive integer or None, "
                f"got {max_entries!r}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._statements: OrderedDict[str, PreparedStatement] = OrderedDict()
        self._lock = threading.RLock()

    def get_or_parse(self, text: str, parser=parse_sql):
        """``(query, hit)`` for ``text``, parsing (and caching) on miss."""
        key = normalise_statement(text)
        with self._lock:
            entry = self._statements.get(key)
            if entry is not None:
                self.hits += 1
                entry.uses += 1
                self._statements.move_to_end(key)
                return entry.query, True
            query = parser(key)
            self.misses += 1
            self._statements[key] = PreparedStatement(key, query)
            if self.max_entries is not None:
                while len(self._statements) > self.max_entries:
                    self._statements.popitem(last=False)
                    self.evictions += 1
            return query, False

    def clear(self) -> None:
        with self._lock:
            self._statements.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._statements),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._statements)

    def __repr__(self):
        return (
            f"StatementCache({len(self)} entries, {self.hits} hits, "
            f"{self.misses} misses, {self.evictions} evictions)"
        )
