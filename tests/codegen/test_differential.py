"""Compiled kernels vs the interpreter, world by world.

The interpreter (:mod:`repro.query.executor`, deterministic mode) is the
conformance oracle: on every enumerated world the kernel must return the
same ``{values: multiplicity}`` mapping — equal as a dict *and* in the
same insertion order, because downstream fingerprints serialise rows in
that order.
"""

from __future__ import annotations

import pickle

import pytest

from repro.codegen import compile_plan, kernel_for
from repro.db.worlds import enumerate_database_worlds
from repro.prob.space import ProbabilitySpace
from repro.query.executor import execute_deterministic, prepare


def _prepare(db, query):
    return prepare(query, db.catalog(), db.cardinalities(), optimize=False)


def _interpreted(prepared, world, semiring):
    result = execute_deterministic(prepared, world, semiring, codegen=False)
    return list(result.tuples())


class TestKernelConformance:
    def test_every_world_bit_identical(self, db, query):
        prepared = _prepare(db, query)
        kernel = compile_plan(prepared.plan, db.semiring)
        for world, _ in enumerate_database_worlds(db):
            expected = _interpreted(prepared, world, db.semiring)
            actual = list(kernel.execute(world).items())
            assert actual == expected  # content AND insertion order

    def test_pickled_kernel_conforms(self, db, query):
        prepared = _prepare(db, query)
        kernel = pickle.loads(pickle.dumps(compile_plan(prepared.plan, db.semiring)))
        for world, _ in enumerate_database_worlds(db):
            expected = _interpreted(prepared, world, db.semiring)
            assert list(kernel.execute(world).items()) == expected

    def test_optimized_plans_compile_too(self, db, query):
        prepared = prepare(
            query, db.catalog(), db.cardinalities(), optimize=True
        )
        kernel = kernel_for(prepared, db.semiring)
        assert kernel is not None
        for world, _ in enumerate_database_worlds(db):
            expected = _interpreted(prepared, world, db.semiring)
            assert list(kernel.execute(world).items()) == expected


class TestBoundPlanConformance:
    def test_run_assignment_matches_interpreter(self, db, query):
        prepared = _prepare(db, query)
        kernel = compile_plan(prepared.plan, db.semiring)
        names = sorted(db.variables)
        bound = kernel.bind(db, names)
        space = ProbabilitySpace(db.registry, db.semiring)
        worlds = enumerate_database_worlds(db)
        for (world, p_world), (valuation, p_val) in zip(
            worlds, space.enumerate_worlds(names)
        ):
            assert p_world == pytest.approx(p_val)
            expected = _interpreted(prepared, world, db.semiring)
            actual = list(bound.run_assignment(valuation.assignment).items())
            assert actual == expected

    def test_statics_hoisted_once(self, db, query):
        """World-invariant blocks evaluate once across all worlds."""
        prepared = _prepare(db, query)
        kernel = compile_plan(prepared.plan, db.semiring)
        bound = kernel.bind(db, sorted(db.variables))
        space = ProbabilitySpace(db.registry, db.semiring)
        fired: list[str] = []
        for valuation, _ in space.enumerate_worlds(sorted(db.variables)):
            bound.run_assignment(valuation.assignment, trace=fired.append)
        # Static blocks (deterministic tables, their hash indexes,
        # static subplans) never appear in the per-world trace: they were
        # computed during bind(), before the first world ran.
        static_keys = {
            key for key in kernel.trace_labels if key in bound.statics
        }
        assert not (set(fired) & static_keys)
