"""Text and JSON reporters with CI-friendly exit codes.

Exit code contract: ``0`` — clean against suppressions and baseline;
``1`` — at least one reportable finding; ``2`` — the analyzer itself
could not run (bad usage, unreadable baseline).
"""

from __future__ import annotations

import json
import sys
from typing import TextIO

from repro.analysis.runner import AnalysisResult

__all__ = ["render_text", "render_json", "report"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose:
        for finding in result.suppressed:
            lines.append(f"{finding.render()}  [suppressed]")
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    counts = result.by_rule()
    summary = (
        f"{len(result.findings)} finding(s)"
        f" ({', '.join(f'{rule}: {n}' for rule, n in counts.items())})"
        if counts
        else "clean"
    )
    lines.append(
        f"repro.analysis: {summary} — {result.files_scanned} file(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.wall_seconds:.2f}s "
        f"[{', '.join(result.checkers)}]"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    return json.dumps(result.to_json(), indent=2, sort_keys=False)


def report(
    result: AnalysisResult,
    format: str = "text",
    stream: TextIO | None = None,
    json_output: str | None = None,
    verbose: bool = False,
) -> int:
    """Write the report; return the process exit code."""
    stream = sys.stdout if stream is None else stream
    if json_output is not None:
        with open(json_output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result) + "\n")
    if format == "json":
        stream.write(render_json(result) + "\n")
    else:
        stream.write(render_text(result, verbose=verbose) + "\n")
    return result.exit_code()
