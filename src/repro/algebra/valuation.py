"""Valuations ``ν : X → S`` and the homomorphisms they induce (Section 3).

A mapping of the variables into a concrete semiring ``S`` extends uniquely

* to a *semiring homomorphism* ``ν : K → S`` evaluating annotation
  expressions, and
* to a *monoid homomorphism* ``ν : K ⊗ M → M`` evaluating semimodule
  expressions,

with conditional expressions ``[Φ θ Ψ]`` evaluating to ``1_S``/``0_S``
per Equation (2).  Each valuation defines one possible world of a
pvc-database (Definition 6).
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.conditions import Compare
from repro.algebra.expressions import Expr, Prod, SConst, Sum, Var
from repro.algebra.semimodule import AggSum, MConst, Tensor
from repro.algebra.semiring import Semiring
from repro.errors import AlgebraError

__all__ = ["Valuation", "evaluate"]


class Valuation:
    """A variable assignment together with its target semiring.

    Calling the valuation on an expression evaluates it: semiring
    expressions yield elements of ``S``, semimodule expressions yield
    monoid values.

    >>> from repro.algebra import Var, BOOLEAN
    >>> nu = Valuation({"x": True, "y": False}, BOOLEAN)
    >>> nu(Var("x") + Var("y"))
    True
    """

    __slots__ = ("assignment", "semiring")

    def __init__(self, assignment: Mapping[str, object], semiring: Semiring):
        self.assignment = dict(assignment)
        self.semiring = semiring

    def __call__(self, expr: Expr):
        return evaluate(expr, self.assignment, self.semiring)

    def __getitem__(self, name: str):
        return self.semiring.coerce(self.assignment[name])

    def __contains__(self, name: str) -> bool:
        return name in self.assignment

    def __repr__(self):
        pairs = ", ".join(f"{k}→{v}" for k, v in sorted(self.assignment.items()))
        return f"Valuation({pairs}; {self.semiring.name})"


def evaluate(expr: Expr, assignment: Mapping[str, object], semiring: Semiring):
    """Evaluate ``expr`` under ``assignment`` into ``semiring``.

    Implements the semiring/monoid homomorphisms of Section 3 and the
    conditional-expression semantics of Equation (2).  Returns a semiring
    value for semiring expressions and a monoid value for semimodule
    expressions.
    """
    if isinstance(expr, Var):
        try:
            return semiring.coerce(assignment[expr.name])
        except KeyError:
            raise AlgebraError(
                f"valuation does not assign variable {expr.name!r}"
            ) from None
    if isinstance(expr, SConst):
        return semiring.coerce(expr.value)
    if isinstance(expr, Sum):
        result = semiring.zero
        for child in expr.children:
            result = semiring.add(result, evaluate(child, assignment, semiring))
        return result
    if isinstance(expr, Prod):
        result = semiring.one
        for child in expr.children:
            result = semiring.mul(result, evaluate(child, assignment, semiring))
            if result == semiring.zero:
                return result
        return result
    if isinstance(expr, Compare):
        left = evaluate(expr.left, assignment, semiring)
        right = evaluate(expr.right, assignment, semiring)
        return semiring.from_condition(expr.op(left, right))
    if isinstance(expr, MConst):
        return expr.value
    if isinstance(expr, Tensor):
        scalar = evaluate(expr.phi, assignment, semiring)
        inner = evaluate(expr.arg, assignment, semiring)
        return expr.monoid.act(scalar, inner, semiring)
    if isinstance(expr, AggSum):
        monoid = expr.monoid
        result = monoid.zero
        for child in expr.children:
            result = monoid.add(result, evaluate(child, assignment, semiring))
        return result
    raise AlgebraError(f"cannot evaluate expression of type {type(expr).__name__}")
