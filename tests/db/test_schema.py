"""Unit tests for schemas with aggregation-attribute tracking."""

import pytest

from repro.db.schema import Schema
from repro.errors import SchemaError


class TestConstruction:
    def test_basic(self):
        schema = Schema(["a", "b"])
        assert schema.index("b") == 1
        assert len(schema) == 2
        assert list(schema) == ["a", "b"]

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "a"])

    def test_aggregation_marking(self):
        schema = Schema(["a", "total"], ["total"])
        assert schema.is_aggregation("total")
        assert not schema.is_aggregation("a")

    def test_unknown_aggregation_attr_rejected(self):
        with pytest.raises(SchemaError, match="not in schema"):
            Schema(["a"], ["b"])

    def test_unknown_index_raises(self):
        with pytest.raises(SchemaError, match="not in schema"):
            Schema(["a"]).index("b")

    def test_contains(self):
        assert "a" in Schema(["a"])
        assert "z" not in Schema(["a"])


class TestOperations:
    def test_project_keeps_order_and_markings(self):
        schema = Schema(["a", "b", "total"], ["total"])
        projected = schema.project(["total", "a"])
        assert projected.attributes == ("total", "a")
        assert projected.is_aggregation("total")

    def test_project_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).project(["z"])

    def test_extend(self):
        schema = Schema(["a"]).extend("b")
        assert schema.attributes == ("a", "b")

    def test_extend_aggregation(self):
        schema = Schema(["a"]).extend("g", aggregation=True)
        assert schema.is_aggregation("g")

    def test_extend_duplicate_rejected(self):
        with pytest.raises(SchemaError, match="already"):
            Schema(["a"]).extend("a")

    def test_concat(self):
        combined = Schema(["a"]).concat(Schema(["b", "g"], ["g"]))
        assert combined.attributes == ("a", "b", "g")
        assert combined.is_aggregation("g")

    def test_concat_overlap_rejected(self):
        with pytest.raises(SchemaError, match="rename"):
            Schema(["a"]).concat(Schema(["a"]))

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert Schema(["a"], ["a"]) != Schema(["a"])
        assert len({Schema(["a"]), Schema(["a"])}) == 1

    def test_repr_marks_aggregations(self):
        assert "g*" in repr(Schema(["a", "g"], ["g"]))
