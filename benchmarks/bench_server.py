"""Server throughput and tail latency under concurrent clients.

Boots the :class:`~repro.server.QueryServer` in-process on ephemeral
ports and drives it with ``N`` concurrent async clients, each issuing
``M`` requests drawn round-robin from the demo query zoo
(:data:`~repro.server.bootstrap.DEMO_QUERIES`: selection, projection,
join, Boolean aggregation, group-by aggregation).  Three series:

* ``cold`` — a fresh server, one client: every statement pays the full
  parse + plan + compile pipeline (the per-request cost floor);
* ``warm`` — the same zoo re-issued on warmed caches: the pipeline
  collapses to statement/plan/distribution cache hits;
* ``concurrent`` — a client sweep on warmed caches, measuring
  throughput (requests/s) and p50/p95/p99 latency as admission
  pressure grows.

Every series records the statement-cache hit rate observed at
``GET /stats``.  Note the machine matters: on a single-CPU container
concurrency adds scheduling overhead, not parallel speedup — the
committed reference JSON records its ``cpu_count``.

Flags: ``--smoke`` (trimmed sweep for CI), ``--clients N`` (cap the
sweep), ``--requests M`` (per-client request count), ``--json PATH``,
``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import asyncio
import os
import statistics
import sys
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro.server import DEMO_QUERIES, QueryServer, ServerClient, ServerConfig
from repro.server.bootstrap import demo_database


def _flag(args, name, default):
    for index, arg in enumerate(args):
        if arg == name and index + 1 < len(args):
            return int(args[index + 1])
        if arg.startswith(name + "="):
            return int(arg.split("=", 1)[1])
    return default


def client_sweep(argv=None) -> list[int]:
    args = sys.argv[1:] if argv is None else argv
    cap = _flag(args, "--clients", None)
    sweep = [1, 4] if smoke_mode(argv) else [1, 2, 4, 8, 16]
    if cap is not None:
        sweep = [n for n in sweep if n <= cap] or [cap]
    return sweep


def request_count(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    return _flag(args, "--requests", 5 if smoke_mode(argv) else 25)


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    return {
        "p50_ms": 1e3 * statistics.median(ordered),
        "p95_ms": 1e3 * pct(0.95),
        "p99_ms": 1e3 * pct(0.99),
        "max_ms": 1e3 * ordered[-1],
    }


async def _drive_client(host, port, tcp_port, tenant, requests) -> list[float]:
    """One client's request loop; returns per-request latencies."""
    latencies = []
    async with ServerClient(host, port, tcp_port=tcp_port, tenant=tenant) as c:
        for i in range(requests):
            sql = DEMO_QUERIES[i % len(DEMO_QUERIES)]
            t0 = time.perf_counter()
            await c.query(sql)
            latencies.append(time.perf_counter() - t0)
    return latencies


async def _run_wave(server, clients: int, requests: int) -> dict:
    host, port = server.http_address
    _, tcp_port = server.tcp_address
    before = server.statements.stats()
    t0 = time.perf_counter()
    results = await asyncio.gather(*(
        _drive_client(host, port, tcp_port, f"tenant-{n}", requests)
        for n in range(clients)
    ))
    wall = time.perf_counter() - t0
    after = server.statements.stats()
    latencies = [latency for worker in results for latency in worker]
    lookups = (after["hits"] - before["hits"]) + (
        after["misses"] - before["misses"]
    )
    hit_rate = (
        (after["hits"] - before["hits"]) / lookups if lookups else 0.0
    )
    return {
        "requests": len(latencies),
        "wall_seconds": wall,
        "throughput_rps": len(latencies) / wall,
        "statement_hit_rate": hit_rate,
        **_percentiles(latencies),
    }


async def run_benchmark(report: BenchReport, argv) -> None:
    requests = request_count(argv)
    config = ServerConfig(
        port=0,
        threads=4,
        soft_limit=64,   # measure the un-degraded path
        hard_limit=256,
        seed=7,
    )
    async with QueryServer(demo_database(scale=1), config) as server:
        # Series 1: cold start — every statement pays the full pipeline.
        cold = await _run_wave(server, clients=1, requests=len(DEMO_QUERIES))
        report.add("cold", {"clients": 1}, **cold)

        # Series 2: warmed caches, one client.
        warm = await _run_wave(server, clients=1, requests=requests)
        report.add("warm", {"clients": 1}, **warm)

        # Series 3: concurrent clients on warmed caches.
        for clients in client_sweep(argv):
            wave = await _run_wave(server, clients=clients, requests=requests)
            report.add("concurrent", {"clients": clients}, **wave)

        stats = server.stats()
        report.config["server"] = {
            "threads": config.threads,
            "statement_cache": stats["statement_cache"],
            "plan_cache": stats["plan_cache"],
            "distribution_cache": {
                key: stats["distribution_cache"][key]
                for key in ("entries", "hits", "misses", "evictions")
            },
            "completed": stats["server"]["completed"],
        }


def main(argv=None) -> int:
    report = BenchReport(
        "server",
        cpu_count=os.cpu_count(),
        queries=len(DEMO_QUERIES),
        requests_per_client=request_count(argv),
    )
    asyncio.run(run_benchmark(report, argv))
    rows = [
        (
            point["series"],
            point["params"]["clients"],
            point["requests"],
            f"{point['throughput_rps']:.1f}",
            f"{point['p50_ms']:.1f}",
            f"{point['p95_ms']:.1f}",
            f"{point['p99_ms']:.1f}",
            f"{point['statement_hit_rate']:.2f}",
        )
        for point in report.points
    ]
    print_series(
        "server throughput / latency",
        ["series", "clients", "reqs", "rps", "p50ms", "p95ms", "p99ms", "stmt-hit"],
        rows,
    )
    report.finish(argv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
