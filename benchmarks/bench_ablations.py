"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures of the paper, but measurements of the two key ingredients the
paper's Section 5 discusses qualitatively:

* **Pruning** of conditional expressions (on/off) — the paper claims
  pruning is "particularly effective when the probability distributions
  have exponential size, such as in case of the SUM monoid";
* **Shannon variable-choice heuristic** — the paper uses
  most-occurrences and notes that "good choices can make the difference
  between polynomial and exponential size decision diagrams".
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, average_time, print_series, run_point
from repro.workloads.random_expr import ExprParams

PRUNING_PARAMS = ExprParams(
    left_terms=25,
    variables=9,
    clauses=2,
    literals=2,
    max_value=40,
    constant=20,
    theta="<=",
)

HEURISTIC_PARAMS = ExprParams(
    left_terms=25,
    variables=9,
    clauses=2,
    literals=2,
    max_value=5,
    constant=3,
    theta="=",
    agg_left="MIN",
)

RUNS = 2
HEURISTICS = ["most-occurrences", "fewest-occurrences", "lexicographic"]


@pytest.mark.parametrize("agg", ["MIN", "MAX", "SUM", "COUNT"])
@pytest.mark.parametrize("pruning", [True, False], ids=["pruned", "unpruned"])
def bench_pruning(benchmark, agg, pruning):
    params = PRUNING_PARAMS.with_(agg_left=agg)
    benchmark.pedantic(
        average_time,
        args=(params, RUNS),
        kwargs={"pruning": pruning},
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("heuristic", HEURISTICS)
def bench_heuristics(benchmark, heuristic):
    benchmark.pedantic(
        average_time,
        args=(HEURISTIC_PARAMS, RUNS),
        kwargs={"heuristic": heuristic},
        rounds=1,
        iterations=1,
    )


def main():
    report = BenchReport("ablations")
    rows = []
    for agg in ["MIN", "MAX", "SUM", "COUNT"]:
        for pruning in (True, False):
            mean, stdev = run_point(
                PRUNING_PARAMS.with_(agg_left=agg),
                runs=RUNS,
                seed=1,
                pruning=pruning,
            )
            rows.append(
                (agg, "on" if pruning else "off",
                 f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}")
            )
            report.add("pruning", {"agg": agg, "pruning": pruning, "runs": RUNS},
                       mean=mean, stdev=stdev)
    print_series("Ablation — pruning on/off", ["agg", "pruning", "mean", "stdev"], rows)

    rows = []
    for heuristic in HEURISTICS:
        mean, stdev = run_point(
            HEURISTIC_PARAMS, runs=RUNS, seed=2, heuristic=heuristic
        )
        rows.append((heuristic, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
        report.add("heuristic", {"heuristic": heuristic, "runs": RUNS},
                   mean=mean, stdev=stdev)
    print_series(
        "Ablation — Shannon variable-choice heuristic",
        ["heuristic", "mean", "stdev"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
