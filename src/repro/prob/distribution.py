"""Finite discrete probability distributions (Section 2.1).

A distribution is represented by its set of ``(value, probability)`` pairs
with non-zero probabilities — exactly the paper's "size of a probability
distribution is the size of its set representation".  Values may be any
hashable objects: semiring elements, monoid values (including ``±∞`` for
MIN/MAX), or tuples of values for joint distributions.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from repro.errors import DistributionError
from repro.prob import kernels

__all__ = ["Distribution", "TOLERANCE"]

#: Numerical tolerance used when validating and comparing probabilities.
TOLERANCE = 1e-9


class Distribution:
    """An immutable finite discrete probability distribution.

    >>> d = Distribution({True: 0.3, False: 0.7})
    >>> d[True]
    0.3
    >>> d.support() == {True, False}
    True
    """

    __slots__ = ("_probs",)

    def __init__(self, probs: Mapping[Hashable, float] | Iterable[tuple]):
        if isinstance(probs, Mapping):
            items = probs.items()
        else:
            items = list(probs)
        cleaned: dict = {}
        for value, p in items:
            if p < -TOLERANCE:
                raise DistributionError(
                    f"negative probability {p} for value {value!r}"
                )
            if p <= TOLERANCE:
                continue
            cleaned[value] = cleaned.get(value, 0.0) + p
        total = sum(cleaned.values())
        if total > 1.0 + 1e-6:
            raise DistributionError(f"total probability {total} exceeds 1")
        if not cleaned:
            raise DistributionError("distribution has empty support")
        self._probs = cleaned

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_clean(cls, probs: dict) -> "Distribution":
        """Wrap an already-validated ``{value: probability}`` dict.

        Internal fast path for the vectorized kernels, which produce
        accumulated dicts with sub-tolerance entries already dropped;
        skips the per-item re-validation of ``__init__``.
        """
        if not probs:
            raise DistributionError("distribution has empty support")
        dist = cls.__new__(cls)
        dist._probs = probs
        return dist

    @classmethod
    def point(cls, value) -> "Distribution":
        """The deterministic distribution concentrated on ``value``."""
        return cls({value: 1.0})

    @classmethod
    def bernoulli(cls, p: float, *, one=True, zero=False) -> "Distribution":
        """A two-valued distribution: ``one`` w.p. ``p``, ``zero`` otherwise.

        With the default values this is the distribution of a Boolean
        random variable; ``bernoulli(p, one=1, zero=0)`` gives its
        naturals-semiring reduction (Table 1).
        """
        if not -TOLERANCE <= p <= 1 + TOLERANCE:
            raise DistributionError(f"Bernoulli parameter {p} outside [0, 1]")
        if p >= 1 - TOLERANCE:
            return cls.point(one)
        if p <= TOLERANCE:
            return cls.point(zero)
        return cls({one: p, zero: 1.0 - p})

    @classmethod
    def uniform(cls, values: Iterable[Hashable]) -> "Distribution":
        """The uniform distribution over distinct ``values``."""
        values = list(dict.fromkeys(values))
        if not values:
            raise DistributionError("uniform distribution over no values")
        p = 1.0 / len(values)
        return cls({v: p for v in values})

    @classmethod
    def mixture(cls, weighted: Iterable[tuple[float, "Distribution"]]) -> "Distribution":
        """The convex mixture ``Σ wᵢ · Dᵢ`` (Equation 10's outer sum)."""
        pairs = [
            (weight, dist._probs) for weight, dist in weighted if weight > TOLERANCE
        ]
        fast = kernels.mixture_dicts(pairs, tolerance=TOLERANCE)
        if fast is not None:
            total = sum(fast.values())
            if total > 1.0 + 1e-6:  # same guard as __init__
                raise DistributionError(f"total probability {total} exceeds 1")
            return cls._from_clean(fast)
        accum: dict = {}
        for weight, probs in pairs:
            for value, p in probs.items():
                accum[value] = accum.get(value, 0.0) + weight * p
        return cls(accum)

    # -- mapping interface --------------------------------------------------

    def __getitem__(self, value) -> float:
        return self._probs.get(value, 0.0)

    def get(self, value, default: float = 0.0) -> float:
        return self._probs.get(value, default)

    def items(self):
        return self._probs.items()

    def values(self):
        return self._probs.values()

    def support(self) -> set:
        """The set of values with non-zero probability."""
        return set(self._probs)

    def __iter__(self) -> Iterator:
        return iter(self._probs)

    def __len__(self) -> int:
        """Size of the distribution — the paper's ``|P|``."""
        return len(self._probs)

    def __contains__(self, value) -> bool:
        return value in self._probs

    # -- operations ---------------------------------------------------------

    def map(self, fn: Callable) -> "Distribution":
        """Push-forward along ``fn``: the distribution of ``fn(X)``.

        ``fn`` is called exactly once per support value; for large
        numeric image sets the collision accumulation is vectorized.
        """
        images = [fn(value) for value in self._probs]
        fast = kernels.bin_images(
            images, list(self._probs.values()), tolerance=TOLERANCE
        )
        if fast is not None:
            return Distribution._from_clean(fast)
        accum: dict = {}
        for image, p in zip(images, self._probs.values()):
            accum[image] = accum.get(image, 0.0) + p
        return Distribution(accum)

    def convolve(self, other: "Distribution", op: Callable) -> "Distribution":
        """Convolution with respect to ``op`` (Proposition 1, Eq. 1).

        For independent random variables ``x ~ self`` and ``y ~ other``,
        returns the distribution of ``op(x, y)``.  The sum ranges only
        over support pairs (Remark 1), so the cost is
        ``O(|self| · |other|)`` — evaluated by the vectorized kernels of
        :mod:`repro.prob.kernels` when the supports are numeric and
        ``op`` is a recognized arithmetic, and by the generic dict loop
        otherwise.
        """
        return self.convolve_with_spec(other, op, kernels.resolve_op(op))

    def convolve_with_spec(
        self, other: "Distribution", op: Callable, spec
    ) -> "Distribution":
        """Convolve with a pre-resolved kernel :class:`~repro.prob.kernels.OpSpec`.

        Used by the Eq. (4)-(10) wrappers, which know the semiring/monoid
        statically and skip per-call op recognition; ``spec=None`` selects
        the generic dict loop outright.
        """
        if spec is not None:
            fast = kernels.convolve_dicts(
                self._probs, other._probs, op, spec=spec, tolerance=TOLERANCE
            )
            if fast is not None:
                return Distribution._from_clean(fast)
        accum: dict = {}
        for a, pa in self._probs.items():
            for b, pb in other._probs.items():
                c = op(a, b)
                accum[c] = accum.get(c, 0.0) + pa * pb
        return Distribution(accum)

    def expectation(self) -> float:
        """Expected value, for numeric supports."""
        fast = kernels.expectation(self._probs)
        if fast is not None:
            return fast
        return sum(value * p for value, p in self._probs.items())

    def variance(self) -> float:
        """Variance, for numeric supports."""
        mean = self.expectation()
        return sum((value - mean) ** 2 * p for value, p in self._probs.items())

    def cdf(self, threshold) -> float:
        """``P[X ≤ threshold]``, for ordered supports."""
        return sum(p for value, p in self._probs.items() if value <= threshold)

    def quantile(self, q: float):
        """The smallest value ``v`` with ``P[X ≤ v] ≥ q`` (0 < q ≤ 1)."""
        if not 0.0 < q <= 1.0 + TOLERANCE:
            raise DistributionError(f"quantile level {q} outside (0, 1]")
        accumulated = 0.0
        for value in sorted(self._probs):
            accumulated += self._probs[value]
            if accumulated >= q - TOLERANCE:
                return value
        return max(self._probs)

    def condition(self, predicate: Callable) -> "Distribution":
        """The conditional distribution given ``predicate(X)``."""
        mass = self.probability_of(predicate)
        if mass <= TOLERANCE:
            raise DistributionError("conditioning on a null event")
        return Distribution(
            {
                value: p / mass
                for value, p in self._probs.items()
                if predicate(value)
            }
        )

    def total(self) -> float:
        """Total probability mass (1 up to numeric error)."""
        return sum(self._probs.values())

    def probability_of(self, predicate: Callable) -> float:
        """Total mass of values satisfying ``predicate``."""
        return sum(p for value, p in self._probs.items() if predicate(value))

    def almost_equals(self, other: "Distribution", tol: float = 1e-7) -> bool:
        """Pointwise comparison up to ``tol``."""
        keys = set(self._probs) | set(other._probs)
        return all(math.isclose(self[k], other[k], abs_tol=tol) for k in keys)

    def __eq__(self, other):
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.almost_equals(other, TOLERANCE)

    def __hash__(self):
        raise TypeError("distributions are not hashable; compare with almost_equals")

    def __repr__(self):
        def _sort_key(item):
            value = item[0]
            return (str(type(value)), str(value))

        pairs = ", ".join(
            f"({value!r}, {p:.6g})" for value, p in sorted(self.items(), key=_sort_key)
        )
        return f"Distribution({{{pairs}}})"
