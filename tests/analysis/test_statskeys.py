"""Fixture corpus for the stats/fingerprint key lint."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.checkers.statskeys import StatsKeyChecker
from repro.analysis.runner import AnalysisContext
from repro.analysis.source import SourceModule

CHECKERS = [StatsKeyChecker()]
OPTIONS = {"statskeys_include_all": True}
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

DECLARATIONS = """\
    DETERMINISTIC_STAT_KEYS = frozenset({"rows", "samples"})
    VOLATILE_STAT_KEYS = frozenset({"wall_seconds", "workers"})
"""


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


class TestUndeclaredKey:
    def test_flags_undeclared_subscript_write(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(stats):
        stats["surprise"] = 1
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-undeclared-key"]
        assert "'surprise'" in result.findings[0].message

    def test_passes_declared_keys(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(elapsed, result_rows):
        stats = {"wall_seconds": elapsed, "rows": len(result_rows)}
        stats["samples"] = 100
        stats.setdefault("workers", 1)
        return stats
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert result.clean

    def test_flags_dict_literal_key(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(elapsed):
        info = {"wall_seconds": elapsed, "mystery": 0}
        return info
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-undeclared-key"]

    def test_flags_dict_call_keyword(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run():
        run_stats = dict(rows=1, mystery=2)
        return run_stats
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-undeclared-key"]

    def test_flags_update_with_literal(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(stats):
        stats.update({"mystery": 1})
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-undeclared-key"]

    def test_attribute_mappings_are_tracked(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    class Engine:
        def run(self):
            self.last_run_info = {"samples": 10, "mystery": True}
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-undeclared-key"]

    def test_loop_over_literal_tuple_resolves_keys(self, analyze):
        flagged = analyze(
            DECLARATIONS
            + """
    def merge(stats, extra):
        for key in ("rows", "mystery"):
            stats[key] = extra[key]
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(flagged) == ["stats-undeclared-key"]

        clean = analyze(
            DECLARATIONS
            + """
    def merge(stats, extra):
        for key in ("rows", "samples"):
            stats[key] = extra[key]
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert clean.clean


class TestDynamicKey:
    def test_flags_computed_key(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(stats, name):
        stats[name + "_seconds"] = 1.0
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert rule_ids(result) == ["stats-dynamic-key"]


class TestScope:
    def test_untracked_mappings_stay_silent(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(cache):
        cache["anything"] = 1
        options = {"whatever": True}
        return options
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert result.clean

    def test_path_filter_skips_unscanned_trees(self, analyze):
        # Without statskeys_include_all, a module outside engine/codegen/
        # server is exempt even when it writes wild keys.
        result = analyze(
            DECLARATIONS
            + """
    def run(stats):
        stats["surprise"] = 1
    """,
            CHECKERS,
        )
        assert result.clean

    def test_no_declarations_means_no_lint(self, analyze):
        result = analyze(
            """
    def run(stats):
        stats["surprise"] = 1
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert result.clean


class TestHygiene:
    def test_suppression(self, analyze):
        result = analyze(
            DECLARATIONS
            + """
    def run(stats):
        stats["surprise"] = 1  # repro: allow(stats-undeclared-key)
    """,
            CHECKERS,
            options=OPTIONS,
        )
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == [
            "stats-undeclared-key"
        ]

    def test_baseline(self, analyze, tmp_path):
        source = DECLARATIONS + """
    def run(stats):
        stats["surprise"] = 1
    """
        flagged = analyze(source, CHECKERS, options=OPTIONS)
        assert len(flagged.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "file": flagged.findings[0].file,
                            "rule": flagged.findings[0].rule_id,
                            "message": flagged.findings[0].message,
                            "why": "fixture",
                        }
                    ]
                }
            )
        )
        result = analyze(source, CHECKERS, options=OPTIONS, baseline=str(baseline_path))
        assert result.clean
        assert len(result.baselined) == 1


class TestVolatileOmissionRedetection:
    """Remove ``batched`` from the real declarations; the lint must fire.

    This reproduces the PR-8 bug class that motivated the rule: the
    Monte-Carlo engine records ``batched`` (whether the vectorised
    evaluator ran — a function of numpy availability), and before this
    PR the key was declared in neither set, so fingerprints diverged
    between the with/without-numpy CI legs.
    """

    def _modules(self, codec_text: str) -> list[SourceModule]:
        codec_path = SRC_REPRO / "server" / "codec.py"
        montecarlo_path = SRC_REPRO / "engine" / "montecarlo.py"
        return [
            SourceModule.parse(codec_path, text=codec_text),
            SourceModule.parse(montecarlo_path),
        ]

    def test_omitting_batched_is_flagged(self):
        codec_text = (SRC_REPRO / "server" / "codec.py").read_text()
        assert '"batched",' in codec_text
        broken = codec_text.replace('"batched",', "")
        context = AnalysisContext(modules=self._modules(broken))
        findings = list(StatsKeyChecker().check_project(context))
        batched = [f for f in findings if "'batched'" in f.message]
        assert batched, "removing 'batched' from VOLATILE_STAT_KEYS must trip the lint"
        assert all(f.rule_id == "stats-undeclared-key" for f in batched)
        assert any(f.file.endswith("montecarlo.py") for f in batched)

    def test_committed_declarations_are_complete(self):
        codec_text = (SRC_REPRO / "server" / "codec.py").read_text()
        context = AnalysisContext(modules=self._modules(codec_text))
        findings = list(StatsKeyChecker().check_project(context))
        assert findings == []

    def test_fingerprint_sets_are_disjoint(self):
        from repro.server.codec import (
            DETERMINISTIC_STAT_KEYS,
            VOLATILE_STAT_KEYS,
        )

        assert not (DETERMINISTIC_STAT_KEYS & VOLATILE_STAT_KEYS)
        assert "batched" in VOLATILE_STAT_KEYS


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
