"""The analysis driver: checkers × modules → findings.

:func:`analyze_paths` is both the CLI's engine and the pytest-importable
API.  It parses the tree once, runs every registered checker, applies
inline suppressions and the committed baseline, and folds in the
hygiene lints (``suppression-unused``, ``baseline-stale``,
``parse-error``) so one call yields the complete, final finding list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.source import SourceModule, collect_modules

__all__ = ["AnalysisContext", "AnalysisResult", "Checker", "analyze_paths"]


@dataclass
class AnalysisContext:
    """Everything a checker may consult beyond its current module."""

    modules: list[SourceModule] = field(default_factory=list)
    #: Extra knobs (used by fixtures/tests to point project-level
    #: checkers at synthetic inputs).
    options: dict = field(default_factory=dict)

    def module(self, suffix: str) -> SourceModule | None:
        """The first module whose path ends with ``suffix``, if any."""
        for module in self.modules:
            if module.path.endswith(suffix):
                return module
        return None


@runtime_checkable
class Checker(Protocol):
    """A checker contributes findings per module and/or per project.

    ``rules`` names every rule id the checker can emit — the CLI's
    ``--list-rules`` and the ``--rules`` selector are driven by it.
    """

    name: str
    rules: tuple[str, ...]

    def check_module(
        self, module: SourceModule, context: AnalysisContext
    ) -> Iterable[Finding]:
        ...

    def check_project(self, context: AnalysisContext) -> Iterable[Finding]:
        ...


class BaseChecker:
    """Convenience base: no-op hooks, so checkers override only one."""

    name = "base"
    rules: tuple[str, ...] = ()

    def check_module(
        self, module: SourceModule, context: AnalysisContext
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, context: AnalysisContext) -> Iterable[Finding]:
        return ()


@dataclass
class AnalysisResult:
    """The outcome of one analysis run."""

    findings: list[Finding]
    suppressed: list[Finding]
    baselined: list[Finding]
    files_scanned: int
    wall_seconds: float
    checkers: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "wall_seconds": self.wall_seconds,
            "checkers": list(self.checkers),
            "counts": self.by_rule(),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "baselined": [finding.to_json() for finding in self.baselined],
        }


def default_checkers() -> list:
    """Fresh instances of every registered checker (import is lazy so
    the framework stays importable even if one checker's dependencies
    are broken — that checker's failure then surfaces per-run)."""
    from repro.analysis.checkers import all_checkers

    return all_checkers()


def analyze_paths(
    paths: Sequence[str],
    *,
    checkers: Sequence[Checker] | None = None,
    baseline: Baseline | str | None = None,
    rules: Sequence[str] | None = None,
    options: dict | None = None,
) -> AnalysisResult:
    """Run the suite over ``paths`` and return the final findings.

    ``rules`` restricts reporting to the named rule ids (hygiene lints
    stay active).  ``baseline`` is a :class:`Baseline`, a path to one,
    or ``None``.
    """
    started = time.perf_counter()
    if checkers is None:
        checkers = default_checkers()
    if isinstance(baseline, str):
        baseline = Baseline.load(baseline)
    modules, findings = collect_modules(paths)
    context = AnalysisContext(modules=modules, options=dict(options or {}))

    raw: list[Finding] = list(findings)
    for checker in checkers:
        for module in modules:
            raw.extend(checker.check_module(module, context))
        raw.extend(checker.check_project(context))
    if rules is not None:
        wanted = set(rules)
        raw = [finding for finding in raw if finding.rule_id in wanted]

    by_path = {module.path: module for module in modules}
    suppressed: list[Finding] = []
    surviving: list[Finding] = []
    for finding in sorted(raw):
        module = by_path.get(finding.file)
        if module is not None and module.suppressed(finding):
            suppressed.append(finding)
        else:
            surviving.append(finding)

    baselined: list[Finding] = []
    if baseline is not None:
        still: list[Finding] = []
        for finding in surviving:
            if baseline.absorbs(finding):
                baselined.append(finding)
            else:
                still.append(finding)
        surviving = still
        surviving.extend(baseline.stale_entries())

    if rules is None:
        # A partial run (--rules) must not judge suppressions of rules it
        # did not execute; likewise a suppression belonging to a checker
        # that was not part of this run is left alone.
        active = {rule for checker in checkers for rule in checker.rules}
        for module in modules:
            for finding in module.unused_suppressions():
                suppression_rules = set()
                for suppression in module.suppressions:
                    if suppression.line == finding.line:
                        suppression_rules.update(suppression.rules)
                if suppression_rules <= active:
                    surviving.append(finding)

    return AnalysisResult(
        findings=sorted(surviving),
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=len(modules),
        wall_seconds=time.perf_counter() - started,
        checkers=tuple(checker.name for checker in checkers),
    )
