"""repro — Aggregation in probabilistic databases via knowledge compilation.

A from-scratch Python reproduction of

    Robert Fink, Larisa Han, Dan Olteanu.
    "Aggregation in Probabilistic Databases via Knowledge Compilation."
    PVLDB 5(5): 490-501 (VLDB 2012).

The library implements the paper's full stack:

* :mod:`repro.algebra` — monoids, semirings, semimodules, the symbolic
  expression grammar of Figure 2, and valuation homomorphisms;
* :mod:`repro.prob` — finite distributions, convolution (Prop. 1),
  and the induced probability space;
* :mod:`repro.core` — the contribution: compilation of semiring/semimodule
  expressions into decomposition trees (Algorithm 1), bottom-up
  probability computation (Theorem 2), pruning, joint distributions,
  and budgeted approximation;
* :mod:`repro.db` — pvc-tables and possible-worlds semantics (Section 3);
* :mod:`repro.query` — the query language ``Q``, the Figure-4 rewriting,
  the ``Q_ind``/``Q_hie`` tractability analysis (Theorem 3), and a small
  SQL front-end;
* :mod:`repro.engine` — the SPROUT-style engine plus brute-force and
  Monte-Carlo baselines;
* :mod:`repro.parallel` — multi-core execution: deterministic shard
  planning, fork-based worker pools with graceful serial fallback, and
  order-independent result merging behind the ``workers`` knob;
* :mod:`repro.workloads` — the Eq.-11 random expression generator and a
  TPC-H-shaped data generator with the paper's two queries.

Quickstart (the primary API is the :func:`connect` session facade)::

    from repro import connect, sum_

    s = connect()
    items = s.table("items", ["name", "price"])
    items.insert(("inkjet", 99), p=0.7).insert(("laser", 349), p=0.4)

    result = items.agg(total=sum_("price")).run()
    print(result.rows[0].value_distribution("total"))

The underlying layers (registries, pvc-databases, the algebra, the
engines) remain public — ``SproutEngine(db).run(query)`` works unchanged.
"""

from repro.algebra import (
    BOOLEAN,
    COMPARISON_OPS,
    COUNT,
    MAX,
    MIN,
    NATURALS,
    ONE,
    PROD,
    SUM,
    ZERO,
    AggSum,
    CappedSumMonoid,
    Compare,
    MConst,
    Monoid,
    Normalizer,
    Prod,
    SConst,
    Semiring,
    Sum,
    Tensor,
    Valuation,
    Var,
    aggsum,
    compare,
    evaluate,
    monoid_by_name,
    normalize,
    parse_expr,
    sprod,
    ssum,
    tensor,
)
from repro.core import (
    ApproximateCompiler,
    Compiler,
    DTree,
    JointCompiler,
    ProbabilityBounds,
    approximate_probability,
    collect_stats,
    compile_expression,
    joint_distribution,
    prune,
)
from repro.db import (
    PVCDatabase,
    PVCRow,
    PVCTable,
    Relation,
    Schema,
    bid_table,
    enumerate_database_worlds,
    tuple_independent_table,
)
from repro.engine import (
    ApproxAdapter,
    CompilationCache,
    Engine,
    EvalSpec,
    MonteCarloAdapter,
    MonteCarloEngine,
    NaiveAdapter,
    NaiveEngine,
    PlanCache,
    ProbInterval,
    QueryResult,
    ResultRow,
    SproutAdapter,
    SproutEngine,
    create_engine,
)
from repro.errors import (
    AlgebraError,
    CompilationError,
    DistributionError,
    ParseError,
    QueryTimeoutError,
    QueryValidationError,
    ReproError,
    SchemaError,
)
from repro.resilience import Deadline, FaultPlan, FaultSpec
from repro.prob import Distribution, ProbabilitySpace, VariableRegistry
from repro.query import (
    AggSpec,
    AggTerm,
    GroupAgg,
    Product,
    Project,
    Query,
    QueryBuilder,
    Select,
    Union,
    attr,
    classify_query,
    cmp_,
    conj,
    count_,
    eq,
    equijoin,
    evaluate_query,
    explain_plan,
    is_hierarchical,
    lit,
    max_,
    min_,
    optimize,
    optimize_traced,
    parse_sql,
    plan_query,
    Rule,
    prod_,
    product_of,
    relation,
    sum_,
    tuple_independent_relations,
    validate_query,
)
from repro.session import Session, TableHandle, connect

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algebra
    "Var", "SConst", "Sum", "Prod", "ZERO", "ONE", "ssum", "sprod",
    "Compare", "compare", "COMPARISON_OPS",
    "Monoid", "SUM", "COUNT", "MIN", "MAX", "PROD", "CappedSumMonoid",
    "monoid_by_name", "Semiring", "BOOLEAN", "NATURALS",
    "MConst", "Tensor", "AggSum", "tensor", "aggsum",
    "Valuation", "evaluate", "Normalizer", "normalize", "parse_expr",
    # prob
    "Distribution", "VariableRegistry", "ProbabilitySpace",
    # core
    "Compiler", "compile_expression", "DTree", "JointCompiler",
    "joint_distribution", "prune", "collect_stats",
    "ApproximateCompiler", "ProbabilityBounds", "approximate_probability",
    # db
    "Schema", "Relation", "PVCRow", "PVCTable", "PVCDatabase",
    "tuple_independent_table", "bid_table", "enumerate_database_worlds",
    # query
    "Query", "Select", "Project", "Product", "Union", "GroupAgg", "AggSpec",
    "relation", "product_of", "equijoin", "attr", "lit", "eq", "cmp_",
    "conj", "evaluate_query", "validate_query", "parse_sql", "optimize",
    "optimize_traced", "Rule", "plan_query", "explain_plan",
    "classify_query", "is_hierarchical", "tuple_independent_relations",
    # session facade
    "connect", "Session", "TableHandle",
    "QueryBuilder", "AggTerm", "sum_", "count_", "min_", "max_", "prod_",
    # engines
    "SproutEngine", "NaiveEngine", "MonteCarloEngine",
    "QueryResult", "ResultRow", "EvalSpec", "ProbInterval",
    "Engine", "SproutAdapter", "ApproxAdapter", "NaiveAdapter",
    "MonteCarloAdapter", "create_engine", "CompilationCache", "PlanCache",
    # errors
    "ReproError", "AlgebraError", "ParseError", "DistributionError",
    "CompilationError", "SchemaError", "QueryValidationError",
    "QueryTimeoutError",
    # resilience
    "Deadline", "FaultPlan", "FaultSpec",
]
