"""Unit tests for the free-semiring expression AST."""

import pytest

from repro.algebra.expressions import (
    ONE,
    ZERO,
    Prod,
    SConst,
    Sum,
    Var,
    count_occurrences,
    sprod,
    ssum,
    variables_of,
)
from repro.errors import AlgebraError


class TestVar:
    def test_variables(self):
        assert Var("x").variables == frozenset({"x"})

    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_invalid_names_rejected(self):
        with pytest.raises(AlgebraError):
            Var("")
        with pytest.raises(AlgebraError):
            Var(42)

    def test_substitution(self):
        assert Var("x").substitute({"x": SConst(1)}) == ONE
        assert Var("x").substitute({"y": SConst(1)}) == Var("x")


class TestSConst:
    def test_bools_canonicalised_to_ints(self):
        assert SConst(True).value == 1
        assert SConst(False) == ZERO

    def test_negative_rejected(self):
        with pytest.raises(AlgebraError):
            SConst(-1)

    def test_zero_one_predicates(self):
        assert ZERO.is_zero() and not ZERO.is_one()
        assert ONE.is_one() and not ONE.is_zero()
        assert not Var("x").is_zero()


class TestSmartConstructors:
    def test_sum_flattens(self):
        expr = ssum([ssum([Var("a"), Var("b")]), Var("c")])
        assert isinstance(expr, Sum)
        assert len(expr.children) == 3

    def test_sum_drops_zero(self):
        assert ssum([Var("a"), ZERO]) == Var("a")

    def test_empty_sum_is_zero(self):
        assert ssum([]) == ZERO

    def test_singleton_sum_collapses(self):
        assert ssum([Var("a")]) == Var("a")

    def test_prod_flattens(self):
        expr = sprod([sprod([Var("a"), Var("b")]), Var("c")])
        assert isinstance(expr, Prod)
        assert len(expr.children) == 3

    def test_prod_drops_one(self):
        assert sprod([Var("a"), ONE]) == Var("a")

    def test_prod_annihilates_on_zero(self):
        assert sprod([Var("a"), ZERO, Var("b")]) == ZERO

    def test_empty_prod_is_one(self):
        assert sprod([]) == ONE

    def test_commutativity_is_canonical(self):
        # Remark 2: order must not matter for decomposition.
        assert ssum([Var("a"), Var("b")]) == ssum([Var("b"), Var("a")])
        assert sprod([Var("a"), Var("b")]) == sprod([Var("b"), Var("a")])

    def test_associativity_is_canonical(self):
        a, b, c = Var("a"), Var("b"), Var("c")
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)

    def test_operator_overloads_with_ints(self):
        expr = Var("a") * 1 + 0
        assert expr == Var("a")

    def test_module_expression_rejected_in_sum(self):
        from repro.algebra.monoid import SUM
        from repro.algebra.semimodule import MConst

        with pytest.raises(AlgebraError):
            ssum([Var("a"), MConst(SUM, 5)])


class TestStructure:
    def test_variables_cached_union(self):
        expr = Var("a") * Var("b") + Var("c")
        assert expr.variables == frozenset({"a", "b", "c"})

    def test_variables_of_many(self):
        assert variables_of([Var("a"), Var("b") * Var("c")]) == frozenset("abc")

    def test_count_occurrences(self):
        expr = Var("a") * (Var("b") + Var("a")) + Var("a")
        counts = count_occurrences(expr)
        assert counts["a"] == 3
        assert counts["b"] == 1

    def test_size_and_walk(self):
        expr = Var("a") * Var("b") + Var("c")
        assert expr.size() == 5  # Sum, Prod, a, b, c
        assert sum(1 for _ in expr.walk()) == 5

    def test_substitute_simplifies(self):
        expr = Var("a") * Var("b")
        assert expr.substitute({"a": ZERO}) == ZERO
        assert expr.substitute({"a": ONE}) == Var("b")

    def test_hash_consistency(self):
        e1 = Var("a") + Var("b")
        e2 = Var("b") + Var("a")
        assert hash(e1) == hash(e2)
        assert len({e1, e2}) == 1

    def test_repr_roundtrip_style(self):
        assert repr(Var("x")) == "x"
        assert "+" in repr(Var("x") + Var("y"))
