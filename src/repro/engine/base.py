"""The pluggable ``Engine`` protocol and its adapters.

Every engine in the library answers the same question — ``P[t ∈ answer]``
for a ``Q``-algebra query over a pvc-database — behind one front door:

* :class:`Engine` — the protocol (``name`` + ``run(query, spec=None) ->
  QueryResult``); engines that can refine answers incrementally also
  expose ``run_iter`` (see :meth:`repro.session.Session.run_iter`);
* :class:`SproutAdapter` / :class:`ApproxAdapter` / :class:`NaiveAdapter`
  / :class:`MonteCarloAdapter` — adapters returning the **same**
  :class:`QueryResult` type, with probabilities as
  :class:`~repro.engine.spec.ProbInterval` values (zero-width when exact)
  and uniform per-run diagnostics in ``QueryResult.stats``;
* :class:`~repro.engine.spec.EvalSpec` — *how* to answer (``exact``,
  ``approx`` with deterministic ε-bounds, or ``sample`` with (ε, δ)
  confidence intervals), threaded from the session through every adapter;
* :func:`create_engine` — the factory keyed on engine names;
* :func:`select_engine_name` — the ``engine="auto"`` policy: exact
  compilation for queries the Section-6 analysis proves tractable;
  queries outside the tractable classes degrade to a *guaranteed*
  approximation per the spec (budgeted d-tree bounds by default,
  sequential Monte-Carlo when the spec asks to sample) instead of an
  unqualified estimate;
* :class:`CompilationCache` — a shared distribution cache keyed on
  normalized annotations, so repeated and overlapping rows across runs
  never recompile the same d-tree.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Protocol, runtime_checkable

from repro.algebra.expressions import ONE, Expr
from repro.codegen import runtime_stats
from repro.core.compile import Compiler
from repro.db.mutations import LineageIndex
from repro.db.pvc_table import PVCDatabase
from repro.engine.approximate import ApproxAdapter
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine
from repro.engine.spec import EvalSpec
from repro.engine.sprout import QueryResult, ResultRow, SproutEngine
from repro.errors import QueryTimeoutError, QueryValidationError
from repro.prob.distribution import Distribution
from repro.resilience.deadline import (
    DeadlineExceeded,
    deadline_from_spec,
    deadline_scope,
)
from repro.query.ast import Query
from repro.query.tractability import (
    Classification,
    classify_query,
    tuple_independent_relations,
)

__all__ = [
    "Engine",
    "ENGINE_NAMES",
    "CompilationCache",
    "PlanCache",
    "SproutAdapter",
    "ApproxAdapter",
    "NaiveAdapter",
    "MonteCarloAdapter",
    "create_engine",
    "select_engine_name",
]

#: The registered engine names, in preference order.
ENGINE_NAMES = ("sprout", "approx", "naive", "montecarlo")


@runtime_checkable
class Engine(Protocol):
    """An engine answers queries on a pvc-database with a QueryResult."""

    name: str

    def run(
        self, query: Query, spec: EvalSpec | None = None, **options
    ) -> QueryResult:
        """Evaluate ``query`` under ``spec``; rows carry ProbIntervals."""
        ...


def _reject_non_exact(name: str, spec: EvalSpec | None) -> None:
    """Exact engines only accept exact (or absent) specs."""
    if spec is not None and not spec.is_exact:
        raise QueryValidationError(
            f"engine {name!r} computes exact answers only; use "
            f"engine='approx' for spec mode 'approx' and "
            f"engine='montecarlo' for spec mode 'sample' "
            f"(or engine='auto' to dispatch on the spec)"
        )


class CompilationCache:
    """Distribution cache keyed on normalized annotations.

    Wraps one persistent :class:`Compiler`, whose d-tree memo already
    shares work between *overlapping* annotations; this cache additionally
    short-circuits *repeated* annotations (the same normalized expression
    across rows, runs, or ``pretty()``/accessor calls) to a stored
    :class:`Distribution` without touching the compiler at all.

    Duck-types the ``distribution``/``semiring`` surface of
    :class:`Compiler`, so it can stand in wherever result rows expect a
    distribution source.

    ``max_entries`` bounds the cache: entries evict least-recently-used
    (a lookup refreshes recency) and ``evictions`` counts what was
    dropped.  ``None`` keeps the legacy unbounded behavior of a private
    per-session cache; the query server shares one *bounded* instance
    across every tenant session.

    All operations are safe under concurrent access from threads (the
    server's executor pool): one reentrant lock serializes lookups,
    stores, :meth:`absorb` and :meth:`clear`.  Compilation itself also
    runs under the lock — the wrapped compiler's memo tables are not
    designed for concurrent mutation, and under the GIL serializing the
    CPU-bound compile costs nothing (multi-core compilation goes through
    the :mod:`repro.parallel` process pool instead).
    """

    #: Lock discipline, enforced statically by ``repro.analysis`` (the
    #: ``locks`` checker): the listed fields are mutated only while
    #: holding ``self._lock``.
    _shared_state_ = {
        "_lock": (
            "hits",
            "misses",
            "evictions",
            "invalidations",
            "data_generation",
            "compiler",
            "_distributions",
            "_lineage",
            "_watched",
        ),
    }

    def __init__(self, compiler: Compiler, max_entries: int | None = None):
        if max_entries is not None and max_entries <= 0:
            raise QueryValidationError(
                f"max_entries must be a positive integer or None, "
                f"got {max_entries!r}"
            )
        self.compiler = compiler
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries dropped by lineage invalidation (vs LRU ``evictions``).
        self.invalidations = 0
        #: Bumped whenever stored distributions may have become invalid
        #: (a variable's distribution changed).  Parallel fan-outs record
        #: it before compiling and pass it back to :meth:`absorb`, so a
        #: worker result computed against a pre-mutation registry can
        #: never be stored after the invalidation ran.
        self.data_generation = 0
        self._distributions: OrderedDict[Expr, Distribution] = OrderedDict()
        #: Variable → dependent cache keys: the lineage index driving
        #: selective invalidation.  A compiled distribution depends on
        #: nothing but the distributions of its variables, so this is the
        #: *exact* dependency set — value edits, inserts and deletes never
        #: invalidate anything here.
        self._lineage = LineageIndex()
        #: ids of databases whose mutation feed we already subscribed to.
        self._watched: set = set()
        self._lock = threading.RLock()

    @property
    def semiring(self):
        return self.compiler.semiring

    @property
    def registry(self):
        return self.compiler.registry

    def _store_locked(self, key: Expr, distribution: Distribution) -> None:
        """Insert as most-recent and evict past the bound (lock held)."""
        self._distributions[key] = distribution
        self._distributions.move_to_end(key)
        self._lineage.record(key, key.variables)
        if self.max_entries is not None:
            while len(self._distributions) > self.max_entries:
                evicted, _ = self._distributions.popitem(last=False)
                self._lineage.discard(evicted)
                self.evictions += 1

    def distribution(self, expr: Expr) -> Distribution:
        with self._lock:
            key = self.compiler.normalize(expr)
            cached = self._distributions.get(key)
            if cached is None:
                self.misses += 1
                cached = self.compiler.distribution(key)
                self._store_locked(key, cached)
            else:
                self.hits += 1
                self._distributions.move_to_end(key)
            return cached

    def normalize(self, expr: Expr) -> Expr:
        """The cache's key function (the compiler's normal form)."""
        with self._lock:
            return self.compiler.normalize(expr)

    def cached(self, key: Expr) -> Distribution | None:
        """The stored distribution of an already-normalized key, if any."""
        with self._lock:
            cached = self._distributions.get(key)
            if cached is not None:
                self._distributions.move_to_end(key)
            return cached

    def absorb(
        self,
        key: Expr,
        distribution: Distribution,
        generation: int | None = None,
    ) -> None:
        """Merge one externally compiled distribution into the cache.

        The parallel compilation fan-out calls this with per-worker
        results: ``key`` must already be normalized.  The entry counts as
        a miss — the compile work happened, just in another process — so
        hit/miss accounting stays comparable with serial runs.

        ``generation`` (when given) is the :attr:`data_generation` the
        caller observed before fanning out; a mismatch means a mutation
        invalidated distributions mid-flight and the worker's result is
        silently discarded rather than stored stale.
        """
        with self._lock:
            if generation is not None and generation != self.data_generation:
                return
            if key not in self._distributions:
                self.misses += 1
                self._store_locked(key, distribution)

    def compile(self, expr: Expr):
        with self._lock:
            return self.compiler.compile(expr)

    def _rebuild_compiler_locked(self) -> None:
        """Replace the wrapped compiler, dropping its d-tree memo."""
        self.compiler = Compiler(
            self.compiler.registry,
            self.compiler.semiring,
            heuristic=self.compiler.choose_variable,
            pruning=self.compiler.pruning,
            max_mutex_nodes=self.compiler.max_mutex_nodes,
        )

    def clear(self) -> None:
        """Drop every cached distribution and the compiler's d-tree memo.

        Used by ``Session.close()`` on session-owned caches; the cache
        remains usable afterwards (a closed-and-reused session simply
        recompiles on demand).
        """
        with self._lock:
            self._distributions.clear()
            self._lineage = LineageIndex()
            self.data_generation += 1
            self._rebuild_compiler_locked()

    def invalidate_variables(self, names) -> int:
        """Drop exactly the entries whose lineage mentions ``names``.

        Called when variable distributions are reassigned (``UPDATE ...
        p=``).  Every other stored distribution survives — its lineage is
        untouched, so it is still correct.  The wrapped compiler's
        internal d-tree memo cannot be pruned selectively and is rebuilt;
        surviving entries keep short-circuiting repeated annotations,
        which is where the warm-path work lives.  Returns the number of
        entries dropped.
        """
        with self._lock:
            doomed = self._lineage.pop(names)
            for key in doomed:
                self._distributions.pop(key, None)
            self.invalidations += len(doomed)
            self.data_generation += 1
            self._rebuild_compiler_locked()
            return len(doomed)

    def on_mutation(self, delta) -> None:
        """Database mutation listener (see :meth:`watch`).

        Only distribution changes touch this cache: annotations are
        lineage, and a stored distribution is a pure function of its
        variables' distributions — inserts, deletes and value updates
        leave every entry valid.
        """
        if delta.changed_variables:
            self.invalidate_variables(delta.changed_variables)

    def watch(self, db) -> None:
        """Subscribe to ``db``'s mutation feed (idempotent per database).

        Sessions call this for their own database; the query server calls
        it once for the shared database, so one tenant's probability
        update invalidates the affected entries for every tenant.
        """
        with self._lock:
            if id(db) in self._watched:
                return
            self._watched.add(id(db))
        db.subscribe(self.on_mutation)

    def stats(self) -> dict:
        """Counters snapshot (entries/hits/misses/evictions/bound)."""
        with self._lock:
            return {
                "entries": len(self._distributions),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "data_generation": self.data_generation,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._distributions)

    def __repr__(self):
        return (
            f"CompilationCache({len(self)} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions)"
        )


class PlanCache:
    """Shared bounded LRU of prepared physical plans.

    Keyed on ``(query, db_fingerprint)`` — query AST nodes compare and
    hash structurally, and the fingerprint (per-table cardinalities)
    invalidates plans whose greedy join order was chosen for different
    statistics.  One instance can back many sessions: the query server
    hands every tenant session the same cache, so a statement one tenant
    prepared skips the optimizer and physical planner for every other
    tenant.  Thread-safe like :class:`CompilationCache`.
    """

    _shared_state_ = {
        "_lock": ("hits", "misses", "evictions", "_plans"),
    }

    def __init__(self, max_entries: int | None = 256):
        if max_entries is not None and max_entries <= 0:
            raise QueryValidationError(
                f"max_entries must be a positive integer or None, "
                f"got {max_entries!r}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._plans: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def get(self, query: Query, fingerprint: tuple):
        with self._lock:
            entry = self._plans.get((query, fingerprint))
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._plans.move_to_end((query, fingerprint))
            return entry

    def put(self, query: Query, fingerprint: tuple, prepared) -> None:
        with self._lock:
            self._plans[(query, fingerprint)] = prepared
            self._plans.move_to_end((query, fingerprint))
            if self.max_entries is not None:
                while len(self._plans) > self.max_entries:
                    self._plans.popitem(last=False)
                    self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._plans),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self):
        return (
            f"PlanCache({len(self)} entries, {self.hits} hits, "
            f"{self.misses} misses, {self.evictions} evictions)"
        )


class SproutAdapter:
    """The paper's two-step pipeline behind the :class:`Engine` protocol."""

    name = "sprout"

    def __init__(
        self,
        db: PVCDatabase,
        distribution_source=None,
        plan_source=None,
        **compiler_options,
    ):
        self.engine = SproutEngine(
            db,
            distribution_source=distribution_source,
            plan_source=plan_source,
            **compiler_options,
        )

    def run(
        self, query: Query, spec: EvalSpec | None = None, **options
    ) -> QueryResult:
        _reject_non_exact(self.name, spec)
        if spec is not None and spec.workers is not None:
            options.setdefault("workers", spec.workers)
        deadline = deadline_from_spec(spec)
        with deadline_scope(deadline):
            result = self.engine.run(query, **options)
        result.engine = self.name
        result.stats["db_generation"] = self.engine.db.generation
        if result.stats.get("deadline_hit"):
            # The engine degraded to a sound partial answer: compiled
            # rows are exact, the rest report [0, 1].  Under the
            # "raise" policy the partial still travels on the error.
            if spec is not None and spec.on_timeout == "raise":
                raise QueryTimeoutError(
                    f"exact compilation exceeded time_limit="
                    f"{spec.time_limit:g}s after "
                    f"{result.stats.get('rows_exact', 0)} of "
                    f"{len(result.rows)} rows",
                    partial=result,
                    elapsed=deadline.elapsed() if deadline else None,
                )
        return result


def _codegen_stats(stats: dict, before: dict) -> dict:
    """Merge this run's codegen counter deltas into ``stats``.

    The counters are process-wide (kernels are cached across runs and
    sessions), so per-run stats report the *delta* over the run; all of
    these are volatile — excluded from result fingerprints like
    ``wall_seconds``.
    """
    after = runtime_stats()
    for key in ("kernels_compiled", "kernel_cache_hits", "codegen_compile_seconds"):
        stats[key] = after[key] - before[key]
    return stats


def _concrete_rows(schema, probabilities, compare_key=repr):
    """Sorted ResultRows for engines reporting concrete tuples only."""
    return [
        ResultRow(schema, values, ONE, None, _probability=probability)
        for values, probability in sorted(
            probabilities.items(), key=lambda kv: compare_key(kv[0])
        )
    ]


class NaiveAdapter:
    """Possible-worlds enumeration behind the :class:`Engine` protocol.

    Rows carry *concrete* values (aggregates are instantiated per world),
    so there are no symbolic annotations to expose; the probabilities are
    exact and precomputed.
    """

    name = "naive"

    def __init__(self, db: PVCDatabase):
        self.engine = NaiveEngine(db)

    def run(
        self, query: Query, spec: EvalSpec | None = None, **options
    ) -> QueryResult:
        if options:
            raise QueryValidationError(
                f"naive engine takes no run options, got {sorted(options)}"
            )
        _reject_non_exact(self.name, spec)
        self.engine.codegen = spec.codegen if spec is not None else None
        counters = runtime_stats()
        start = time.perf_counter()
        deadline = deadline_from_spec(spec)
        try:
            with deadline_scope(deadline):
                probabilities = self.engine.tuple_probabilities(query)
        except DeadlineExceeded as exc:
            # Mid-enumeration the answer tuple set itself is incomplete,
            # so there is no sound partial to degrade to: the naive
            # engine always raises on timeout, under either policy.
            raise QueryTimeoutError(
                f"naive enumeration exceeded time_limit="
                f"{spec.time_limit:g}s; possible-worlds enumeration has "
                f"no sound partial answer",
                partial=None,
                elapsed=time.perf_counter() - start,
            ) from exc
        elapsed = time.perf_counter() - start
        schema = query.schema(self.engine.db.catalog())
        rows = _concrete_rows(schema, probabilities)
        stats = {"wall_seconds": elapsed, "rows": len(rows)}
        stats.update(self.engine.last_run_info)
        stats["db_generation"] = self.engine.db.generation
        _codegen_stats(stats, counters)
        return QueryResult(
            schema,
            rows,
            {"enumeration_seconds": elapsed},
            engine=self.name,
            stats=stats,
        )


class MonteCarloAdapter:
    """MCDB-style sampling behind the :class:`Engine` protocol.

    Without a spec (or with ``samples=``) it reports plain empirical
    frequencies from a fixed budget, as before.  With ``spec`` mode
    ``"sample"`` it runs the sequential-stopping estimator: worlds are
    drawn in doubling rounds until every answer tuple's (ε, δ) confidence
    interval is narrower than ``spec.epsilon`` (or the budget/time limit
    trips), and rows carry those intervals.
    """

    name = "montecarlo"

    def __init__(self, db: PVCDatabase, seed: int | None = None, samples: int = 1000):
        self.engine = MonteCarloEngine(db, seed=seed)
        self.samples = samples

    def _interval_result(self, query: Query, intervals, info) -> QueryResult:
        schema = query.schema(self.engine.db.catalog())
        rows = _concrete_rows(schema, intervals)
        stats = dict(info)
        stats["rows"] = len(rows)
        stats["db_generation"] = self.engine.db.generation
        return QueryResult(
            schema,
            rows,
            {"sampling_seconds": info.get("wall_seconds", 0.0)},
            engine=self.name,
            stats=stats,
        )

    def run(
        self,
        query: Query,
        spec: EvalSpec | None = None,
        samples: int | None = None,
        **options,
    ) -> QueryResult:
        if options:
            raise QueryValidationError(
                f"montecarlo engine takes only 'spec' and 'samples' run "
                f"options, got {sorted(options)}"
            )
        if spec is not None and spec.mode == "approx":
            raise QueryValidationError(
                "spec mode 'approx' means deterministic d-tree bounds; "
                "use engine='approx' (Monte-Carlo provides (ε, δ) "
                "confidence intervals via spec mode 'sample')"
            )
        self.engine.codegen = spec.codegen if spec is not None else None
        counters = runtime_stats()
        if spec is not None and spec.mode == "sample":
            if samples is not None:
                raise QueryValidationError(
                    "pass the sample budget as spec.budget, not samples=, "
                    "when running under an EvalSpec"
                )
            intervals, info = self.engine.estimate_intervals(
                query,
                epsilon=spec.epsilon,
                delta=spec.delta,
                max_samples=spec.budget,
                time_limit=spec.time_limit,
                workers=spec.workers,
            )
            result = self._interval_result(query, intervals, info)
            _codegen_stats(result.stats, counters)
            if info.get("deadline_hit") and spec.on_timeout == "raise":
                raise QueryTimeoutError(
                    f"sampling exceeded time_limit={spec.time_limit:g}s "
                    f"after {info.get('samples', 0)} samples",
                    partial=result,
                    elapsed=info.get("wall_seconds"),
                )
            return result
        if spec is not None and not (
            spec.execution_only
            and (spec.workers is not None or spec.codegen is not None)
        ):
            # Remaining mode is "exact": sampling cannot honour that.
            # The single exception is a pure-execution spec — only the
            # workers and/or codegen knobs set — which runs the legacy
            # fixed-budget estimator below without touching its answer
            # semantics.
            raise QueryValidationError(
                "montecarlo engine cannot guarantee exact answers; use "
                "engine='sprout' or 'naive', or spec mode 'sample'"
            )
        workers = spec.workers if spec is not None else None
        budget = self.samples if samples is None else samples
        start = time.perf_counter()
        probabilities = self.engine.tuple_probabilities(
            query, samples=budget, workers=workers
        )
        elapsed = time.perf_counter() - start
        schema = query.schema(self.engine.db.catalog())
        rows = _concrete_rows(schema, probabilities)
        stats = {"wall_seconds": elapsed, "rows": len(rows)}
        stats.update(self.engine.last_run_info)
        stats["db_generation"] = self.engine.db.generation
        _codegen_stats(stats, counters)
        return QueryResult(
            schema,
            rows,
            {"sampling_seconds": elapsed},
            engine=self.name,
            stats=stats,
        )

    def run_iter(self, query: Query, spec: EvalSpec | None = None, **options):
        """Yield a refined :class:`QueryResult` after every sampling round."""
        if options:
            raise QueryValidationError(
                f"montecarlo engine takes only a 'spec' run_iter option, "
                f"got {sorted(options)}"
            )
        spec = EvalSpec.make(spec)
        if spec.mode != "sample":
            raise QueryValidationError(
                "anytime Monte-Carlo needs spec mode 'sample'"
            )
        self.engine.codegen = spec.codegen
        counters = runtime_stats()
        for intervals, info in self.engine.estimate_intervals_iter(
            query,
            epsilon=spec.epsilon,
            delta=spec.delta,
            max_samples=spec.budget,
            time_limit=spec.time_limit,
            workers=spec.workers,
        ):
            result = self._interval_result(query, intervals, info)
            _codegen_stats(result.stats, counters)
            yield result


def create_engine(
    name: str,
    db: PVCDatabase,
    *,
    distribution_source=None,
    plan_source=None,
    seed: int | None = None,
    samples: int = 1000,
    **compiler_options,
) -> Engine:
    """Instantiate the engine adapter registered under ``name``."""
    if name == "sprout":
        return SproutAdapter(
            db,
            distribution_source=distribution_source,
            plan_source=plan_source,
            **compiler_options,
        )
    if name == "approx":
        return ApproxAdapter(
            db,
            distribution_source=distribution_source,
            plan_source=plan_source,
            **compiler_options,
        )
    if name == "naive":
        return NaiveAdapter(db)
    if name == "montecarlo":
        return MonteCarloAdapter(db, seed=seed, samples=samples)
    raise QueryValidationError(
        f"unknown engine {name!r}; expected one of {list(ENGINE_NAMES)} or 'auto'"
    )


def select_engine_name(
    db: PVCDatabase,
    query: Query,
    *,
    spec: EvalSpec | None = None,
    tuple_independent: set[str] | None = None,
) -> tuple[str, Classification]:
    """The ``engine="auto"`` policy (Theorem 3 as a dispatcher).

    * spec mode ``"sample"`` always goes to the sequential Monte-Carlo
      estimator — the caller asked for sampled confidence intervals;
    * spec mode ``"approx"`` always goes to the budgeted-bounds engine;
    * otherwise (exact intent), queries the static analysis proves inside
      ``Q_ind``/``Q_hie`` compile exactly, and everything else *degrades
      to guaranteed approximation*: the approx engine reports
      deterministic intervals of width ≤ ε instead of the unqualified
      point estimate the old fallback produced.  Generic exact
      compilation may be exponential there; pass ``engine='sprout'`` to
      force it anyway.

    ``tuple_independent`` lets callers (the session) pass a cached scan
    instead of re-walking every table row per query.
    """
    if tuple_independent is None:
        tuple_independent = tuple_independent_relations(db)
    classification = classify_query(query, db.catalog(), tuple_independent)
    if spec is not None and spec.mode == "sample":
        return "montecarlo", classification
    if spec is not None and spec.mode == "approx":
        return "approx", classification
    if classification.tractable:
        return "sprout", classification
    return "approx", classification
