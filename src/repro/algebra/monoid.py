"""Commutative aggregation monoids (Section 2.2, Definition 2 of the paper).

Aggregation over a column fixes a carrier of values and a commutative,
associative binary operation with a neutral element.  The paper uses

* ``SUM   = (N, +, 0)``
* ``MIN   = (N ∪ {±∞}, min, +∞)``
* ``MAX   = (N ∪ {±∞}, max, -∞)``
* ``PROD  = (N, ·, 1)``
* ``COUNT``: a special case of ``SUM`` in which every contribution is 1.

In addition to the plain monoid operation, every monoid here exposes the
*scalar actions* needed to form semimodules ``S ⊗ M`` (Definition 4):

* :meth:`Monoid.act_bool` is the action of the Boolean semiring:
  ``⊤ ⊗ m = m`` and ``⊥ ⊗ m = 0_M``.
* :meth:`Monoid.act_nat` is the action of the semiring of naturals:
  ``n ⊗ m`` is the n-fold monoid sum ``m + m + ... + m``, computed in
  closed form per monoid (``n·m`` for SUM, ``m**n`` for PROD, ``m`` for
  n>0 under MIN/MAX).

The saturating :class:`CappedSumMonoid` implements the paper's pruning
optimisation for SUM/COUNT conditions ``[Σ Φᵢ⊗mᵢ θ c]``: once a partial sum
exceeds the comparison constant, its exact value is irrelevant, so addition
may saturate at ``cap = c + 1``.  Saturating addition is still commutative
and associative, hence a bona fide monoid, and it keeps the support of every
intermediate distribution bounded by ``cap + 1`` values (Proposition 3).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import AlgebraError

__all__ = [
    "Monoid",
    "SumMonoid",
    "CountMonoid",
    "MinMonoid",
    "MaxMonoid",
    "ProdMonoid",
    "CappedSumMonoid",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "PROD",
    "monoid_by_name",
]


class Monoid:
    """A commutative monoid ``(M, +, 0)`` used for aggregation.

    Subclasses define :meth:`add`, the neutral element :attr:`zero`, and the
    scalar action :meth:`act_nat` of the natural-number semiring.
    Instances are stateless and compare equal by :attr:`name`.
    """

    #: Human-readable identifier, e.g. ``"SUM"``.
    name: str = "?"

    #: Neutral element ``0_M`` of the monoid.
    zero = None

    def add(self, a, b):
        """Return the monoid sum ``a + b``."""
        raise NotImplementedError

    def fold(self, values: Iterable):
        """Fold an iterable of monoid values with :meth:`add`.

        Returns :attr:`zero` for an empty iterable, mirroring that the
        neutral element does not contribute to an aggregation.
        """
        result = self.zero
        for value in values:
            result = self.add(result, value)
        return result

    def act_bool(self, condition: bool, m):
        """The Boolean-semiring action ``s ⊗ m`` (Definition 4).

        ``⊤ ⊗ m = m`` (the value participates in the aggregation) and
        ``⊥ ⊗ m = 0_M`` (it contributes nothing).
        """
        return self.clamp(m) if condition else self.zero

    def act_nat(self, n: int, m):
        """The naturals-semiring action: the n-fold sum ``m + ... + m``."""
        raise NotImplementedError

    def act(self, scalar, m, semiring):
        """Dispatch the scalar action for a concrete ``semiring`` value."""
        if semiring.is_boolean:
            return self.act_bool(bool(scalar), m)
        return self.act_nat(int(scalar), m)

    def clamp(self, m):
        """Normalise a raw value into the monoid's carrier.

        The plain monoids are the identity; :class:`CappedSumMonoid`
        saturates at its cap.
        """
        return m

    def __eq__(self, other):
        return isinstance(other, Monoid) and self.name == other.name

    def __hash__(self):
        return hash(("Monoid", self.name))

    def __repr__(self):
        return f"<Monoid {self.name}>"


class SumMonoid(Monoid):
    """``SUM = (N, +, 0)`` — also the carrier for real-valued sums."""

    name = "SUM"
    zero = 0

    def add(self, a, b):
        return a + b

    def act_nat(self, n, m):
        return n * m


class CountMonoid(SumMonoid):
    """``COUNT``: SUM in which every participating tuple contributes 1.

    The monoid structure is identical to SUM; the distinction matters only
    during query rewriting, where ``Γ = Σ_SUM (Φ ⊗ 1)`` replaces the
    aggregated attribute value by the constant 1 (Figure 4).
    """

    name = "COUNT"


class MinMonoid(Monoid):
    """``MIN = (N ∪ {±∞}, min, +∞)``."""

    name = "MIN"
    zero = math.inf

    def add(self, a, b):
        return min(a, b)

    def act_nat(self, n, m):
        # m +min m +min ... = m whenever at least one copy participates.
        return m if n > 0 else self.zero


class MaxMonoid(Monoid):
    """``MAX = (N ∪ {±∞}, max, -∞)``."""

    name = "MAX"
    zero = -math.inf

    def add(self, a, b):
        return max(a, b)

    def act_nat(self, n, m):
        return m if n > 0 else self.zero


class ProdMonoid(Monoid):
    """``PROD = (N, ·, 1)``: multiplicative aggregation."""

    name = "PROD"
    zero = 1

    def add(self, a, b):
        return a * b

    def act_nat(self, n, m):
        return m**n


class CappedSumMonoid(SumMonoid):
    """SUM with addition saturating at a cap (pruning, Section 5).

    For a condition ``[Σ_SUM Φᵢ⊗mᵢ θ c]`` every sum strictly greater than
    ``c`` behaves identically under every comparison operator θ, so partial
    sums may be clamped to ``cap = c + 1``.  This bounds the support of all
    intermediate distributions by ``cap + 1`` elements and is what makes
    bounded-SUM (and COUNT) aggregation tractable (Proposition 3).
    """

    def __init__(self, cap: int):
        if cap < 0:
            raise AlgebraError(f"cap must be non-negative, got {cap}")
        self.cap = cap
        self.name = f"SUM<={cap}"

    def add(self, a, b):
        return min(a + b, self.cap)

    def act_nat(self, n, m):
        return min(n * m, self.cap)

    def clamp(self, m):
        return min(m, self.cap)


#: Singleton instances; monoids are stateless, so these are shared.
SUM = SumMonoid()
COUNT = CountMonoid()
MIN = MinMonoid()
MAX = MaxMonoid()
PROD = ProdMonoid()

_BY_NAME = {m.name: m for m in (SUM, COUNT, MIN, MAX, PROD)}


def monoid_by_name(name: str) -> Monoid:
    """Look up one of the standard monoids by its (case-insensitive) name."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise AlgebraError(
            f"unknown aggregation monoid {name!r}; "
            f"expected one of {sorted(_BY_NAME)}"
        ) from None
