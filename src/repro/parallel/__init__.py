"""Multi-core execution primitives shared by every engine.

The paper's two cost centers — d-tree knowledge compilation and
Monte-Carlo estimation — are embarrassingly parallel at natural seams:
independent result-row annotations compile independently, and independent
sampling rounds shard across processes.  This package provides the three
pieces the engines build on:

* :mod:`repro.parallel.shards` — the deterministic shard planner: batch
  sizes and per-shard RNG seed material depend only on the batch and the
  session seed, **never** on the worker count, which is what makes
  ``connect(seed=N)`` results bit-identical for any ``workers`` setting;
* :mod:`repro.parallel.pool` — process-pool lifecycle: fork-based worker
  pools with task payloads pickled through the call queue, and graceful
  degradation — a worker crash, a pickle failure, or a platform without
  ``fork`` falls back to in-process execution with the reason recorded;
* :mod:`repro.parallel.reducer` — deterministic merging of per-shard
  results (sample counts, compiled distributions, statistics deltas), so
  the merged answer is independent of shard completion order.

The user-facing knob is ``workers`` (``int | "auto"``, default serial),
threaded from :meth:`repro.session.Session.run` through
:class:`repro.engine.spec.EvalSpec` into every engine adapter.
"""

from repro.parallel.pool import (
    ParallelUnavailable,
    SharedPool,
    execute,
    fork_available,
)
from repro.parallel.reducer import merge_counts, merge_stat_sums
from repro.parallel.shards import (
    DEFAULT_SHARD_SIZE,
    plan_shards,
    resolve_workers,
    spawn_seeds,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ParallelUnavailable",
    "SharedPool",
    "execute",
    "fork_available",
    "merge_counts",
    "merge_stat_sums",
    "plan_shards",
    "resolve_workers",
    "spawn_seeds",
]
