"""The deterministic shard planner and seed derivation."""

import pytest

from repro.errors import QueryValidationError
from repro.parallel.shards import (
    DEFAULT_SHARD_SIZE,
    plan_shards,
    resolve_workers,
    spawn_seeds,
)


class TestResolveWorkers:
    def test_none_means_not_requested(self):
        assert resolve_workers(None) is None

    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(8) == 8

    def test_auto_resolves_to_at_least_one(self):
        assert resolve_workers("auto") >= 1

    @pytest.mark.parametrize("bad", [0, -2, 1.5, "many", True, False])
    def test_junk_rejected(self, bad):
        with pytest.raises(QueryValidationError):
            resolve_workers(bad)


class TestPlanShards:
    def test_exact_multiple(self):
        assert plan_shards(1024, 256) == [256, 256, 256, 256]

    def test_remainder_becomes_last_shard(self):
        assert plan_shards(600, 256) == [256, 256, 88]

    def test_small_batch_is_one_shard(self):
        assert plan_shards(100, 256) == [100]

    def test_empty_batch(self):
        assert plan_shards(0, 256) == []

    def test_default_size(self):
        assert plan_shards(DEFAULT_SHARD_SIZE + 1) == [DEFAULT_SHARD_SIZE, 1]

    def test_plan_never_depends_on_worker_count(self):
        # There is no workers argument at all: the signature is the
        # guarantee.  The plan is a pure function of (total, shard_size).
        assert plan_shards(5000, 512) == plan_shards(5000, 512)

    def test_validation(self):
        with pytest.raises(QueryValidationError):
            plan_shards(-1, 256)
        with pytest.raises(QueryValidationError):
            plan_shards(10, 0)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_prefix_stable(self):
        # Growing the shard count extends the seed list without
        # disturbing earlier shards' streams.
        assert spawn_seeds(42, 8)[:5] == spawn_seeds(42, 5)

    def test_distinct_across_shards_and_tokens(self):
        seeds = spawn_seeds(7, 64)
        assert len(set(seeds)) == 64
        assert set(seeds).isdisjoint(spawn_seeds(8, 64))

    def test_64_bit_range(self):
        assert all(0 <= seed < 2**64 for seed in spawn_seeds(123, 32))
