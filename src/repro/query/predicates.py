"""Selection predicates for the query language ``Q`` (Section 6 syntax).

A selection condition is a conjunction of atomic comparisons whose operands
are attribute references or literals.  Evaluated on a pvc-table row, an
atom yields

* a Python ``bool`` when both operands are concrete values — the row is
  kept or dropped outright, or
* a symbolic conditional expression ``[α θ c]`` when an operand is a
  semimodule expression — the condition is multiplied into the row's
  annotation, exactly as ``σ_{AθB}`` does in Figure 4.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.conditions import COMPARISON_OPS, ComparisonOp, compare
from repro.algebra.expressions import SemiringExpr, sprod
from repro.algebra.semimodule import ModuleExpr
from repro.errors import QueryValidationError

__all__ = [
    "AttrRef",
    "Literal",
    "Comparison",
    "Conjunction",
    "TruePredicate",
    "attr",
    "lit",
    "eq",
    "cmp_",
    "conj",
]


class Operand:
    """Base class of comparison operands."""

    def resolve(self, row: Mapping[str, object]):
        raise NotImplementedError

    def attributes(self) -> frozenset:
        return frozenset()


class AttrRef(Operand):
    """A reference to an attribute of the input relation."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def resolve(self, row):
        try:
            return row[self.name]
        except KeyError:
            raise QueryValidationError(
                f"predicate references unknown attribute {self.name!r}"
            ) from None

    def attributes(self):
        return frozenset((self.name,))

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, AttrRef) and self.name == other.name

    def __hash__(self):
        return hash(("AttrRef", self.name))


class Literal(Operand):
    """A constant operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def resolve(self, row):
        return self.value

    def __repr__(self):
        return repr(self.value)

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self):
        return hash(("Literal", self.value))


class Predicate:
    """Base class of predicates; evaluation returns bool or an expression."""

    def evaluate(self, row: Mapping[str, object]):
        raise NotImplementedError

    def attributes(self) -> frozenset:
        """All attributes referenced by the predicate."""
        raise NotImplementedError

    def atoms(self) -> Sequence["Comparison"]:
        """The atomic comparisons of this (conjunctive) predicate."""
        raise NotImplementedError


class TruePredicate(Predicate):
    """The always-true predicate (empty conjunction)."""

    def evaluate(self, row):
        return True

    def attributes(self):
        return frozenset()

    def atoms(self):
        return ()

    def __repr__(self):
        return "true"

    def __eq__(self, other):
        return isinstance(other, TruePredicate)

    def __hash__(self):
        return hash("TruePredicate")


class Comparison(Predicate):
    """An atomic comparison ``left θ right``."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Operand, op: ComparisonOp | str, right: Operand):
        if isinstance(op, str):
            op = COMPARISON_OPS[op]
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, row):
        left = self.left.resolve(row)
        right = self.right.resolve(row)
        if isinstance(left, ModuleExpr) or isinstance(right, ModuleExpr):
            return compare(left, self.op, right)
        return bool(self.op(left, right))

    def attributes(self):
        return self.left.attributes() | self.right.attributes()

    def atoms(self):
        return (self,)

    def is_attribute_equality(self) -> bool:
        """True for ``A = B`` atoms between two attribute references."""
        return (
            self.op.symbol == "="
            and isinstance(self.left, AttrRef)
            and isinstance(self.right, AttrRef)
        )

    def is_constant_equality(self) -> bool:
        """True for ``A = c`` atoms (either side a literal)."""
        return self.op.symbol == "=" and (
            isinstance(self.left, Literal) != isinstance(self.right, Literal)
        )

    def __repr__(self):
        return f"{self.left!r} {self.op.symbol} {self.right!r}"

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and self.op.symbol == other.op.symbol
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("Comparison", self.left, self.op.symbol, self.right))


class Conjunction(Predicate):
    """A conjunction of atomic comparisons."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Predicate]):
        flat: list[Comparison] = []
        for part in parts:
            flat.extend(part.atoms())
        self.parts = tuple(flat)

    def evaluate(self, row):
        symbolic: list[SemiringExpr] = []
        for part in self.parts:
            result = part.evaluate(row)
            if result is False:
                return False
            if result is True:
                continue
            symbolic.append(result)
        if not symbolic:
            return True
        return sprod(symbolic)

    def attributes(self):
        result: frozenset = frozenset()
        for part in self.parts:
            result |= part.attributes()
        return result

    def atoms(self):
        return self.parts

    def __repr__(self):
        if not self.parts:
            return "true"
        return " ∧ ".join(map(repr, self.parts))

    def __eq__(self, other):
        return isinstance(other, Conjunction) and self.parts == other.parts

    def __hash__(self):
        return hash(("Conjunction", self.parts))


def attr(name: str) -> AttrRef:
    """Shorthand for an attribute reference."""
    return AttrRef(name)


def lit(value) -> Literal:
    """Shorthand for a literal operand."""
    return Literal(value)


def _operand(value) -> Operand:
    if isinstance(value, Operand):
        return value
    if isinstance(value, str):
        return AttrRef(value)
    return Literal(value)


def eq(left, right) -> Comparison:
    """``left = right``; strings become attribute references."""
    return Comparison(_operand(left), "=", _operand(right))


def cmp_(left, op, right) -> Comparison:
    """``left θ right``; strings become attribute references."""
    return Comparison(_operand(left), op, _operand(right))


def conj(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates; empty input yields the true predicate."""
    if not predicates:
        return TruePredicate()
    if len(predicates) == 1:
        return predicates[0]
    return Conjunction(predicates)
