"""Deadline compliance and graceful degradation under time pressure.

For each engine the bench issues the demo join query under a sweep of
``time_limit`` values that force mid-run expiry (per-row/per-round
latency is injected through the deterministic fault harness so the
deadline genuinely trips regardless of machine speed) and measures:

* ``deadline_hit_rate`` — how often the limit actually tripped;
* ``overshoot_p95`` — 95th percentile of ``max(0, elapsed - limit)``,
  the end-to-end deadline-compliance number (the contract: small and
  bounded, never a full extra batch or an unbounded hang);
* ``mean_width`` / ``max_width`` — how wide the degraded sound
  intervals are, i.e. what answer quality a caller still holds when the
  budget expires (exact rows are width 0, unfinished rows width 1).

A no-limit baseline per engine records the fault-free full runtime for
context.  Flags: ``--smoke`` (one tight point per engine, one run),
``--runs N``, ``--json PATH``, ``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import statistics
import sys
import time

from benchmarks.common import BenchReport, smoke_mode
from repro.resilience import FaultPlan, fault_plan
from repro.server.bootstrap import demo_session

ROW_QUERY = "SELECT kind, value FROM R"
JOIN_QUERY = "SELECT label FROM R, T WHERE kind = rkind"

#: Injected latency making the tiny demo workload slow enough that the
#: time limits below expire mid-run on any machine (deterministic: the
#: same plan fires the same faults every run).  Monte-Carlo needs no
#: injected latency — its unreachable ε keeps it sampling until either
#: the deadline or the sample budget (which bounds the no-limit
#: baseline) trips.
ENGINE_FAULTS = {
    "sprout": ("engine.sprout.row", 0.008),
    "approx": ("engine.approx.round", 0.03),
    "montecarlo": None,
}

ENGINE_OPTIONS = {
    # 16 rows x 8ms: tight limits catch the run mid-row-loop.
    "sprout": dict(query=ROW_QUERY, engine="sprout"),
    "approx": dict(query=JOIN_QUERY, engine="approx", mode="approx",
                   epsilon=1e-9),
    "montecarlo": dict(
        query=JOIN_QUERY, engine="montecarlo", mode="sample",
        epsilon=1e-6, delta=0.01, budget=20_000,
    ),
}


def _runs(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    for index, arg in enumerate(args):
        if arg == "--runs" and index + 1 < len(args):
            return int(args[index + 1])
        if arg.startswith("--runs="):
            return int(arg.split("=", 1)[1])
    return 1 if smoke_mode(argv) else 5


def measure(engine: str, time_limit, runs: int) -> dict:
    fault = ENGINE_FAULTS[engine]
    options = dict(ENGINE_OPTIONS[engine])
    query = options.pop("query")
    elapsed, overshoot, widths, hits = [], [], [], 0
    for run in range(runs):
        session = demo_session(scale=2)
        plan = FaultPlan(seed=run)
        if fault is not None:
            point, delay = fault
            plan.add(point, "slow", delay=delay, times=None)
        with fault_plan(plan):
            start = time.perf_counter()
            result = session.sql(query, time_limit=time_limit, **options)
            wall = time.perf_counter() - start
        elapsed.append(wall)
        if time_limit is not None:
            overshoot.append(max(0.0, wall - time_limit))
        if result.stats.get("deadline_hit"):
            hits += 1
        widths.extend(row.probability().width for row in result.rows)
    percentile = (
        sorted(overshoot)[max(0, int(round(0.95 * len(overshoot))) - 1)]
        if overshoot
        else 0.0
    )
    return {
        "mean": statistics.mean(elapsed),
        "deadline_hit_rate": hits / runs,
        "overshoot_p95": percentile,
        "mean_width": statistics.mean(widths) if widths else 0.0,
        "max_width": max(widths, default=0.0),
    }


def main(argv=None) -> int:
    runs = _runs(argv)
    limits = [0.02] if smoke_mode(argv) else [0.01, 0.05, 0.2]
    report = BenchReport("resilience", runs=runs)
    print(f"deadline compliance, {runs} run(s) per point")
    header = (
        f"{'engine':<12} {'limit':>8} {'mean_s':>9} {'hit_rate':>9} "
        f"{'over_p95':>9} {'mean_w':>7} {'max_w':>6}"
    )
    print(header)
    print("-" * len(header))
    for engine in sorted(ENGINE_OPTIONS):
        for limit in [None] + limits:
            metrics = measure(engine, limit, runs)
            label = "none" if limit is None else f"{limit:g}"
            print(
                f"{engine:<12} {label:>8} {metrics['mean']:>9.4f} "
                f"{metrics['deadline_hit_rate']:>9.2f} "
                f"{metrics['overshoot_p95']:>9.4f} "
                f"{metrics['mean_width']:>7.3f} {metrics['max_width']:>6.2f}"
            )
            report.add(engine, {"time_limit": limit}, **metrics)
    report.finish(argv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
