"""Experiment A (Figure 7): varying the constant ``c``.

Paper parameters: #v=25, L=200, R=0, #cl=3, #l=3, maxv=200, c ∈ [0, 300]
(c ∈ [0, 30000] for SUM), θ ∈ {=, ≤, ≥}, for MIN, MAX, COUNT, SUM.

Scaled parameters here: #v=10, L=30, maxv=50, c swept over [0, 75]
(scaled by maxv/2 · L for SUM, as in the paper).  Expected shapes:

* MIN/MAX: runtime grows with c until c ≈ maxv, then plateaus — pruning
  admits ever more terms until all participate;
* COUNT: bell shape peaked near L/2 (binomial-coefficient hardness);
* SUM ≈ COUNT with the c-axis scaled by maxv/2.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import average_time, print_series, run_point, smoke_mode
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    left_terms=30,
    right_terms=0,
    variables=10,
    clauses=3,
    literals=3,
    max_value=50,
)

#: c-sweep for MIN/MAX (same axis as the paper's [0, 1.5·maxv]).
C_VALUES = [0, 12, 25, 50, 75]

#: For SUM the axis is scaled by maxv/2 = 25 (expected term value),
#: for COUNT it spans the term count L.
C_VALUES_COUNT = [0, 7, 15, 22, 30]
C_VALUES_SUM = [0, 190, 375, 560, 750]

THETAS = ["=", "<=", ">="]
RUNS = 2


def _params(agg: str, theta: str, c: int) -> ExprParams:
    return BASE.with_(agg_left=agg, theta=theta, constant=c)


def _sweep(agg: str, cs: list[int], thetas: list[str] = None, runs: int = RUNS) -> list[tuple]:
    rows = []
    for theta in thetas if thetas is not None else THETAS:
        for c in cs:
            mean, stdev = run_point(_params(agg, theta, c), runs=runs, seed=c)
            rows.append((agg, theta, c, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
    return rows


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES)
def bench_min(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("MIN", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES)
def bench_max(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("MAX", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES_COUNT)
def bench_count(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("COUNT", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES_SUM)
def bench_sum(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("SUM", theta, c), RUNS), rounds=1, iterations=1
    )


def main():
    smoke = smoke_mode()
    for agg, cs in [
        ("MIN", C_VALUES),
        ("MAX", C_VALUES),
        ("COUNT", C_VALUES_COUNT),
        ("SUM", C_VALUES_SUM),
    ]:
        if smoke:  # CI perf-smoke job: one mid-sweep point, one θ, one run
            cs, thetas, runs = [cs[len(cs) // 2]], ["<="], 1
        else:
            thetas, runs = THETAS, RUNS
        print_series(
            f"Experiment A — {agg} (Figure 7)",
            ["agg", "θ", "c", "mean", "stdev"],
            _sweep(agg, cs, thetas, runs),
        )


if __name__ == "__main__":
    main()
