"""Lock-discipline / race checker.

Consumes the ``_shared_state_`` declarations (:mod:`repro.analysis.registry`)
and enforces three rules over every declaring class or module:

``race-unguarded-write``
    A declared field is mutated (assignment, augmented assignment,
    ``del``, subscript store, or a mutating method such as ``.append`` /
    ``.pop`` / ``.clear``) outside a ``with <owning lock>:`` block.
    ``__init__``-family methods and ``*_locked`` helpers are exempt —
    the former run before the object is shared, the latter assert the
    caller holds the lock.

``race-await-under-lock``
    An ``async`` function awaits while holding a declared lock.
    Declared locks are *threading* locks; awaiting under one parks the
    whole event loop behind a lock that another executor thread may
    hold for milliseconds.

``race-unlocked-helper-call``
    A ``*_locked`` helper is invoked with no declared lock held,
    breaking the caller-holds-lock contract its suffix advertises.

The checker is intentionally flow-insensitive about *which* lock a
``*_locked`` helper needs (the suffix names a contract, not a lock);
everything else is matched exactly against the declaration.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    EXEMPT_METHODS,
    LOCKED_SUFFIX,
    SharedStateDecl,
    collect_declarations,
)
from repro.analysis.runner import AnalysisContext, BaseChecker
from repro.analysis.source import SourceModule

__all__ = ["LockDisciplineChecker", "MUTATING_METHODS"]

#: Method names treated as mutations of the receiver.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "popleft",
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _field_of(node: ast.expr, decl: SharedStateDecl, on_self: bool) -> str | None:
    """The declared field ``node`` refers to, if any."""
    if on_self:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in decl.guards
        ):
            return node.attr
    else:
        if isinstance(node, ast.Name) and node.id in decl.guards:
            return node.id
    return None


def _acquired_locks(
    node: ast.With | ast.AsyncWith, decl: SharedStateDecl, on_self: bool
) -> set[str]:
    acquired: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if on_self and isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in decl.locks
            ):
                acquired.add(expr.attr)
        elif not on_self and isinstance(expr, ast.Name):
            if expr.id in decl.locks:
                acquired.add(expr.id)
    return acquired


class _FunctionAuditor:
    """Walks one function body tracking the set of held declared locks."""

    def __init__(
        self,
        module: SourceModule,
        decl: SharedStateDecl,
        on_self: bool,
        assume_held: bool,
        is_async: bool,
    ):
        self.module = module
        self.decl = decl
        self.on_self = on_self
        self.assume_held = assume_held
        self.is_async = is_async
        self.findings: list[Finding] = []

    def _finding(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.module.path,
                line=getattr(node, "lineno", 1),
                rule_id=rule,
                severity="error",
                message=message,
            )
        )

    def _owner_desc(self) -> str:
        return self.decl.owner or "module"

    def _check_write(self, target: ast.expr, node: ast.AST, held: set) -> None:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        field = _field_of(base, self.decl, self.on_self)
        if field is None:
            return
        required = self.decl.guards[field]
        if self.assume_held or required in held:
            return
        self._finding(
            node,
            "race-unguarded-write",
            f"{self._owner_desc()} field {field!r} is declared guarded by "
            f"{required!r} in _shared_state_ but is mutated without holding it",
        )

    def _check_expr(self, expr: ast.expr, held: set) -> None:
        """Calls (mutators, ``*_locked`` helpers) and awaits inside ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Await):
                for lock in sorted(held):
                    self._finding(
                        node,
                        "race-await-under-lock",
                        f"await while holding threading lock {lock!r} "
                        f"of {self._owner_desc()}; this blocks the event "
                        f"loop — compute first, await after release",
                    )
            elif isinstance(node, ast.Call):
                self._check_call(node, held)

    def _check_call(self, call: ast.Call, held: set) -> None:
        func = call.func
        # Mutating method on a declared field.
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = func.value
            while isinstance(base, ast.Subscript):
                base = base.value
            field = _field_of(base, self.decl, self.on_self)
            if field is not None:
                required = self.decl.guards[field]
                if not self.assume_held and required not in held:
                    self._finding(
                        call,
                        "race-unguarded-write",
                        f"{self._owner_desc()} field {field!r} is declared "
                        f"guarded by {required!r} in _shared_state_ but is "
                        f"mutated without holding it",
                    )
        # ``*_locked`` helper invoked without any declared lock held.
        helper: str | None = None
        if (
            self.on_self
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr.endswith(LOCKED_SUFFIX)
        ):
            helper = func.attr
        elif (
            not self.on_self
            and isinstance(func, ast.Name)
            and func.id.endswith(LOCKED_SUFFIX)
        ):
            helper = func.id
        if helper is not None and not self.assume_held and not held:
            self._finding(
                call,
                "race-unlocked-helper-call",
                f"{helper}() is a caller-holds-lock helper (the "
                f"'{LOCKED_SUFFIX}' suffix) but no {self._owner_desc()} "
                f"lock from _shared_state_ is held at this call",
            )

    def visit_body(self, body: Iterable[ast.stmt], held: set) -> None:
        for statement in body:
            self.visit(statement, held)

    def visit(self, node: ast.stmt, held: set) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._check_expr(item.context_expr, held)
            acquired = _acquired_locks(node, self.decl, self.on_self)
            self.visit_body(node.body, held | acquired)
        elif isinstance(node, ast.Assign):
            self._check_expr(node.value, held)
            for target in node.targets:
                self._check_write(target, node, held)
        elif isinstance(node, ast.AugAssign):
            self._check_expr(node.value, held)
            self._check_write(node.target, node, held)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._check_expr(node.value, held)
                self._check_write(node.target, node, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_write(target, node, held)
        elif isinstance(node, (ast.If, ast.While)):
            self._check_expr(node.test, held)
            self.visit_body(node.body, held)
            self.visit_body(node.orelse, held)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_expr(node.iter, held)
            self.visit_body(node.body, held)
            self.visit_body(node.orelse, held)
        elif isinstance(node, ast.Try):
            self.visit_body(node.body, held)
            for handler in node.handlers:
                self.visit_body(handler.body, held)
            self.visit_body(node.orelse, held)
            self.visit_body(node.finalbody, held)
        elif isinstance(node, _FUNCTION_NODES):
            # A nested function runs later, possibly without the locks
            # currently held; audit it standalone under the same
            # exemption rules as a method of this owner.
            auditor = _FunctionAuditor(
                self.module,
                self.decl,
                self.on_self,
                assume_held=node.name.endswith(LOCKED_SUFFIX),
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
            auditor.visit_body(node.body, set())
            self.findings.extend(auditor.findings)
        elif isinstance(node, (ast.Return, ast.Expr)):
            if node.value is not None:
                self._check_expr(node.value, held)
        elif isinstance(node, ast.Assert):
            self._check_expr(node.test, held)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._check_expr(node.exc, held)
        # Remaining statement kinds (pass, import, global, ...) carry no
        # guarded-state mutations.


def _audit_function(
    module: SourceModule,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    decl: SharedStateDecl,
    on_self: bool,
) -> list[Finding]:
    assume_held = fn.name in EXEMPT_METHODS or fn.name.endswith(LOCKED_SUFFIX)
    auditor = _FunctionAuditor(
        module,
        decl,
        on_self,
        assume_held=assume_held,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
    )
    auditor.visit_body(fn.body, set())
    return auditor.findings


class LockDisciplineChecker(BaseChecker):
    name = "locks"
    rules = (
        "race-unguarded-write",
        "race-await-under-lock",
        "race-unlocked-helper-call",
    )

    def check_module(
        self, module: SourceModule, context: AnalysisContext
    ) -> Iterator[Finding]:
        declarations = collect_declarations(module)
        if not declarations:
            return
        class_decls = {d.owner: d for d in declarations if d.owner is not None}
        module_decl = next(
            (d for d in declarations if d.owner is None), None
        )
        for statement in module.tree.body:
            if (
                isinstance(statement, ast.ClassDef)
                and statement.name in class_decls
            ):
                decl = class_decls[statement.name]
                for item in statement.body:
                    if isinstance(item, _FUNCTION_NODES):
                        yield from _audit_function(module, item, decl, True)
            elif isinstance(statement, _FUNCTION_NODES) and module_decl:
                yield from _audit_function(
                    module, statement, module_decl, False
                )
