"""The Engine protocol: three adapters, one QueryResult type."""

import pytest

from repro import (
    Engine,
    MonteCarloAdapter,
    NaiveAdapter,
    SproutAdapter,
    connect,
    count_,
    create_engine,
)
from repro.engine.base import select_engine_name
from repro.errors import CompilationError, QueryValidationError


@pytest.fixture
def session():
    s = connect(seed=3)
    t = s.table("R", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5),
        ("a", 20, 0.4),
        ("b", 30, 0.7),
    ]:
        t.insert((kind, value), p=p)
    return s


def grouped(s):
    return s.table("R").group_by("kind").agg(n=count_())


class TestProtocol:
    def test_adapters_satisfy_protocol(self, session):
        for name in ("sprout", "naive", "montecarlo"):
            assert isinstance(session.engine(name), Engine)

    def test_create_engine_dispatch(self, session):
        assert isinstance(create_engine("sprout", session.db), SproutAdapter)
        assert isinstance(create_engine("naive", session.db), NaiveAdapter)
        assert isinstance(
            create_engine("montecarlo", session.db), MonteCarloAdapter
        )
        with pytest.raises(QueryValidationError):
            create_engine("quantum", session.db)

    def test_adapters_are_cached_per_session(self, session):
        assert session.engine("naive") is session.engine("naive")


class TestResultParity:
    def test_exact_engines_agree_to_1e9(self, session):
        query = grouped(session)
        sprout = query.run(engine="sprout").tuple_probabilities()
        naive = query.run(engine="naive").tuple_probabilities()
        assert set(sprout) == set(naive)
        for key in naive:
            assert abs(sprout[key] - naive[key]) < 1e-9

    def test_montecarlo_converges(self, session):
        query = grouped(session)
        exact = query.run(engine="naive").tuple_probabilities()
        sampled = query.run(engine="montecarlo", samples=8000).tuple_probabilities()
        for key, probability in exact.items():
            assert sampled.get(key, 0.0) == pytest.approx(probability, abs=0.05)

    def test_all_engines_return_query_result_rows(self, session):
        query = session.table("R").select("kind")
        for name in ("sprout", "naive", "montecarlo"):
            result = query.run(engine=name)
            assert result.engine == name
            assert result.schema.attributes == ("kind",)
            for row in result:
                assert 0.0 <= row.probability() <= 1.0 + 1e-12

    def test_concrete_rows_reject_symbolic_accessors(self, session):
        result = session.table("R").select("kind").run(engine="naive")
        row = result.rows[0]
        assert row.probability() > 0  # precomputed, no compiler needed
        with pytest.raises(CompilationError):
            row.annotation_distribution()

    def test_naive_rejects_run_options(self, session):
        with pytest.raises(QueryValidationError):
            session.run(session.table("R").select("kind"), engine="naive", samples=10)

    def test_montecarlo_rejects_unknown_run_options(self, session):
        # In particular, an auto-fallback carrying sprout-only options must
        # fail with a library error, not a raw TypeError.
        with pytest.raises(QueryValidationError, match="samples"):
            session.run(
                session.table("R").select("kind"),
                engine="montecarlo",
                compute_probabilities=True,
            )

    def test_timings_report_engine_step(self, session):
        query = session.table("R").select("kind")
        assert "enumeration_seconds" in query.run(engine="naive").timings
        assert "sampling_seconds" in query.run(engine="montecarlo").timings
        sprout = query.run(engine="sprout").timings
        assert {"rewrite_seconds", "probability_seconds"} <= set(sprout)


class TestAutoSelection:
    def test_tractable_query_selects_sprout(self, session):
        name, classification = select_engine_name(
            session.db, grouped(session).build()
        )
        assert name == "sprout"
        assert classification.tractable

    def test_hard_query_degrades_to_guaranteed_approximation(self, session):
        # Repeating a base relation leaves Q_ind/Q_hie (Section 6); the
        # redesigned auto policy degrades to deterministic ε-bounds
        # instead of warning and sampling without a guarantee.
        import warnings

        from repro.query.ast import Product, Project, relation

        repeated = Project(Product(relation("R"), relation("R")), ["kind"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            name, classification = select_engine_name(session.db, repeated)
        assert name == "approx"
        assert not classification.tractable

    def test_hard_query_with_sample_spec_selects_montecarlo(self, session):
        from repro.engine.spec import EvalSpec
        from repro.query.ast import Product, Project, relation

        repeated = Project(Product(relation("R"), relation("R")), ["kind"])
        name, classification = select_engine_name(
            session.db, repeated, spec=EvalSpec(mode="sample")
        )
        assert name == "montecarlo"
        assert not classification.tractable
