"""The two TPC-H queries of the paper's Experiment F (Section 7.2).

**Q1** "reports the amount of business that was billed, shipped, and
returned (only the COUNT aggregate is selected)"::

    SELECT l_returnflag, l_linestatus, COUNT(*)
    FROM lineitem WHERE l_shipdate <= :cutoff
    GROUP BY l_returnflag, l_linestatus

**Q2** "is a join of five relations and with a nested aggregate query,
which asks for suppliers with minimum cost for an order for a given part
in a given region"::

    SELECT s_name
    FROM part, supplier, partsupp, nation, region
    WHERE p_partkey = :part AND ps_partkey = p_partkey
      AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey
      AND n_regionkey = r_regionkey AND r_name = :region
      AND ps_supplycost = (SELECT MIN(ps_supplycost)
                           FROM partsupp, supplier, nation, region
                           WHERE ps_partkey = :part AND ... same region ...)

The nested aggregate references partsupp/supplier/nation/region a second
time; pvc-tables handle this by *aliasing*: the alias tables share the
same annotation variables (so the two occurrences are fully correlated)
under renamed attributes.  Use :func:`prepare_q2_aliases` once per
database before running :func:`tpch_q2`.
"""

from __future__ import annotations

from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.db.schema import Schema
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    product_of,
    relation,
)
from repro.query.predicates import cmp_, conj, eq, lit

__all__ = [
    "tpch_q1",
    "tpch_q1_full",
    "tpch_q2",
    "prepare_q2_aliases",
    "alias_table",
    "q2_candidate",
]

#: Default ship-date cutoff: ~90% of the date range, like TPC-H's
#: ``l_shipdate <= date '1998-12-01' - interval ':1' day``.
DEFAULT_CUTOFF = 2160

_Q2_ALIASES = ("partsupp", "supplier", "nation", "region")


def tpch_q1(cutoff: int = DEFAULT_CUTOFF) -> Query:
    """TPC-H Q1 (COUNT variant): ``$_{flag,status; n←COUNT}(σ(lineitem))``.

    The paper's Experiment F notes that "only the COUNT aggregate is
    selected"; :func:`tpch_q1_full` provides the multi-aggregate variant.
    """
    filtered = Select(
        relation("lineitem"), cmp_("l_shipdate", "<=", lit(cutoff))
    )
    return GroupAgg(
        filtered,
        ["l_returnflag", "l_linestatus"],
        [AggSpec.of("order_count", "COUNT")],
    )


def tpch_q1_full(cutoff: int = DEFAULT_CUTOFF) -> Query:
    """TPC-H Q1 with the benchmark's full aggregate list.

    The official pricing-summary report computes several SUMs alongside
    the count::

        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity), SUM(l_extendedprice), COUNT(*)
        FROM lineitem WHERE l_shipdate <= :cutoff
        GROUP BY l_returnflag, l_linestatus

    (the AVG columns are omitted: AVG is out of the paper's scope, being
    conceptually composed from SUM and COUNT — Section 2.2).
    """
    filtered = Select(
        relation("lineitem"), cmp_("l_shipdate", "<=", lit(cutoff))
    )
    return GroupAgg(
        filtered,
        ["l_returnflag", "l_linestatus"],
        [
            AggSpec.of("sum_qty", "SUM", "l_quantity"),
            AggSpec.of("sum_base_price", "SUM", "l_extendedprice"),
            AggSpec.of("count_order", "COUNT"),
        ],
    )


def alias_table(db: PVCDatabase, name: str, alias: str, prefix: str = "i_") -> PVCTable:
    """Register a correlated alias of a stored table.

    The alias shares rows and annotation variables with the original (it
    *is* the same relation, occurring a second time in a query) but
    prefixes every attribute name, satisfying the disjoint-name
    requirement of the product operator.
    """
    base = db[name]
    schema = Schema(
        [prefix + attribute for attribute in base.schema.attributes],
        [prefix + a for a in base.schema.aggregation_attributes],
    )
    aliased = PVCTable(schema, list(base.rows))
    return db.add_table(alias, aliased)


def prepare_q2_aliases(db: PVCDatabase, prefix: str = "i_") -> None:
    """Create the ``i_``-prefixed aliases Q2's nested aggregate needs."""
    for name in _Q2_ALIASES:
        alias = prefix + name
        if alias not in db:
            alias_table(db, name, alias, prefix)


def q2_candidate(db: PVCDatabase) -> tuple[int, str]:
    """A ``(part_key, region)`` pair for which Q2 has a non-empty answer.

    Scans partsupp/supplier/nation/region for a part with at least two
    suppliers in one region (so the MIN comparison is non-trivial).
    """
    region_name = {
        row.values[0]: row.values[1] for row in db["region"]
    }
    nation_region = {
        row.values[0]: row.values[2] for row in db["nation"]
    }
    supplier_nation = {
        row.values[0]: row.values[2] for row in db["supplier"]
    }
    per_part_region: dict[tuple[int, str], int] = {}
    for row in db["partsupp"]:
        part_key, supp_key, _ = row.values
        region = region_name[nation_region[supplier_nation[supp_key]]]
        per_part_region[(part_key, region)] = (
            per_part_region.get((part_key, region), 0) + 1
        )
    best = max(per_part_region, key=per_part_region.get)
    return best


def tpch_q2(part_key: int, region: str = "EUROPE") -> Query:
    """TPC-H Q2: minimum-cost supplier for ``part_key`` in ``region``.

    Requires :func:`prepare_q2_aliases` to have been called on the target
    database.  Classified outside ``Q_hie`` (the partsupp relation
    repeats), so evaluation relies on the generic compiler — mirroring the
    paper, where Q2 exercises the non-read-once code path.
    """
    inner = GroupAgg(
        Select(
            product_of(
                relation("i_partsupp"),
                relation("i_supplier"),
                relation("i_nation"),
                relation("i_region"),
            ),
            conj(
                eq("i_ps_partkey", lit(part_key)),
                eq("i_ps_suppkey", "i_s_suppkey"),
                eq("i_s_nationkey", "i_n_nationkey"),
                eq("i_n_regionkey", "i_r_regionkey"),
                eq("i_r_name", lit(region)),
            ),
        ),
        [],
        [AggSpec.of("min_cost", "MIN", "i_ps_supplycost")],
    )
    outer = Select(
        Product(
            product_of(
                relation("part"),
                relation("supplier"),
                relation("partsupp"),
                relation("nation"),
                relation("region"),
            ),
            inner,
        ),
        conj(
            eq("p_partkey", lit(part_key)),
            eq("ps_partkey", "p_partkey"),
            eq("s_suppkey", "ps_suppkey"),
            eq("s_nationkey", "n_nationkey"),
            eq("n_regionkey", "r_regionkey"),
            eq("r_name", lit(region)),
            cmp_("ps_supplycost", "=", "min_cost"),
        ),
    )
    return Project(outer, ["s_name"])
