"""Joint probability distributions of several expressions (Section 5).

A tuple in the result of an aggregate query may carry several semimodule
expressions *and* a conditional annotation; their joint distribution is
needed, e.g., to report the distribution of an aggregate value conditioned
on the tuple being present.  Following the paper, the joint distribution is
obtained by applying **mutex decomposition until the expressions become
independent**: the joint distribution of independent random variables is
the product of their distributions.

The result is a :class:`~repro.prob.distribution.Distribution` over value
*tuples*, ordered like the input expressions.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.expressions import Expr, SConst, count_occurrences
from repro.algebra.simplify import Normalizer
from repro.core.compile import Compiler
from repro.errors import CompilationError
from repro.prob.distribution import Distribution

__all__ = ["JointCompiler", "joint_distribution"]


class JointCompiler:
    """Computes joint distributions by mutex decomposition.

    Reuses a :class:`~repro.core.compile.Compiler` for the independent
    components, so all single-expression machinery (pruning, factorisation,
    memoisation) applies to each component.
    """

    def __init__(self, compiler: Compiler, max_mutex_nodes: int | None = None):
        self.compiler = compiler
        self._normalizer = Normalizer(compiler.semiring)
        self.max_mutex_nodes = max_mutex_nodes
        self.mutex_nodes_created = 0
        self._memo: dict[tuple, Distribution] = {}

    def joint_distribution(self, exprs: Sequence[Expr]) -> Distribution:
        """The joint distribution of ``exprs`` as a distribution of tuples."""
        normalized = tuple(self._normalizer(e) for e in exprs)
        return self._joint(normalized)

    def _joint(self, exprs: tuple) -> Distribution:
        key = tuple(e.key for e in exprs)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._joint_uncached(exprs)
            self._memo[key] = cached
        return cached

    def _joint_uncached(self, exprs: tuple) -> Distribution:
        shared = self._shared_variables(exprs)
        if not shared:
            # Independent components: the joint is the product distribution.
            result = Distribution.point(())
            for expr in exprs:
                dist = self.compiler.distribution(expr)
                result = result.convolve(dist, lambda acc, v: acc + (v,))
            return result
        # Mutex decomposition on a most-shared, most-occurring variable.
        name = self._choose_variable(exprs, shared)
        branches = []
        for value, prob in sorted(
            self.compiler.registry[name].items(), key=lambda kv: repr(kv[0])
        ):
            constant = SConst(int(value))
            restricted = tuple(
                self._normalizer(e.substitute({name: constant})) for e in exprs
            )
            branches.append((prob, self._joint(restricted)))
        self._count_mutex()
        return Distribution.mixture(branches)

    def _shared_variables(self, exprs: tuple) -> set:
        """Variables occurring in at least two of the expressions."""
        seen: set = set()
        shared: set = set()
        for expr in exprs:
            shared |= expr.variables & seen
            seen |= expr.variables
        return shared

    def _choose_variable(self, exprs: tuple, shared: set) -> str:
        totals: dict[str, int] = {}
        for expr in exprs:
            for name, count in count_occurrences(expr).items():
                if name in shared:
                    totals[name] = totals.get(name, 0) + count
        return max(shared, key=lambda name: (totals.get(name, 0), name))

    def _count_mutex(self):
        self.mutex_nodes_created += 1
        if self.max_mutex_nodes is not None and (
            self.mutex_nodes_created > self.max_mutex_nodes
        ):
            raise CompilationError(
                f"joint compilation budget of {self.max_mutex_nodes} "
                f"⊔-nodes exhausted"
            )


def joint_distribution(exprs: Sequence[Expr], compiler: Compiler) -> Distribution:
    """One-shot convenience wrapper around :class:`JointCompiler`."""
    return JointCompiler(compiler).joint_distribution(list(exprs))
