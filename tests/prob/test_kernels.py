"""Parity suite: vectorized kernels ≡ generic dict path.

Every fast path in :mod:`repro.prob.kernels` must produce the *same*
distribution as the pure-Python loop it replaces — same support values
(including Python value types for integer supports) and probabilities
within 1e-12.  The suite drives randomized numeric distributions through
both implementations by toggling :func:`kernels.set_numpy_enabled`, and
also pins down the size-aware n-ary fold and the batched Monte-Carlo
sampler's determinism and statistical behaviour.
"""

from __future__ import annotations

import math
import operator
import random

import pytest

from repro.algebra.monoid import COUNT, MAX, MIN, PROD, SUM, CappedSumMonoid
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.prob import convolution, kernels
from repro.prob.distribution import Distribution

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not installed"
)


@pytest.fixture
def rng():
    return random.Random(20260728)


def random_distribution(rng, size, values="int", low=0, high=60):
    if values == "int":
        size = min(size, high - low + 1)  # can't have more distinct ints
    support = {}
    while len(support) < size:
        if values == "int":
            v = rng.randint(low, high)
        else:
            v = round(rng.uniform(low, high), 3)
        support[v] = rng.uniform(0.01, 1.0)
    total = sum(support.values())
    return Distribution({v: p / total for v, p in support.items()})


def with_dict_path(fn):
    previous = kernels.set_numpy_enabled(False)
    try:
        return fn()
    finally:
        kernels.set_numpy_enabled(previous)


def assert_distributions_identical(fast: Distribution, slow: Distribution):
    assert set(fast.support()) == set(slow.support())
    for value in slow.support():
        assert fast[value] == pytest.approx(slow[value], abs=1e-12)
    # Integer supports must come back as Python ints, not numpy scalars.
    for value in fast.support():
        assert type(value) in (int, float, bool), type(value)


class TestConvolveParity:
    @pytest.mark.parametrize("op", [operator.add, operator.mul, min, max])
    @pytest.mark.parametrize("values", ["int", "float"])
    def test_builtin_ops(self, rng, op, values):
        for _ in range(5):
            a = random_distribution(rng, rng.randint(8, 40), values)
            b = random_distribution(rng, rng.randint(8, 40), values)
            fast = a.convolve(b, op)
            slow = with_dict_path(lambda: a.convolve(b, op))
            assert_distributions_identical(fast, slow)

    @pytest.mark.parametrize("monoid", [SUM, COUNT, MIN, MAX, PROD])
    def test_monoid_add(self, rng, monoid):
        for _ in range(5):
            a = random_distribution(rng, rng.randint(8, 30), high=20)
            b = random_distribution(rng, rng.randint(8, 30), high=20)
            fast = convolution.monoid_add(a, b, monoid)
            slow = with_dict_path(lambda: convolution.monoid_add(a, b, monoid))
            assert_distributions_identical(fast, slow)

    def test_capped_sum(self, rng):
        capped = CappedSumMonoid(37)
        for _ in range(5):
            a = random_distribution(rng, 20, high=30)
            b = random_distribution(rng, 20, high=30)
            fast = convolution.monoid_add(a, b, capped)
            slow = with_dict_path(lambda: convolution.monoid_add(a, b, capped))
            assert_distributions_identical(fast, slow)
            assert max(fast.support()) <= 37

    def test_min_with_infinity_support(self, rng):
        # MIN aggregations carry the monoid zero +∞; min/max kernels must
        # keep it intact and still return ints for the finite values.
        a = Distribution({math.inf: 0.3, **{i: 0.7 / 12 for i in range(12)}})
        b = random_distribution(rng, 15)
        fast = convolution.monoid_add(a, b, MIN)
        slow = with_dict_path(lambda: convolution.monoid_add(a, b, MIN))
        assert_distributions_identical(fast, slow)

    def test_naturals_semiring(self, rng):
        a = random_distribution(rng, 12, high=15)
        b = random_distribution(rng, 12, high=15)
        for fn in (convolution.semiring_add, convolution.semiring_mul):
            fast = fn(a, b, NATURALS)
            slow = with_dict_path(lambda: fn(a, b, NATURALS))
            assert_distributions_identical(fast, slow)

    def test_unrecognized_op_uses_dict_path(self, rng):
        a = random_distribution(rng, 10)
        b = random_distribution(rng, 10)
        fast = a.convolve(b, lambda x, y: x - y)
        slow = with_dict_path(lambda: a.convolve(b, lambda x, y: x - y))
        assert fast.almost_equals(slow, tol=1e-12)

    def test_symbolic_support_uses_dict_path(self):
        a = Distribution({"a": 0.5, "b": 0.5})
        b = Distribution({"x": 0.25, "y": 0.75})
        result = a.convolve(b, lambda x, y: x + y)
        assert result["ax"] == pytest.approx(0.125)

    def test_huge_ints_fall_back_exactly(self):
        big = 2**60
        a = Distribution({big: 0.5, big + 1: 0.5})
        b = Distribution({1: 0.5, 2: 0.5})
        result = convolution.monoid_add(a, b, SUM)
        assert big + 1 in result.support() and big + 3 in result.support()


class TestMixtureExpectationMapParity:
    def test_mixture(self, rng):
        for _ in range(5):
            weighted = [
                (rng.uniform(0.05, 0.5), random_distribution(rng, rng.randint(10, 40)))
                for _ in range(4)
            ]
            total = sum(w for w, _ in weighted)
            weighted = [(w / total, d) for w, d in weighted]
            fast = Distribution.mixture(weighted)
            slow = with_dict_path(lambda: Distribution.mixture(weighted))
            assert_distributions_identical(fast, slow)

    def test_expectation(self, rng):
        d = random_distribution(rng, 120)
        fast = d.expectation()
        slow = with_dict_path(lambda: d.expectation())
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_map(self, rng):
        d = random_distribution(rng, 150)
        fast = d.map(lambda v: v % 7)
        slow = with_dict_path(lambda: d.map(lambda v: v % 7))
        assert_distributions_identical(fast, slow)

    def test_comparison(self, rng):
        for op in ("=", "!=", "<=", ">=", "<", ">"):
            a = random_distribution(rng, 20)
            b = random_distribution(rng, 20)
            compare_op = __import__(
                "repro.algebra.conditions", fromlist=["COMPARISON_OPS"]
            ).COMPARISON_OPS[op]
            fast = convolution.comparison(a, b, compare_op, BOOLEAN)
            slow = with_dict_path(
                lambda: convolution.comparison(a, b, compare_op, BOOLEAN)
            )
            assert fast.almost_equals(slow, tol=1e-12)


class TestSizeAwareFold:
    def test_balanced_fold_equals_sequential(self, rng):
        for monoid in (SUM, MIN, MAX, CappedSumMonoid(50)):
            dists = [
                random_distribution(rng, rng.randint(2, 25), high=25)
                for _ in range(9)
            ]
            balanced = convolution.monoid_add_many(dists, monoid)
            sequential = dists[0]
            for other in dists[1:]:
                sequential = convolution.monoid_add(sequential, other, monoid)
            # Reordering a 9-way convolution reassociates float sums, so
            # probabilities agree to rounding (well inside the library's
            # 1e-9 TOLERANCE), while the supports must match exactly.
            assert balanced.almost_equals(sequential, tol=1e-9)
            assert set(balanced.support()) == set(sequential.support())

    def test_fold_combines_smallest_first(self):
        # Three singletons and one large distribution: the heap must pick
        # the two singletons first; combining left-to-right instead would
        # convolve the large support twice.  Verify via call sequence.
        sizes = []

        class Probe:
            def __init__(self, n):
                self.n = n

            def __len__(self):
                return self.n

        def pairwise(a, b):
            sizes.append((len(a), len(b)))
            return Probe(len(a) + len(b))

        kernels.convolve_many([Probe(100), Probe(1), Probe(1), Probe(10)], pairwise)
        assert sizes[0] == (1, 1)
        assert sizes[1] == (2, 10)
        assert sizes[2] == (12, 100)

    def test_single_operand(self):
        d = Distribution({1: 1.0})
        assert convolution.monoid_add_many([d], SUM) is d

    def test_semiring_folds(self, rng):
        dists = [random_distribution(rng, rng.randint(2, 12), high=6) for _ in range(5)]
        balanced = convolution.semiring_add_many(dists, NATURALS)
        sequential = dists[0]
        for other in dists[1:]:
            sequential = convolution.semiring_add(sequential, other, NATURALS)
        assert balanced.almost_equals(sequential, tol=1e-12)


class TestPathParityEdgeCases:
    """Divergences between the numpy and dict paths found by review:
    both configurations must behave identically on edge inputs too."""

    def test_over_unit_mixture_raises_on_both_paths(self, rng):
        from repro.errors import DistributionError

        big1 = random_distribution(rng, 100, high=150)
        big2 = random_distribution(rng, 100, high=150)
        for enabled in (True, False):
            previous = kernels.set_numpy_enabled(enabled)
            try:
                with pytest.raises(DistributionError):
                    Distribution.mixture([(0.8, big1), (0.8, big2)])
            finally:
                kernels.set_numpy_enabled(previous)

    def test_scalar_action_scales_false_branch_by_alpha_total(self):
        from repro.algebra.semiring import BOOLEAN as B

        phi = Distribution({True: 0.3, False: 0.7})
        alpha = Distribution({5: 0.5})  # sub-normalized semimodule value
        fast = convolution.scalar_action(phi, alpha, SUM, B)
        slow = phi.convolve(alpha, lambda s, m: SUM.act(s, m, B))
        assert fast.almost_equals(slow, tol=1e-12)

    def test_map_evaluates_fn_exactly_once_per_value(self, rng):
        d = random_distribution(rng, 100, high=300)
        calls = []

        def fn(value):
            calls.append(value)
            return str(value)  # non-numeric: forces the dict fallback

        d.map(fn)
        assert len(calls) == len(d)

    def test_infinite_operands_of_add_use_dict_path(self, rng):
        # inf + -inf yields NaN; np.unique would merge NaN results that
        # the dict path keeps as distinct keys, so the kernel must refuse
        # combining ops over non-finite supports (select ops still run).
        a = Distribution(
            {**{i: 0.9 / 40 for i in range(40)}, math.inf: 0.05, -math.inf: 0.05}
        )
        b = random_distribution(rng, 4, high=6)
        fast = a.convolve(b, operator.add)
        slow = with_dict_path(lambda: a.convolve(b, operator.add))
        assert len(fast) == len(slow)


class TestKernelToggles:
    def test_set_numpy_enabled_roundtrip(self):
        previous = kernels.set_numpy_enabled(False)
        assert not kernels.numpy_enabled()
        kernels.set_numpy_enabled(previous)
        assert kernels.numpy_enabled() == previous

    def test_distribution_results_identical_through_dtree(self, rng):
        # End-to-end: one Experiment-A style condition, compiled twice,
        # with and without the kernels.
        from repro.algebra.semiring import BOOLEAN as B
        from repro.core.compile import Compiler
        from repro.workloads.random_expr import ExprParams, generate_condition

        params = ExprParams(
            left_terms=10, variables=6, clauses=2, literals=2,
            max_value=12, constant=30, theta="<=", agg_left="SUM",
        )
        expr, registry = generate_condition(params, seed=11)
        fast = Compiler(registry, B).distribution(expr)
        slow = with_dict_path(
            lambda: Compiler(registry, B).distribution(expr)
        )
        assert fast.almost_equals(slow, tol=1e-12)
