"""Sensor-network monitoring: aggregation over noisy measurements.

A building has temperature sensors whose readings are uncertain in two
ways the paper's model captures naturally:

* *detection uncertainty* — a sensor may have been offline, so its reading
  row exists only with some probability (tuple-independent rows);
* *reading ambiguity* — a flaky sensor reports one of several candidate
  values, exactly one of which is real (a BID block over a block variable,
  encoded with conditional annotations ``[x_b = i]``).

We then ask per-floor questions: the distribution of the number of live
readings (COUNT), the probability that the maximum temperature exceeds an
alert threshold (MAX with a HAVING-style condition), and — through the
session facade — the same alert answered by all three engines.

BID blocks need bag semantics (the block variables range over 0..k), so
the whole session runs under the naturals semiring — demonstrating
Table 1's probabilistic-bag row.

Run with::

    python examples/sensor_network.py
"""

from repro import NATURALS, cmp_, connect, count_, max_

ALERT_THRESHOLD = 30


def build_session():
    s = connect(semiring=NATURALS, engine="sprout", seed=1)

    # Reliable sensors: the reading is correct when the sensor was online.
    # (floor, sensor, temperature) with per-row probability of being live.
    s.table("steady", ["floor", "sensor", "temp"]).insert_many(
        [
            ((1, "s11", 21), 0.95),
            ((1, "s12", 24), 0.9),
            ((2, "s21", 28), 0.85),
            ((2, "s22", 26), 0.9),
        ]
    )

    # Flaky sensors: each block lists mutually exclusive candidate
    # readings (at most one is real; the remainder is "no reading").
    flaky = s.table("flaky", ["floor", "sensor", "temp"])
    flaky.insert_block([((1, "f1", 23), 0.5), ((1, "f1", 35), 0.3)])  # 20% offline
    flaky.insert_block([((2, "f2", 29), 0.6), ((2, "f2", 33), 0.4)])
    return s


def main():
    s = build_session()
    readings = s.table("steady").union(s.table("flaky"))

    # 1. COUNT of live readings per floor.
    counts = readings.group_by("floor").agg(n=count_())
    print("Distribution of the number of live readings per floor:")
    for row in counts.run():
        floor = row.values[0]
        dist = row.value_distribution("n")
        line = ", ".join(f"{v}:{p:.3f}" for v, p in sorted(dist.items()))
        print(f"  floor {floor}: {line}")

    # 2. Overheating alert: P(MAX(temp) > threshold) per floor.
    alert = (
        readings.group_by("floor")
        .agg(hot=max_("temp"))
        .where(cmp_("hot", ">", ALERT_THRESHOLD))
        .select("floor")
    )
    print(f"\nP(max temperature > {ALERT_THRESHOLD}) per floor:")
    for row in alert.run():
        print(f"  floor {row.values[0]}: {row.probability():.4f}")

    # 3. Cross-check against the exact possible-worlds oracle and a
    #    Monte-Carlo estimate — the same query, the same QueryResult type,
    #    three engines behind the one facade.
    compiled = alert.run(engine="sprout").tuple_probabilities()
    exact = alert.run(engine="naive").tuple_probabilities()
    sampled = alert.run(engine="montecarlo", samples=2000).tuple_probabilities()
    print("\nFloor-1 alert probability, three ways:")
    key = (1,)
    print(f"  compiled d-tree : {compiled.get(key, 0.0):.4f}")
    print(f"  possible worlds : {exact.get(key, 0.0):.4f}")
    print(f"  Monte Carlo(2k) : {sampled.get(key, 0.0):.4f}")


if __name__ == "__main__":
    main()
