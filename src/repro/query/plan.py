"""Logical query optimisation: selection merging and projection pushdown.

The Figure-4 construction is purely compositional, so classical algebraic
rewrites apply — and because annotations live in a commutative semiring,
the standard bag-semantics equivalences (which hold in *every* commutative
semiring, Green et al. [7]) preserve not just the answer tuples but their
annotation *values*, hence all probabilities.  This module implements the
rewrites with the highest payoff for the interpreter:

* **selection merging** — ``σ_φ(σ_ψ(Q)) → σ_{φ∧ψ}(Q)``, which also feeds
  the executor's hash-join planner a single conjunction;
* **projection collapsing** — ``π_A(π_B(Q)) → π_A(Q)``;
* **projection pushdown** — attributes that no ancestor operator needs
  are projected away directly above the base relations, shrinking every
  intermediate result.

Pushdown is careful to keep attributes needed by selection predicates,
join conditions, grouping and aggregation inputs, and never projects onto
aggregation attributes (Definition 5's constraint).
"""

from __future__ import annotations

from typing import Mapping

from repro.db.schema import Schema
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.query.predicates import conj

__all__ = ["optimize", "merge_selections", "collapse_projections", "pushdown_projections"]


def optimize(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Apply all rewrites; the result is equivalent to ``query``."""
    query = merge_selections(query)
    query = collapse_projections(query)
    query = pushdown_projections(query, catalog)
    query = merge_selections(query)
    return query


def merge_selections(query: Query) -> Query:
    """Fuse cascading selections into single conjunctions."""
    if isinstance(query, Select):
        child = merge_selections(query.child)
        atoms = list(query.predicate.atoms())
        while isinstance(child, Select):
            atoms.extend(child.predicate.atoms())
            child = child.child
        return Select(child, conj(*atoms))
    return _rebuild(query, merge_selections)


def collapse_projections(query: Query) -> Query:
    """Drop inner projections that an outer projection overrides."""
    if isinstance(query, Project):
        child = collapse_projections(query.child)
        while isinstance(child, Project):
            child = child.child
        return Project(child, query.attributes)
    return _rebuild(query, collapse_projections)


def pushdown_projections(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Insert narrowing projections directly above base relations."""
    required = set(query.schema(catalog).attributes)
    return _pushdown(query, required, catalog)


def _pushdown(query: Query, required: set, catalog) -> Query:
    if isinstance(query, BaseRelation):
        schema = query.schema(catalog)
        keep = [a for a in schema.attributes if a in required]
        if len(keep) < len(schema.attributes) and keep:
            return Project(query, keep)
        return query
    if isinstance(query, Select):
        needed = required | query.predicate.attributes()
        return Select(_pushdown(query.child, needed, catalog), query.predicate)
    if isinstance(query, Project):
        # The projection itself defines what is needed below.
        needed = set(query.attributes)
        return Project(_pushdown(query.child, needed, catalog), query.attributes)
    if isinstance(query, Product):
        left_attrs = set(query.left.schema(catalog).attributes)
        right_attrs = set(query.right.schema(catalog).attributes)
        return Product(
            _pushdown(query.left, required & left_attrs, catalog),
            _pushdown(query.right, required & right_attrs, catalog),
        )
    if isinstance(query, Union):
        # Union operands share the full schema; narrowing them would
        # change which tuples merge, so push nothing (projections above
        # the union already handle narrowing).
        return Union(
            _pushdown(query.left, set(query.left.schema(catalog).attributes), catalog),
            _pushdown(query.right, set(query.right.schema(catalog).attributes), catalog),
        )
    if isinstance(query, GroupAgg):
        idempotent = all(
            spec.monoid.name in ("MIN", "MAX") for spec in query.aggregations
        )
        if idempotent:
            # New merging projections are sound below MIN/MAX: the
            # monoids are idempotent, so (Φ₁+Φ₂)⊗m = Φ₁⊗m + Φ₂⊗m.
            needed = set(query.groupby)
            for spec in query.aggregations:
                if spec.attribute is not None:
                    needed.add(spec.attribute)
        else:
            # SUM/COUNT/PROD count *tuples*; inserting a projection that
            # merges distinct tuples would change multiplicities under
            # set semantics, so require the full child schema (existing
            # user projections below are untouched and remain sound).
            needed = set(query.child.schema(catalog).attributes)
        return GroupAgg(
            _pushdown(query.child, needed, catalog),
            query.groupby,
            query.aggregations,
        )
    if isinstance(query, Extend):
        needed = (required - {query.target}) | {query.source}
        return Extend(_pushdown(query.child, needed, catalog), query.target, query.source)
    return query


def _rebuild(query: Query, recurse) -> Query:
    """Apply ``recurse`` to the children of a node, preserving its shape."""
    if isinstance(query, BaseRelation):
        return query
    if isinstance(query, Select):
        return Select(recurse(query.child), query.predicate)
    if isinstance(query, Project):
        return Project(recurse(query.child), query.attributes)
    if isinstance(query, Product):
        return Product(recurse(query.left), recurse(query.right))
    if isinstance(query, Union):
        return Union(recurse(query.left), recurse(query.right))
    if isinstance(query, GroupAgg):
        return GroupAgg(recurse(query.child), query.groupby, query.aggregations)
    if isinstance(query, Extend):
        return Extend(recurse(query.child), query.target, query.source)
    return query
