"""Unit tests for deterministic relations with semiring multiplicities."""

import math

import pytest

from repro.algebra.monoid import COUNT, MAX, MIN, PROD, SUM
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import SchemaError


def bag(attrs, rows):
    return Relation(Schema(attrs), NATURALS, rows)


def setrel(attrs, rows):
    return Relation(Schema(attrs), BOOLEAN, rows)


class TestMultiplicities:
    def test_add_accumulates(self):
        rel = bag(["a"], [((1,), 2), ((1,), 3)])
        assert rel.multiplicity((1,)) == 5

    def test_boolean_add_is_or(self):
        rel = setrel(["a"], [((1,), True), ((1,), True)])
        assert rel.multiplicity((1,)) is True
        assert len(rel) == 1

    def test_zero_multiplicity_removed(self):
        rel = setrel(["a"], [((1,), False)])
        assert len(rel) == 0
        assert (1,) not in rel

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            bag(["a", "b"], [((1,), 1)])

    def test_support(self):
        rel = bag(["a"], [((1,), 2), ((2,), 1)])
        assert rel.support() == {(1,), (2,)}


class TestOperators:
    def test_select(self):
        rel = bag(["a"], [((1,), 1), ((5,), 2)])
        result = rel.select(lambda row: row["a"] > 3)
        assert result.support() == {(5,)}

    def test_project_adds_multiplicities(self):
        rel = bag(["a", "b"], [((1, 10), 2), ((1, 20), 3)])
        result = rel.project(["a"])
        assert result.multiplicity((1,)) == 5

    def test_project_boolean_merges(self):
        rel = setrel(["a", "b"], [((1, 10), True), ((1, 20), True)])
        assert rel.project(["a"]).multiplicity((1,)) is True

    def test_product_multiplies(self):
        left = bag(["a"], [((1,), 2)])
        right = bag(["b"], [((9,), 3)])
        result = left.product(right)
        assert result.multiplicity((1, 9)) == 6

    def test_product_semiring_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            bag(["a"], []).product(setrel(["b"], []))

    def test_union_adds(self):
        r1 = bag(["a"], [((1,), 1)])
        r2 = bag(["a"], [((1,), 2), ((2,), 1)])
        result = r1.union(r2)
        assert result.multiplicity((1,)) == 3
        assert result.multiplicity((2,)) == 1

    def test_union_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            bag(["a"], []).union(bag(["b"], []))

    def test_extend_copies_attribute(self):
        rel = bag(["a"], [((7,), 1)])
        result = rel.extend("b", "a")
        assert result.support() == {(7, 7)}


class TestGroupAggregate:
    def test_sum_with_bag_multiplicities(self):
        rel = bag(["g", "v"], [((1, 10), 2), ((1, 5), 1), ((2, 7), 1)])
        result = rel.group_aggregate(["g"], [("total", SUM, "v")])
        assert result.multiplicity((1, 25)) == 1  # 2·10 + 5
        assert result.multiplicity((2, 7)) == 1

    def test_count_counts_multiplicities(self):
        rel = bag(["g", "v"], [((1, 10), 2), ((1, 5), 1)])
        result = rel.group_aggregate(["g"], [("n", COUNT, None)])
        assert result.support() == {(1, 3)}

    def test_min_ignores_multiplicity_magnitude(self):
        rel = bag(["g", "v"], [((1, 10), 5), ((1, 3), 1)])
        result = rel.group_aggregate(["g"], [("m", MIN, "v")])
        assert result.support() == {(1, 3)}

    def test_max_boolean(self):
        rel = setrel(["g", "v"], [((1, 10), True), ((1, 30), True)])
        result = rel.group_aggregate(["g"], [("m", MAX, "v")])
        assert result.support() == {(1, 30)}

    def test_prod_exponentiates_multiplicity(self):
        rel = bag(["v"], [((2,), 3)])
        result = rel.group_aggregate([], [("p", PROD, "v")])
        assert result.support() == {(8,)}

    def test_global_aggregate_on_empty_input_yields_neutral(self):
        rel = bag(["v"], [])
        result = rel.group_aggregate([], [("m", MIN, "v")])
        assert result.support() == {(math.inf,)}

    def test_grouped_aggregate_on_empty_input_is_empty(self):
        rel = bag(["g", "v"], [])
        result = rel.group_aggregate(["g"], [("m", MIN, "v")])
        assert len(result) == 0

    def test_multiple_aggregates(self):
        rel = setrel(["g", "v"], [((1, 10), True), ((1, 30), True)])
        result = rel.group_aggregate(
            ["g"], [("mn", MIN, "v"), ("mx", MAX, "v"), ("n", COUNT, None)]
        )
        assert result.support() == {(1, 10, 30, 2)}

    def test_group_tuple_multiplicity_is_one(self):
        rel = bag(["g", "v"], [((1, 10), 7)])
        result = rel.group_aggregate(["g"], [("n", COUNT, None)])
        assert result.multiplicity((1, 7)) == 1
