"""Experiment D (Figure 9): varying clause arity and clauses per term.

Paper parameters: #v=25, L=100, R=0, maxv=5, c=3, θ is ≤, #runs=20;
(a) #l ∈ [1, 20] at #cl=3, (b) #cl ∈ [1, 20] at #l=3, all four monoids.

Scaled parameters: #v=10, L=30, #l and #cl ∈ [1, 8].  Expected shapes:
easy/hard/easy in the number of literals per clause (single-literal
clauses factor out read-once, near-full clauses absorb to ⊤ after one
expansion — the hardness sits in between, as in random k-SAT), and
runtime growing with clauses per term (each extra clause entangles more
of the variable pool per term), with MIN/MAX below COUNT/SUM throughout.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, average_time, print_series, run_point
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    left_terms=30,
    right_terms=0,
    variables=10,
    max_value=5,
    constant=3,
    theta="<=",
)

ARITIES = [1, 2, 3, 5, 8]
AGGS = ["MIN", "MAX", "COUNT", "SUM"]
RUNS = 2


def _params_literals(agg: str, literals: int) -> ExprParams:
    return BASE.with_(agg_left=agg, clauses=3, literals=literals)


def _params_clauses(agg: str, clauses: int) -> ExprParams:
    return BASE.with_(agg_left=agg, clauses=clauses, literals=3)


@pytest.mark.parametrize("agg", AGGS)
@pytest.mark.parametrize("literals", ARITIES)
def bench_literals_per_clause(benchmark, agg, literals):
    benchmark.pedantic(
        average_time,
        args=(_params_literals(agg, literals), RUNS),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("agg", AGGS)
@pytest.mark.parametrize("clauses", ARITIES)
def bench_clauses_per_term(benchmark, agg, clauses):
    benchmark.pedantic(
        average_time,
        args=(_params_clauses(agg, clauses), RUNS),
        rounds=1,
        iterations=1,
    )


def main():
    report = BenchReport("exp_d")
    rows = []
    for agg in AGGS:
        for literals in ARITIES:
            mean, stdev = run_point(
                _params_literals(agg, literals), runs=RUNS, seed=literals
            )
            rows.append((agg, literals, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
            report.add(agg, {"literals": literals, "runs": RUNS}, mean=mean, stdev=stdev)
    print_series(
        "Experiment D(a) — literals per clause #l (Figure 9a)",
        ["agg", "#l", "mean", "stdev"],
        rows,
    )
    rows = []
    for agg in AGGS:
        for clauses in ARITIES:
            mean, stdev = run_point(
                _params_clauses(agg, clauses), runs=RUNS, seed=clauses
            )
            rows.append((agg, clauses, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
            report.add(agg, {"clauses": clauses, "runs": RUNS}, mean=mean, stdev=stdev)
    print_series(
        "Experiment D(b) — clauses per term #cl (Figure 9b)",
        ["agg", "#cl", "mean", "stdev"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
