"""The memoised columnar views of Relation and PVCTable (and their
invalidation) — the world-invariant extraction the kernels lean on."""

from __future__ import annotations

from repro.algebra.expressions import SConst, Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.pvc_table import PVCDatabase
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.prob.variables import VariableRegistry


def rel():
    r = Relation(Schema(["a", "b"]), NATURALS)
    r.add((1, "x"), 2)
    r.add((2, "y"), 1)
    return r


class TestRelationCaches:
    def test_column_memoised(self):
        r = rel()
        first = r.column("a")
        assert first == [1, 2]
        assert r.column("a") is first

    def test_columns_aligned_with_tuple_order(self):
        r = rel()
        assert r.columns() == [[1, 2], ["x", "y"]]
        assert r.columns(["b"]) == [["x", "y"]]

    def test_hash_index_memoised(self):
        r = rel()
        index = r.hash_index(["a"])
        assert index[(1,)] == [((1, "x"), 2)]
        assert r.hash_index(["a"]) is index

    def test_mutation_invalidates(self):
        r = rel()
        column = r.column("a")
        index = r.hash_index(["a"])
        r.add((3, "z"), 1)
        assert r.column("a") == [1, 2, 3]
        assert r.column("a") is not column
        assert (3,) in r.hash_index(["a"])
        assert r.hash_index(["a"]) is not index

    def test_multiplicity_change_without_len_change_invalidates(self):
        """The trap a row-count key would miss: ``add`` can change a
        multiplicity — or cancel a tuple — without changing ``len``."""
        r = rel()
        index = r.hash_index(["a"])
        assert index[(1,)] == [((1, "x"), 2)]
        r.add((1, "x"), 3)  # merged: same len(), new multiplicity
        assert len(r) == 2
        assert r.hash_index(["a"])[(1,)] == [((1, "x"), 5)]

    def test_from_mapping_starts_clean(self):
        r = Relation.from_mapping(
            Schema(["a"]), NATURALS, {(1,): 2, (2,): 1}
        )
        assert r.column("a") == [1, 2]
        r.add((3,), 1)
        assert r.column("a") == [1, 2, 3]


class TestPVCTableCaches:
    def build(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=BOOLEAN)
        t = db.create_table("T", ["a", "b"])
        reg.bernoulli("x", 0.5)
        t.add((1, "p"), Var("x"))
        t.add((2, "q"), SConst(True))
        return t

    def test_value_columns_memoised(self):
        t = self.build()
        columns = t.value_columns()
        assert columns[0] == [1, 2]
        assert columns[1] == ["p", "q"]
        assert t.value_columns() is columns

    def test_annotation_column_memoised(self):
        t = self.build()
        annotations = t.annotation_column()
        assert annotations == [Var("x"), SConst(True)]
        assert t.annotation_column() is annotations

    def test_append_invalidates(self):
        t = self.build()
        columns = t.value_columns()
        annotations = t.annotation_column()
        t.add((3, "r"), SConst(True))
        assert t.value_columns() is not columns
        assert t.value_columns()[0] == [1, 2, 3]
        assert t.annotation_column() is not annotations
        assert len(t.annotation_column()) == 3
