"""Self-hosting: the committed tree passes its own static analysis."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, default_checkers

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


class TestSelfHost:
    def test_committed_tree_is_clean_via_api(self):
        result = analyze_paths([str(SRC_REPRO)])
        assert result.clean, "\n".join(f.render() for f in result.findings)
        assert result.files_scanned > 50

    def test_committed_tree_is_clean_via_cli(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC_REPRO)],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "clean" in completed.stdout

    def test_cli_json_artifact_matches_api(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        artifact = tmp_path / "findings.json"
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis", str(SRC_REPRO),
                "--format", "json", "--json-output", str(artifact),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        payload = json.loads(artifact.read_text())
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_default_checkers_cover_all_five_dimensions(self):
        names = {checker.name for checker in default_checkers()}
        assert names == {"locks", "forksafety", "kernels", "statskeys", "epochs"}

    def test_shared_state_declarations_exist_where_promised(self):
        """The runtime classes this PR hardened carry declarations."""
        from repro.codegen import runtime
        from repro.engine.base import CompilationCache, PlanCache
        from repro.parallel.pool import SharedPool
        from repro.server.app import QueryServer
        from repro.server.statements import StatementCache

        for owner in (CompilationCache, PlanCache, StatementCache):
            assert "_lock" in owner._shared_state_
        assert "_state_lock" in SharedPool._shared_state_
        assert "_counters_lock" in QueryServer._shared_state_
        assert runtime._shared_state_ == {"_STATS_LOCK": ("_STATS",)}


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
