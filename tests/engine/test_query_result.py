"""QueryResult conveniences and per-row memoization."""

import pytest

from repro import BOOLEAN, Compiler, Schema, Var, VariableRegistry, connect
from repro.engine.sprout import QueryResult, ResultRow


class CountingSource:
    """Distribution source that counts compile requests."""

    def __init__(self, registry):
        self.compiler = Compiler(registry, BOOLEAN)
        self.calls = 0

    @property
    def semiring(self):
        return self.compiler.semiring

    def distribution(self, expr):
        self.calls += 1
        return self.compiler.distribution(expr)


@pytest.fixture
def source():
    registry = VariableRegistry()
    registry.bernoulli("x", 0.25)
    registry.bernoulli("y", 0.5)
    return CountingSource(registry)


class TestMemoization:
    def test_probability_compiles_once(self, source):
        row = ResultRow(Schema(["a"]), (1,), Var("x"), source)
        assert row.probability() == pytest.approx(0.25)
        assert row.probability() == pytest.approx(0.25)
        assert source.calls == 1

    def test_annotation_distribution_shares_the_memo(self, source):
        row = ResultRow(Schema(["a"]), (1,), Var("x"), source)
        row.probability()
        dist = row.annotation_distribution()
        assert dist[True] == pytest.approx(0.25)
        assert source.calls == 1

    def test_pretty_does_not_recompile(self, source):
        schema = Schema(["a"])
        rows = [
            ResultRow(schema, (1,), Var("x"), source),
            ResultRow(schema, (2,), Var("y"), source),
        ]
        result = QueryResult(schema, rows, {})
        result.pretty()
        result.pretty()
        result.to_dicts()
        assert source.calls == 2  # once per distinct row


class TestConveniences:
    @pytest.fixture
    def result(self):
        s = connect()
        t = s.table("R", ["name", "score"])
        for name, score, p in [("a", 3, 0.2), ("b", 1, 0.9), ("c", 2, 0.5)]:
            t.insert((name, score), p=p)
        return s.table("R").select("name", "score").run(engine="sprout")

    def test_to_dicts(self, result):
        dicts = result.to_dicts()
        assert {"name": "b", "score": 1, "probability": pytest.approx(0.9)} in dicts
        assert all(set(d) == {"name", "score", "probability"} for d in dicts)
        bare = result.to_dicts(include_probability=False)
        assert all(set(d) == {"name", "score"} for d in bare)

    def test_top_k_by_probability(self, result):
        top = result.top_k(2)
        assert [row.values[0] for row in top] == ["b", "c"]
        assert isinstance(top, QueryResult)
        assert top.engine == result.engine

    def test_top_k_by_attribute(self, result):
        top = result.top_k(1, by="score")
        assert top.rows[0].values == ("a", 3)

    def test_repr_shows_engine_and_rows(self, result):
        assert repr(result) == "QueryResult(engine='sprout', rows=3)"
