"""Integration tests reproducing the paper's worked examples end to end.

Each test class corresponds to a numbered example or figure of the paper;
together they certify that the whole pipeline — pvc-tables, the Figure-4
rewriting, compilation and probability computation — reproduces the
published artefacts.
"""

import math

import pytest

from repro.algebra import (
    BOOLEAN,
    MAX,
    MIN,
    SUM,
    MConst,
    Var,
    aggsum,
    compare,
    parse_expr,
    sprod,
    ssum,
    tensor,
)
from repro.core import Compiler
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import Distribution, ProbabilitySpace, VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    lit,
    product_of,
    relation,
)
from tests.conftest import build_figure1_database


def semantically_equal(expr1, expr2, semiring=BOOLEAN):
    """Equality in the free (semi)ring — i.e. modulo distributivity.

    The Figure-4 rewriting produces the distributed form
    ``x1·y11·z1 + x1·y11·z5`` where the paper displays the factored
    ``x1·y11·(z1+z5)``; by the semiring laws these are the *same element*,
    so we compare distributions under every valuation of a fresh space.
    """
    if expr1 == expr2:
        return True
    names = sorted(expr1.variables | expr2.variables)
    reg = VariableRegistry()
    for i, name in enumerate(names):
        reg.bernoulli(name, 0.3 + 0.4 * (i % 2))
    space = ProbabilitySpace(reg, semiring)
    return space.distribution_of(expr1).almost_equals(space.distribution_of(expr2))


def figure1_q1():
    """Q1 = π_{shop, price}[S ⋈ PS ⋈ (P1 ∪ P2)]."""
    products = Union(relation("P1"), relation("P2"))
    joined = Select(
        product_of(relation("S"), relation("PS"), products),
        conj(eq("sid", "psid"), eq("pid", "ppid")),
    )
    return Project(joined, ["shop", "price"])


def figure1_q2(limit=50, agg="MAX"):
    """Q2 = π_shop σ_{P≤50} $_{shop; P←MAX(price)}[Q1]."""
    agg_query = GroupAgg(figure1_q1(), ["shop"], [AggSpec.of("P", agg, "price")])
    return Project(Select(agg_query, cmp_("P", "<=", limit)), ["shop"])


class TestFigure1Annotations:
    """The exact annotations of Figure 1d."""

    def test_q1_result_annotations(self):
        db = build_figure1_database(small=False)
        table = SproutEngine(db).rewrite(figure1_q1())
        annotations = {row.values: row.annotation for row in table}
        expected = {
            ("M&S", 10): "x1*y11*(z1+z5)",
            ("M&S", 50): "x1*y12*z2",
            ("M&S", 11): "x2*y21*(z1+z5)",
            ("M&S", 60): "x2*y22*z2",
            ("Gap", 15): "x4*y41*(z1+z5)",
            ("Gap", 60): "x4*y43*z3",
            ("Gap", 10): "x5*y51*(z1+z5)",
        }
        for key, text in expected.items():
            assert semantically_equal(annotations[key], parse_expr(text)), key
        assert len(table) == 9

    def test_q2_gap_aggregation_value(self):
        db = build_figure1_database(small=False)
        agg = GroupAgg(figure1_q1(), ["shop"], [AggSpec.of("P", "MAX", "price")])
        table = SproutEngine(db).rewrite(agg)
        by_shop = {row.values[0]: row for row in table}
        gap_value = by_shop["Gap"].values[1]
        expected = parse_expr(
            "x4*y41*(z1+z5)@15 + x4*y43*z3@60 + x5*y51*(z1+z5)@10", monoid=MAX
        )
        assert semantically_equal(gap_value, expected)

    def test_q2_guard_psi2(self):
        db = build_figure1_database(small=False)
        agg = GroupAgg(figure1_q1(), ["shop"], [AggSpec.of("P", "MAX", "price")])
        table = SproutEngine(db).rewrite(agg)
        by_shop = {row.values[0]: row for row in table}
        guard = by_shop["Gap"].annotation
        expected_sum = parse_expr("x4*y41*(z1+z5) + x4*y43*z3 + x5*y51*(z1+z5)")
        assert semantically_equal(guard, compare(expected_sum, "!=", 0))


class TestFigure1Probabilities:
    """Q2's probabilities agree with brute-force enumeration."""

    def test_q2_max(self):
        db = build_figure1_database(small=True)
        query = figure1_q2(limit=50, agg="MAX")
        compiled = SproutEngine(db).run(query).tuple_probabilities()
        brute = NaiveEngine(db).tuple_probabilities(query)
        assert set(compiled) == set(brute)
        for key in brute:
            assert compiled[key] == pytest.approx(brute[key])

    def test_q2_min_example_9(self):
        # Example 9: Q2' with MIN — the guard is implied but harmless.
        db = build_figure1_database(small=True)
        query = figure1_q2(limit=50, agg="MIN")
        compiled = SproutEngine(db).run(query).tuple_probabilities()
        brute = NaiveEngine(db).tuple_probabilities(query)
        for key in brute:
            assert compiled[key] == pytest.approx(brute[key])


class TestExample8:
    """The two rewriting examples of Section 4."""

    def test_global_aggregate_value(self):
        db = build_figure1_database(small=False)
        query = GroupAgg(relation("P1"), [], [AggSpec.of("alpha", "SUM", "weight")])
        table = SproutEngine(db).rewrite(query)
        assert len(table) == 1
        expected = aggsum(
            SUM,
            [
                tensor(Var("z1"), MConst(SUM, 4)),
                tensor(Var("z2"), MConst(SUM, 8)),
                tensor(Var("z3"), MConst(SUM, 7)),
                tensor(Var("z4"), MConst(SUM, 6)),
            ],
        )
        assert table.rows[0].values[0] == expected
        assert table.rows[0].annotation.is_one()

    def test_min_weight_threshold_probability(self):
        # π_∅ σ_{5≤α}($_{∅;α←MIN(weight)}(P1)): P(min weight ≥ 5)
        db = build_figure1_database(small=False)
        agg = GroupAgg(relation("P1"), [], [AggSpec.of("alpha", "MIN", "weight")])
        query = Project(Select(agg, cmp_(5, "<=", "alpha")), [])
        result = SproutEngine(db).run(query)
        assert len(result) == 1
        brute = NaiveEngine(db).tuple_probabilities(query)
        assert result.rows[0].probability() == pytest.approx(brute[()])
        # Direct calculation: fails iff z1 (weight 4) is present.
        assert result.rows[0].probability() == pytest.approx(1 - 0.7)


class TestExample12:
    """Figure 5's distributions, via the public compiler API."""

    def test_all_three_variants(self):
        pa, pb, pc = 0.5, 0.5, 0.5
        reg = VariableRegistry()
        for name in "abc":
            reg.integer(name, {1: 0.5, 2: 0.5})
        alpha_sum = aggsum(
            SUM,
            [
                tensor(Var("a") * (Var("b") + Var("c")), MConst(SUM, 10)),
                tensor(Var("c"), MConst(SUM, 20)),
            ],
        )
        from repro.algebra import NATURALS

        dist = Compiler(reg, NATURALS).distribution(alpha_sum)
        brute = ProbabilitySpace(reg, NATURALS).distribution_of(alpha_sum)
        assert dist.almost_equals(brute)
        assert dist.support() == {40, 50, 60, 70, 80, 100, 120}


class TestExample14:
    """Q_hie evaluation: SUM of prices of M&S products."""

    def test_read_once_aggregation_compiles_without_shannon(self):
        db = build_figure1_database(small=False)
        join = Select(
            product_of(relation("S"), relation("PS")),
            conj(eq("sid", "psid"), eq("shop", lit("M&S"))),
        )
        query = GroupAgg(join, [], [AggSpec.of("alpha", "SUM", "price")])
        table = SproutEngine(db).rewrite(query)
        alpha = table.rows[0].values[0]
        compiler = Compiler(db.registry, BOOLEAN)
        compiler.compile(alpha)
        assert compiler.mutex_nodes_created == 0  # read-once per Example 14

    def test_aggregate_distribution_matches_naive(self):
        db = build_figure1_database(small=True)
        join = Select(
            product_of(relation("S"), relation("PS")),
            conj(eq("sid", "psid"), eq("shop", lit("M&S"))),
        )
        query = GroupAgg(join, [], [AggSpec.of("alpha", "SUM", "price")])
        compiled = SproutEngine(db).run(query).tuple_probabilities()
        brute = NaiveEngine(db).tuple_probabilities(query)
        assert set(compiled) == set(brute)
        for key in brute:
            assert compiled[key] == pytest.approx(brute[key])


class TestTheorem1Succinctness:
    """Query results stay polynomial in the input size (Theorem 1.2)."""

    def test_aggregate_result_is_linear_in_input(self):
        db = build_figure1_database(small=False)
        query = GroupAgg(figure1_q1(), ["shop"], [AggSpec.of("P", "MAX", "price")])
        table = SproutEngine(db).rewrite(query)
        input_size = sum(len(t) for t in db.tables.values())
        total_nodes = sum(
            row.values[1].size() + row.annotation.size() for row in table
        )
        # 2 result groups; each expression linear in its group's inputs.
        assert len(table) == 2
        assert total_nodes <= 60 * input_size
