"""A lazy fluent builder for the query language ``Q``.

The builder is syntactic sugar over :mod:`repro.query.ast`: every method
returns a *new* builder wrapping a larger algebra tree, and nothing is
evaluated until :meth:`QueryBuilder.run` (or until the built query is
handed to an engine).  A builder bound to a
:class:`~repro.session.Session` can execute itself; unbound builders are
pure AST factories.

    s.table("items").where(cmp_("price", "<=", lit(300)))
        .group_by("category").agg(total=sum_("price"))
        .run(engine="sprout")

Aggregation terms are spelled with the :func:`sum_`, :func:`count_`,
:func:`min_`, :func:`max_`, :func:`prod_` helpers; name outputs either
with ``.as_("total")`` or with keyword arguments to :meth:`agg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import QueryValidationError
from repro.query.ast import (
    AggSpec,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
    equijoin,
    relation,
)
from repro.query.predicates import Comparison, Literal, Predicate, attr, cmp_, conj

__all__ = [
    "AggTerm",
    "QueryBuilder",
    "sum_",
    "count_",
    "min_",
    "max_",
    "prod_",
]


@dataclass(frozen=True)
class AggTerm:
    """One pending aggregation ``output ← AGG(attribute)``."""

    agg: str
    attribute: str | None
    output: str | None = None

    def as_(self, output: str) -> "AggTerm":
        """Name the output attribute of this aggregation."""
        return AggTerm(self.agg, self.attribute, output)

    def to_spec(self, output: str | None = None) -> AggSpec:
        # An explicit caller-supplied name (agg(total=...)) wins over a
        # pre-set .as_() name; the outermost naming is the user's intent.
        name = output or self.output
        if name is None:
            name = f"{self.agg.lower()}_{self.attribute or 'all'}"
        return AggSpec.of(name, self.agg, self.attribute)


def sum_(attribute: str) -> AggTerm:
    """``SUM(attribute)``."""
    return AggTerm("SUM", attribute)


def count_() -> AggTerm:
    """``COUNT(*)``."""
    return AggTerm("COUNT", None)


def min_(attribute: str) -> AggTerm:
    """``MIN(attribute)``."""
    return AggTerm("MIN", attribute)


def max_(attribute: str) -> AggTerm:
    """``MAX(attribute)``."""
    return AggTerm("MAX", attribute)


def prod_(attribute: str) -> AggTerm:
    """``PROD(attribute)``."""
    return AggTerm("PROD", attribute)


def _coerce_agg(term, output: str | None = None) -> AggSpec:
    if isinstance(term, AggSpec):
        if output is not None and term.output != output:
            return AggSpec.of(output, term.monoid, term.attribute)
        return term
    if isinstance(term, AggTerm):
        return term.to_spec(output)
    if isinstance(term, tuple) and len(term) in (2, 3):
        agg, attribute = term[0], term[1]
        name = term[2] if len(term) == 3 else output
        return AggTerm(agg.upper(), attribute, name).to_spec(output)
    raise QueryValidationError(
        f"cannot interpret {term!r} as an aggregation; use sum_/count_/... "
        f"helpers or an AggSpec"
    )


def _coerce_predicate(predicate) -> Predicate:
    if isinstance(predicate, Predicate):
        return predicate
    if isinstance(predicate, tuple) and len(predicate) == 3:
        left, op, right = predicate
        return cmp_(left, op, right)
    raise QueryValidationError(
        f"cannot interpret {predicate!r} as a predicate; use cmp_/eq or a "
        f"(left, op, right) triple"
    )


def _coerce_query(source) -> Query:
    if isinstance(source, QueryBuilder):
        return source.build()
    if isinstance(source, Query):
        return source
    if isinstance(source, str):
        return relation(source)
    raise QueryValidationError(
        f"cannot interpret {source!r} as a query; expected a QueryBuilder, "
        f"a Query node, or a table name"
    )


class QueryBuilder:
    """An immutable fluent wrapper around a ``Q``-algebra tree."""

    def __init__(self, query, session=None):
        self._query = _coerce_query(query) if not isinstance(query, Query) else query
        self._session = session

    # -- construction --------------------------------------------------------

    def _wrap(self, query: Query) -> "QueryBuilder":
        return QueryBuilder(query, self._session)

    def where(self, *predicates, **equalities) -> "QueryBuilder":
        """``σ_φ``: filter by a conjunction of predicates.

        Positional arguments are predicates (or ``(left, op, right)``
        triples, where strings name attributes); keyword arguments are
        attribute-to-constant equalities: ``where(category="laptop")``.
        """
        atoms = [_coerce_predicate(p) for p in predicates]
        atoms.extend(
            Comparison(attr(name), "=", Literal(value))
            for name, value in equalities.items()
        )
        if not atoms:
            return self
        return self._wrap(Select(self._query, conj(*atoms)))

    def select(self, *attributes: str) -> "QueryBuilder":
        """``π_{A̅}``: project onto ``attributes``."""
        return self._wrap(Project(self._query, attributes))

    def project(self, *attributes: str) -> "QueryBuilder":
        """Alias of :meth:`select`."""
        return self.select(*attributes)

    def extend(self, target: str, source: str) -> "QueryBuilder":
        """``δ_{B←A}``: duplicate attribute ``source`` as ``target``."""
        return self._wrap(Extend(self._query, target, source))

    def product(self, other) -> "QueryBuilder":
        """``×``: cartesian product with another query/builder/table."""
        return self._wrap(Product(self._query, _coerce_query(other)))

    def join(self, other, on: Sequence[tuple[str, str]]) -> "QueryBuilder":
        """Equijoin on ``on = [(left_attr, right_attr), ...]``."""
        return self._wrap(equijoin(self._query, _coerce_query(other), on))

    def union(self, other) -> "QueryBuilder":
        """``∪``: union with a schema-compatible query/builder/table."""
        return self._wrap(Union(self._query, _coerce_query(other)))

    def group_by(self, *keys: str) -> "GroupedBuilder":
        """``$_{A̅;...}`` step one: fix the grouping attributes."""
        return GroupedBuilder(self, keys)

    def agg(self, *terms, **named) -> "QueryBuilder":
        """Ungrouped (whole-relation) aggregation: ``$_{∅;...}``."""
        return self.group_by().agg(*terms, **named)

    # -- execution -----------------------------------------------------------

    def build(self) -> Query:
        """The underlying ``Q``-algebra tree."""
        return self._query

    @property
    def query(self) -> Query:
        return self._query

    def run(self, engine: str | None = None, **options):
        """Execute through the bound session; see :meth:`Session.run`."""
        if self._session is None:
            raise QueryValidationError(
                "this query builder is not bound to a session; call "
                "build() and hand the query to an engine yourself"
            )
        return self._session.run(self._query, engine=engine, **options)

    def classify(self):
        """Tractability classification through the bound session."""
        if self._session is None:
            raise QueryValidationError(
                "this query builder is not bound to a session"
            )
        return self._session.classify(self._query)

    def __repr__(self):
        return f"QueryBuilder({self._query!r})"


class GroupedBuilder:
    """Intermediate ``group_by`` state awaiting its aggregations."""

    def __init__(self, builder: QueryBuilder, keys: Sequence[str]):
        self._builder = builder
        self._keys = tuple(keys)

    def agg(self, *terms, **named) -> QueryBuilder:
        """Attach aggregations: ``agg(total=sum_("price"))`` or
        ``agg(sum_("price").as_("total"))``."""
        specs = [_coerce_agg(term) for term in terms]
        specs.extend(_coerce_agg(term, output) for output, term in named.items())
        if not specs:
            raise QueryValidationError(
                "group_by(...) needs at least one aggregation"
            )
        return self._builder._wrap(
            GroupAgg(self._builder.query, self._keys, specs)
        )

    def __repr__(self):
        keys = ", ".join(self._keys) if self._keys else "∅"
        return f"GroupedBuilder[{keys}]({self._builder.query!r})"
