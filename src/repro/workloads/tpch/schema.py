"""TPC-H table schemas (the columns used by the paper's experiments).

Attribute names keep the TPC-H prefixes (``l_``, ``o_``, ...), which also
guarantees the disjoint-name requirement of the product operator.  Dates
are modelled as integer day offsets.  The ``*_i``-prefixed alias schemas
support TPC-H Q2's correlated nested aggregate, which references a second
copy of partsupp/supplier/nation/region (see
:func:`repro.workloads.tpch.queries.prepare_q2_aliases`).
"""

from __future__ import annotations

from repro.db.schema import Schema

__all__ = ["TPCH_SCHEMAS", "alias_schema"]

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": Schema(["r_regionkey", "r_name"]),
    "nation": Schema(["n_nationkey", "n_name", "n_regionkey"]),
    "supplier": Schema(["s_suppkey", "s_name", "s_nationkey"]),
    "customer": Schema(["c_custkey", "c_name", "c_nationkey", "c_mktsegment"]),
    "part": Schema(["p_partkey", "p_name", "p_type", "p_size"]),
    "partsupp": Schema(["ps_partkey", "ps_suppkey", "ps_supplycost"]),
    "orders": Schema(["o_orderkey", "o_custkey", "o_orderdate"]),
    "lineitem": Schema(
        [
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
        ]
    ),
}


def alias_schema(table: str, prefix: str = "i_") -> Schema:
    """The schema of an aliased copy with every attribute prefixed."""
    base = TPCH_SCHEMAS[table]
    return Schema([prefix + name for name in base.attributes])
