"""Brute-force possible-worlds query engine — the exactness oracle.

Evaluates a ``Q`` query in every possible world of the pvc-database
(instantiated to deterministic relations with semiring multiplicities) and
aggregates the per-world results into exact tuple-level probabilities.
Exponential in the number of variables, hence only usable on small
databases — which is precisely its job: it is the independent ground truth
the compiled engine is verified against in the test suite.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.monoid import COUNT
from repro.db.pvc_table import PVCDatabase
from repro.db.relation import Relation
from repro.db.worlds import enumerate_database_worlds
from repro.errors import QueryValidationError
from repro.prob.distribution import Distribution
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.query.validate import validate_query

__all__ = ["NaiveEngine", "evaluate_deterministic"]


def evaluate_deterministic(
    query: Query, world: Mapping[str, Relation]
) -> Relation:
    """Evaluate a query on one deterministic world."""
    if isinstance(query, BaseRelation):
        try:
            return world[query.name]
        except KeyError:
            raise QueryValidationError(
                f"world has no relation named {query.name!r}"
            ) from None
    if isinstance(query, Extend):
        return evaluate_deterministic(query.child, world).extend(
            query.target, query.source
        )
    if isinstance(query, Select):
        if isinstance(query.child, Product):
            return _select_over_product(query, world)
        child = evaluate_deterministic(query.child, world)
        return child.select(lambda row: query.predicate.evaluate(row) is True)
    if isinstance(query, Project):
        return evaluate_deterministic(query.child, world).project(query.attributes)
    if isinstance(query, Product):
        return evaluate_deterministic(query.left, world).product(
            evaluate_deterministic(query.right, world)
        )
    if isinstance(query, Union):
        return evaluate_deterministic(query.left, world).union(
            evaluate_deterministic(query.right, world)
        )
    if isinstance(query, GroupAgg):
        child = evaluate_deterministic(query.child, world)
        aggregations = [
            (
                spec.output,
                spec.monoid,
                None if spec.monoid == COUNT else spec.attribute,
            )
            for spec in query.aggregations
        ]
        return child.group_aggregate(query.groupby, aggregations)
    raise QueryValidationError(f"cannot evaluate query node {query!r}")


def _select_over_product(query: Select, world: Mapping[str, Relation]) -> Relation:
    """Evaluate ``σ(× ...)`` with hash equijoins (same plan as the
    symbolic evaluator, so the Q0 baseline is an apples-to-apples cost)."""
    from repro.query.predicates import AttrRef, conj

    leaves: list[Relation] = []

    def flatten(node: Query):
        if isinstance(node, Product):
            flatten(node.left)
            flatten(node.right)
        else:
            leaves.append(evaluate_deterministic(node, world))

    flatten(query.child)

    local: list[list] = [[] for _ in leaves]
    join_atoms: list = []
    residual: list = []
    for atom in query.predicate.atoms():
        homes = [
            i
            for i, leaf in enumerate(leaves)
            if atom.attributes() <= set(leaf.schema.attributes)
        ]
        if homes:
            local[homes[0]].append(atom)
        elif (
            atom.op.symbol == "="
            and isinstance(atom.left, AttrRef)
            and isinstance(atom.right, AttrRef)
        ):
            join_atoms.append(atom)
        else:
            residual.append(atom)

    tables = []
    for leaf, atoms in zip(leaves, local):
        if atoms:
            predicate = conj(*atoms)
            leaf = leaf.select(lambda row: predicate.evaluate(row) is True)
        tables.append(leaf)

    remaining = sorted(tables, key=len)
    pending = list(join_atoms)
    current = remaining.pop(0)
    while remaining:
        chosen_index, chosen_atoms = None, []
        for index, candidate in enumerate(remaining):
            atoms = [
                atom
                for atom in pending
                if len(
                    {atom.left.name, atom.right.name}
                    & set(current.schema.attributes)
                )
                == 1
                and len(
                    {atom.left.name, atom.right.name}
                    & set(candidate.schema.attributes)
                )
                == 1
            ]
            if atoms and (
                chosen_index is None
                or len(candidate) < len(remaining[chosen_index])
            ):
                chosen_index, chosen_atoms = index, atoms
        if chosen_index is None:
            chosen_index = min(
                range(len(remaining)), key=lambda i: len(remaining[i])
            )
        candidate = remaining.pop(chosen_index)
        current = _hash_join_relations(current, candidate, chosen_atoms)
        for atom in chosen_atoms:
            pending.remove(atom)
    leftover = pending + residual
    if leftover:
        predicate = conj(*leftover)
        current = current.select(lambda row: predicate.evaluate(row) is True)

    # Restore the declared product attribute order.
    declared: list[str] = []
    for leaf in leaves:
        declared.extend(leaf.schema.attributes)
    if tuple(declared) != current.schema.attributes:
        current = current.project(declared)
    return current


def _hash_join_relations(left: Relation, right: Relation, atoms: list) -> Relation:
    result = Relation(left.schema.concat(right.schema), left.semiring)
    if not atoms:
        return left.product(right)
    left_keys, right_keys = [], []
    for atom in atoms:
        if atom.left.name in left.schema:
            left_keys.append(left.schema.index(atom.left.name))
            right_keys.append(right.schema.index(atom.right.name))
        else:
            left_keys.append(left.schema.index(atom.right.name))
            right_keys.append(right.schema.index(atom.left.name))
    buckets: dict[tuple, list] = {}
    for values, mult in right.tuples():
        key = tuple(values[i] for i in right_keys)
        buckets.setdefault(key, []).append((values, mult))
    semiring = left.semiring
    for values, mult in left.tuples():
        key = tuple(values[i] for i in left_keys)
        for right_values, right_mult in buckets.get(key, ()):
            result.add(values + right_values, semiring.mul(mult, right_mult))
    return result


class NaiveEngine:
    """Exact query answering by explicit possible-world enumeration."""

    def __init__(self, db: PVCDatabase):
        self.db = db

    def tuple_probabilities(self, query: Query) -> dict[tuple, float]:
        """``P[t ∈ answer]`` for every possible answer tuple ``t``.

        For aggregate queries the tuples carry *concrete* aggregate
        values, so e.g. ⟨'M&S', 15⟩ and ⟨'M&S', 50⟩ are distinct answers
        whose probabilities generally do not sum to 1.
        """
        catalog = self.db.catalog()
        validate_query(query, catalog)
        probabilities: dict[tuple, float] = {}
        for world, probability in enumerate_database_worlds(self.db):
            result = evaluate_deterministic(query, world)
            for values in result.support():
                probabilities[values] = probabilities.get(values, 0.0) + probability
        return probabilities

    def multiplicity_distribution(self, query: Query, values: tuple) -> Distribution:
        """Distribution of the multiplicity of one answer tuple."""
        catalog = self.db.catalog()
        validate_query(query, catalog)
        accum: dict = {}
        for world, probability in enumerate_database_worlds(self.db):
            result = evaluate_deterministic(query, world)
            mult = result.multiplicity(values)
            accum[mult] = accum.get(mult, 0.0) + probability
        return Distribution(accum)

    def answer_relation_distribution(self, query: Query) -> Distribution:
        """Distribution over entire answer relations (as frozensets).

        The heaviest oracle: the exact distribution of the full query
        answer across worlds, used to validate joint behaviours.
        """
        catalog = self.db.catalog()
        validate_query(query, catalog)
        accum: dict = {}
        for world, probability in enumerate_database_worlds(self.db):
            result = evaluate_deterministic(query, world)
            key = frozenset(result.support())
            accum[key] = accum.get(key, 0.0) + probability
        return Distribution(accum)
