"""A minimal JSON-over-HTTP/1.1 protocol for the query server.

Implemented directly on asyncio streams (the container ships no web
framework, and the protocol surface is three routes):

``POST /query``
    Body ``{"sql": ..., "tenant": ..., "engine": ..., "samples": ...,
    "spec": {...}}`` → ``200`` with ``{"result": <encoded QueryResult>,
    "tenant": ..., "degraded": ..., "statement_cache_hit": ...}``.
``POST /mutate``
    Body ``{"table": ..., "action": "insert"|"update"|"delete",
    "values"/"where"/"set"/"p": ...}`` → ``200`` with
    ``{"mutation": {"table": ..., "action": ..., "rows": ...,
    "db_generation": ...}, "tenant": ...}``.
``GET /stats``
    Server counters and the hit/miss/eviction statistics of the three
    shared caches.
``GET /healthz``
    Cheap liveness probe.

Error mapping — errors are *responses*, never connection or event-loop
fatalities:

* malformed JSON, protocol violations and query-layer failures
  (parse/validation/compilation errors) → ``400`` with a structured
  ``{"error": {"type": ..., "message": ...}}`` body;
* admission-control shedding → ``503`` with a ``Retry-After`` header
  and the same structured body;
* anything unexpected → ``500`` (and the connection stays usable).

Connections are keep-alive by default (HTTP/1.1 semantics; a
``Connection: close`` header or an HTTP/1.0 request closes after the
response).
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ReproError
from repro.resilience.faults import fault_point

__all__ = ["handle_connection", "MAX_BODY_BYTES"]

#: Requests larger than this are rejected with 413 before being read.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _error_body(exc: BaseException) -> dict:
    return {"error": {"type": type(exc).__name__, "message": str(exc)}}


async def _read_request(reader: asyncio.StreamReader):
    """``(method, path, headers, body)`` or ``None`` at end of stream."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    except ValueError:
        # readline() raises ValueError past the stream's line limit:
        # answer with a structured 400, not a dropped connection.
        raise _BadRequest("HTTP request line exceeds the line-length limit")
    if not request_line:
        return None
    try:
        method, path, version = request_line.decode("latin-1").split()
    except ValueError:
        raise _BadRequest("malformed HTTP request line")
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise _BadRequest("HTTP header line exceeds the line-length limit")
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise _BadRequest("too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise _BadRequest("malformed header")
        headers[name.strip().lower()] = value.strip()
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise _BadRequest(f"bad Content-Length {length_header!r}")
    if length < 0:
        raise _BadRequest(f"bad Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise _TooLarge(
            f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, version, headers, body


class _BadRequest(Exception):
    pass


class _TooLarge(Exception):
    pass


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    extra_headers: dict | None = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body)


async def _dispatch(server, method: str, path: str, body: bytes):
    """``(status, payload, extra_headers)`` for one parsed request."""
    # Local import: app.py imports this module at its own import time.
    from repro.server.app import ProtocolError, ServerOverloadedError

    path = path.split("?", 1)[0]
    if path == "/healthz":
        if method != "GET":
            return 405, _error_body(ProtocolError("use GET /healthz")), None
        return 200, server.healthz(), None
    if path == "/stats":
        if method != "GET":
            return 405, _error_body(ProtocolError("use GET /stats")), None
        return 200, server.stats(), None
    if path in ("/query", "/mutate"):
        if method != "POST":
            return 405, _error_body(ProtocolError(f"use POST {path}")), None
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            server.note_error()
            return 400, _error_body(ProtocolError(f"bad JSON body: {exc}")), None
        handler = server.mutate if path == "/mutate" else server.execute
        try:
            # Injected faults escape this try on purpose: an io fault
            # here surfaces as a 500 (retryable by the client policy),
            # exactly like a genuine mid-request infrastructure failure.
            fault_point("server.http.request")
            return 200, await handler(payload), None
        except ServerOverloadedError as exc:
            server.note_error()
            return 503, {
                "error": {
                    "type": "ServerOverloadedError",
                    "message": str(exc),
                    "retry_after": exc.retry_after,
                },
            }, {"Retry-After": f"{exc.retry_after:g}"}
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            # Query-layer failures (bad SQL, bad spec values, engine
            # validation) are client errors: report and keep serving.
            server.note_error()
            return 400, _error_body(exc), None
    return 404, _error_body(ProtocolError(f"no route {method} {path}")), None


async def handle_connection(
    server, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one client connection until it closes (keep-alive loop)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                server.note_error()
                _write_response(
                    writer, 400, _error_body(exc), keep_alive=False
                )
                break
            except _TooLarge as exc:
                server.note_error()
                _write_response(
                    writer, 413, _error_body(exc), keep_alive=False
                )
                break
            except asyncio.IncompleteReadError:
                break
            if request is None:
                break
            method, path, version, headers, body = request
            keep_alive = headers.get("connection", "").lower() != "close" and (
                version.upper() != "HTTP/1.0"
            )
            try:
                status, payload, extra = await _dispatch(
                    server, method, path, body
                )
            except Exception as exc:  # defensive: the loop must survive
                server.note_error()
                status, payload, extra = 500, _error_body(exc), None
            _write_response(
                writer,
                status,
                payload,
                keep_alive=keep_alive,
                extra_headers=extra,
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
