"""Unit tests for the induced probability space (Definition 1)."""

import math

import pytest

from repro.algebra.conditions import compare
from repro.algebra.expressions import Var
from repro.algebra.monoid import MIN, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.errors import WorldEnumerationError
from repro.prob.distribution import Distribution
from repro.prob.space import MAX_ENUMERABLE_WORLDS, ProbabilitySpace
from repro.prob.variables import VariableRegistry


def boolean_space(probabilities: dict) -> ProbabilitySpace:
    reg = VariableRegistry()
    for name, p in probabilities.items():
        reg.bernoulli(name, p)
    return ProbabilitySpace(reg, BOOLEAN)


class TestWorldEnumeration:
    def test_world_count(self):
        space = boolean_space({"a": 0.5, "b": 0.5})
        assert space.world_count() == 4

    def test_world_probabilities_sum_to_one(self):
        space = boolean_space({"a": 0.3, "b": 0.8})
        total = sum(p for _, p in space.enumerate_worlds())
        assert total == pytest.approx(1.0)

    def test_world_probability_is_product(self):
        # Pr(ν) = Π_x P_x[ν(x)] (Definition 1)
        space = boolean_space({"a": 0.3, "b": 0.8})
        probs = {
            (nu["a"], nu["b"]): p for nu, p in space.enumerate_worlds()
        }
        assert probs[(True, True)] == pytest.approx(0.24)
        assert probs[(False, False)] == pytest.approx(0.7 * 0.2)

    def test_restriction_marginalises(self):
        space = boolean_space({"a": 0.3, "b": 0.8})
        worlds = list(space.enumerate_worlds(["a"]))
        assert len(worlds) == 2
        assert sum(p for _, p in worlds) == pytest.approx(1.0)

    def test_enumeration_limit(self):
        reg = VariableRegistry()
        for i in range(30):
            reg.bernoulli(f"v{i}", 0.5)
        space = ProbabilitySpace(reg, BOOLEAN)
        assert space.world_count() > MAX_ENUMERABLE_WORLDS
        with pytest.raises(WorldEnumerationError):
            list(space.enumerate_worlds())


class TestExpressionDistributions:
    def test_example_2_via_enumeration(self):
        space = boolean_space({"a": 0.3, "b": 0.6})
        dist = space.distribution_of(Var("a") + Var("b"))
        assert dist[True] == pytest.approx(1 - 0.7 * 0.4)

    def test_integer_expression(self):
        reg = VariableRegistry()
        reg.integer("m", {1: 0.5, 2: 0.5})
        reg.integer("n", {0: 0.5, 3: 0.5})
        space = ProbabilitySpace(reg, NATURALS)
        dist = space.distribution_of(Var("m") * Var("n"))
        assert dist[0] == pytest.approx(0.5)
        assert dist[6] == pytest.approx(0.25)

    def test_module_expression(self):
        space = boolean_space({"x": 0.5, "y": 0.5})
        alpha = aggsum(
            MIN,
            [tensor(Var("x"), MConst(MIN, 5)), tensor(Var("y"), MConst(MIN, 9))],
        )
        dist = space.distribution_of(alpha)
        assert dist[5] == pytest.approx(0.5)
        assert dist[9] == pytest.approx(0.25)
        assert dist[math.inf] == pytest.approx(0.25)

    def test_conditional_expression(self):
        space = boolean_space({"x": 0.4})
        cond = compare(tensor(Var("x"), MConst(SUM, 3)), ">=", 1)
        assert space.probability(cond) == pytest.approx(0.4)

    def test_joint_distribution(self):
        space = boolean_space({"x": 0.5, "y": 0.5})
        joint = space.joint_distribution_of([Var("x"), Var("x") * Var("y")])
        assert joint[(True, True)] == pytest.approx(0.25)
        assert joint[(True, False)] == pytest.approx(0.25)
        assert joint[(False, False)] == pytest.approx(0.5)
        assert (False, True) not in joint

    def test_probability_default_is_one_of_semiring(self):
        space = boolean_space({"x": 0.25})
        assert space.probability(Var("x")) == pytest.approx(0.25)
