"""Experiment F (Figure 11): TPC-H queries Q1 and Q2 across scale factors.

Paper setup: tuple-independent TPC-H databases up to 1 GB; for each query
compare (1) deterministic evaluation without expressions (Q0), (2) the
expression-construction step ``⟦·⟧``, and (3) probability computation
``P(·)``.

Here the TPC-H substitute generator of :mod:`repro.workloads.tpch` is used
with scale factors that keep the sweep Python-feasible (each step roughly
doubles the data).  Expected shapes:

* both overheads grow polynomially with the scale factor, because TPC-H
  scaling keeps per-group tuple correlations constant;
* Q1 (very low selectivity; annotations orders of magnitude larger than
  Q2's) pays a much larger ``P(·)`` overhead than Q2.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, print_series
from repro.engine.sprout import SproutEngine
from repro.workloads.tpch import (
    TPCHConfig,
    generate_tpch,
    prepare_q2_aliases,
    tpch_q1,
    tpch_q2,
)
from repro.workloads.tpch.queries import q2_candidate

SCALE_FACTORS = [0.02, 0.05, 0.1, 0.2, 0.4]

_DB_CACHE: dict[float, tuple] = {}


def _database(scale_factor: float):
    """Generate (and cache) the database and a Q2 instance for a scale."""
    if scale_factor not in _DB_CACHE:
        db = generate_tpch(TPCHConfig(scale_factor=scale_factor, seed=7))
        prepare_q2_aliases(db)
        part_key, region = q2_candidate(db)
        _DB_CACHE[scale_factor] = (db, tpch_q2(part_key, region))
    return _DB_CACHE[scale_factor]


def measure(scale_factor: float, which: str) -> dict[str, float]:
    """Q0 / ⟦·⟧ / P(·) wall-clock seconds for one query at one scale."""
    db, q2 = _database(scale_factor)
    query = tpch_q1() if which == "q1" else q2
    engine = SproutEngine(db)
    _, q0_seconds = engine.deterministic_baseline(query)
    result = engine.run(query)
    return {
        "q0": q0_seconds,
        "rewrite": result.timings["rewrite_seconds"],
        "probability": result.timings["probability_seconds"],
        "rows": len(result),
    }


@pytest.mark.parametrize("scale_factor", SCALE_FACTORS)
def bench_q1(benchmark, scale_factor):
    db, _ = _database(scale_factor)
    engine = SproutEngine(db)
    benchmark.pedantic(
        lambda: engine.run(tpch_q1()), rounds=1, iterations=1
    )


@pytest.mark.parametrize("scale_factor", SCALE_FACTORS)
def bench_q2(benchmark, scale_factor):
    db, q2 = _database(scale_factor)
    engine = SproutEngine(db)
    benchmark.pedantic(lambda: engine.run(q2), rounds=1, iterations=1)


def main():
    report = BenchReport("exp_f")
    for which, figure in (("q1", "Figure 11a"), ("q2", "Figure 11b")):
        rows = []
        for scale_factor in SCALE_FACTORS:
            numbers = measure(scale_factor, which)
            rows.append(
                (
                    scale_factor,
                    f"{numbers['q0']*1000:.1f}ms",
                    f"{numbers['rewrite']*1000:.1f}ms",
                    f"{numbers['probability']*1000:.1f}ms",
                    numbers["rows"],
                )
            )
            report.add(
                which,
                {"scale_factor": scale_factor},
                mean=numbers["rewrite"] + numbers["probability"],
                q0=numbers["q0"],
                rewrite=numbers["rewrite"],
                probability=numbers["probability"],
                rows=numbers["rows"],
            )
        print_series(
            f"Experiment F — TPC-H {which.upper()} ({figure})",
            ["scale", "Q0", "⟦·⟧", "P(·)", "rows"],
            rows,
        )
    report.finish()


if __name__ == "__main__":
    main()
