"""Hypothesis strategies for random expressions and probability spaces."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.algebra.conditions import compare
from repro.algebra.expressions import SConst, Var, sprod, ssum
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

#: Variable pool used by the expression strategies (kept small so the
#: brute-force oracle stays fast).
NAMES = ["a", "b", "c", "d", "e"]

probabilities = st.floats(
    min_value=0.05, max_value=0.95, allow_nan=False, allow_infinity=False
)


@st.composite
def boolean_registries(draw, names=tuple(NAMES)):
    """A registry assigning Bernoulli distributions to the name pool."""
    registry = VariableRegistry()
    for name in names:
        registry.bernoulli(name, draw(probabilities))
    return registry


@st.composite
def integer_registries(draw, names=tuple(NAMES[:3]), max_value=3):
    """A registry of small N-valued variables (bag semantics)."""
    registry = VariableRegistry()
    for name in names:
        support = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_value),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=len(support),
                max_size=len(support),
            )
        )
        total = sum(weights)
        registry.declare(
            name,
            Distribution({v: w / total for v, w in zip(support, weights)}),
        )
    return registry


def variables():
    return st.sampled_from(NAMES).map(Var)


@st.composite
def semiring_exprs(draw, depth=3):
    """Random semiring expressions over the name pool."""
    if depth <= 0:
        return draw(st.one_of(variables(), st.integers(0, 1).map(SConst)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(variables())
    if kind == 1:
        return draw(st.integers(0, 1).map(SConst))
    children = draw(
        st.lists(semiring_exprs(depth=depth - 1), min_size=2, max_size=3)
    )
    return ssum(children) if kind == 2 else sprod(children)


@st.composite
def monomials(draw, max_factors=3):
    """Products of variables — the Φᵢ of tuple-independent provenance."""
    factors = draw(st.lists(variables(), min_size=1, max_size=max_factors))
    return sprod(factors)


@st.composite
def module_exprs(draw, monoid=None, max_terms=4, max_value=8):
    """Random semimodule sums ``Σ Φᵢ ⊗ mᵢ``."""
    if monoid is None:
        monoid = draw(st.sampled_from([SUM, MIN, MAX]))
    terms = []
    for _ in range(draw(st.integers(1, max_terms))):
        phi = draw(semiring_exprs(depth=2))
        value = draw(st.integers(0, max_value))
        terms.append(tensor(phi, MConst(monoid, value)))
    return aggsum(monoid, terms)


@st.composite
def conditions(draw, max_value=8):
    """Random conditional expressions ``[Σ ... θ c]``."""
    alpha = draw(module_exprs(max_value=max_value))
    op = draw(st.sampled_from(["=", "!=", "<=", ">=", "<", ">"]))
    threshold = draw(st.integers(0, max_value + 2))
    return compare(alpha, op, MConst(alpha.monoid, threshold))
