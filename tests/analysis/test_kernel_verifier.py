"""Fixture corpus for the codegen kernel verifier.

Half the suite tampers with a hand-written minimal kernel (one block,
one scan) and proves each invariant trips on exactly the seeded
violation; the other half runs the verifier over the real differential
corpus — every fused operator shape in both semirings — and proves the
shipped emitter's output verifies clean, including the ``block_scans``
metadata that binding-time hoisting trusts.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.checkers.kernels import (
    KernelChecker,
    KernelMeta,
    verify_bound_statics,
    verify_kernel,
    verify_kernel_source,
)
from repro.analysis.corpus import build_corpus
from repro.analysis.runner import AnalysisContext

GOOD_SOURCE = """\
def _kernel(_world, _st, _trace, _ckd):
    _t1 = _st.get('b0')
    if _t1 is None:
        _t1 = {}
        _w2 = _st.get('t:R')
        if _w2 is None:
            _w2 = _table(_world, 'R')
        for _v3, _m4 in _w2.items():
            _t1[_v3] = _m4
    return _t1
"""

META = KernelMeta(
    block_scans={"b0": ("R",)},
    scan_names=("R",),
    consts=(),
    block_keys=("b0",),
    index_keys=(),
)


def rules_of(findings):
    return sorted({finding.rule_id for finding in findings})


class TestSyntheticKernel:
    def test_well_formed_kernel_verifies_clean(self):
        assert verify_kernel_source(GOOD_SOURCE, META) == []

    def test_direct_world_read_is_flagged(self):
        tampered = GOOD_SOURCE.replace(
            "_w2 = _table(_world, 'R')", "_w2 = _world['R']"
        )
        findings = verify_kernel_source(tampered, META)
        assert rules_of(findings) == ["kernel-world-read"]

    def test_unknown_table_name_is_flagged(self):
        tampered = GOOD_SOURCE.replace(
            "_table(_world, 'R')", "_table(_world, 'SNEAKY')"
        )
        findings = verify_kernel_source(tampered, META)
        assert rules_of(findings) == ["kernel-world-read"]
        assert "scan_names" in findings[0].message

    def test_read_outside_block_scope_is_flagged(self):
        # The source is unchanged but the metadata claims block b0 only
        # touches table S — exactly the lie that would make BoundPlan
        # hoist a world-dependent block.
        lying = KernelMeta(
            block_scans={"b0": ("S",)},
            scan_names=("R", "S"),
            consts=(),
            block_keys=("b0",),
            index_keys=(),
        )
        findings = verify_kernel_source(GOOD_SOURCE, lying)
        assert rules_of(findings) == ["kernel-world-read"]
        assert "hoisting" in findings[0].message

    def test_unguarded_statics_load_is_flagged(self):
        tampered = GOOD_SOURCE.replace(
            "        _w2 = _st.get('t:R')\n"
            "        if _w2 is None:\n"
            "            _w2 = _table(_world, 'R')\n",
            "        _w2 = _st.get('t:R')\n"
            "        _w2 = _table(_world, 'R')\n",
        )
        assert tampered != GOOD_SOURCE
        findings = verify_kernel_source(tampered, META)
        assert "kernel-temp-reuse" in rules_of(findings)

    def test_duplicate_block_load_is_flagged(self):
        tampered = GOOD_SOURCE.replace(
            "    return _t1",
            "    _t9 = _st.get('b0')\n"
            "    if _t9 is None:\n"
            "        _t9 = {}\n"
            "    return _t1",
        )
        findings = verify_kernel_source(tampered, META)
        assert "kernel-temp-reuse" in rules_of(findings)

    def test_runtime_global_collision_is_flagged(self):
        tampered = GOOD_SOURCE.replace(
            "    _t1 = _st.get('b0')",
            "    _table = None\n    _t1 = _st.get('b0')",
        )
        findings = verify_kernel_source(tampered, META)
        assert "kernel-name-collision" in rules_of(findings)

    def test_free_variable_is_flagged(self):
        tampered = GOOD_SOURCE.replace("return _t1", "return _t1 or _bogus")
        findings = verify_kernel_source(tampered, META)
        assert rules_of(findings) == ["kernel-free-variable"]

    def test_phantom_declared_block_is_flagged(self):
        phantom = KernelMeta(
            block_scans={"b0": ("R",), "b9": ()},
            scan_names=("R",),
            consts=(),
            block_keys=("b0", "b9"),
            index_keys=(),
        )
        findings = verify_kernel_source(GOOD_SOURCE, phantom)
        assert rules_of(findings) == ["kernel-statics-mismatch"]

    def test_syntax_error_is_flagged(self):
        findings = verify_kernel_source("def _kernel(:\n", META)
        assert rules_of(findings) == ["kernel-compile-error"]

    def test_missing_kernel_function_is_flagged(self):
        findings = verify_kernel_source("x = 1\n", META)
        assert rules_of(findings) == ["kernel-compile-error"]


class TestRealCorpus:
    def test_corpus_covers_both_semirings_and_all_shapes(self):
        entries = build_corpus()
        names = {entry.name for entry in entries}
        semirings = {name.split(":")[0] for name in names}
        shapes = {name.split(":")[1] for name in names}
        assert semirings == {"boolean", "naturals"}
        assert {
            "project", "select", "join", "union", "shared-subplan",
            "extend-permute", "groupby", "agg-sum",
        } <= shapes

    def test_every_corpus_kernel_verifies_clean(self):
        for entry in build_corpus():
            findings = verify_kernel(entry.compiled, entry.name)
            assert findings == [], [f.render() for f in findings]

    def test_every_bound_plan_hoists_only_declared_sites(self):
        bound_seen = 0
        for entry in build_corpus():
            if entry.bound is None:
                continue
            bound_seen += 1
            findings = verify_bound_statics(
                entry.compiled, entry.bound, entry.name
            )
            assert findings == [], [f.render() for f in findings]
        assert bound_seen > 0

    def test_block_scans_metadata_is_consistent(self):
        for entry in build_corpus():
            compiled = entry.compiled
            assert set(compiled.block_scans) == {
                key for key, *_ in compiled.block_sites
            }
            for scans in compiled.block_scans.values():
                assert set(scans) <= set(compiled.scan_names)

    def test_bogus_hoisted_key_is_flagged(self):
        entry = next(e for e in build_corpus() if e.bound is not None)

        class FakeBound:
            statics = dict(entry.bound.statics, **{"b999": {}})

        findings = verify_bound_statics(entry.compiled, FakeBound(), entry.name)
        assert rules_of(findings) == ["kernel-statics-mismatch"]

    def test_checker_runs_through_project_hook(self):
        findings = list(KernelChecker().check_project(AnalysisContext()))
        assert findings == [], [f.render() for f in findings]

    def test_checker_honors_skip_option(self):
        context = AnalysisContext(options={"skip_kernel_corpus": True})
        assert list(KernelChecker().check_project(context)) == []


class TestBlockScansPickle:
    def test_round_trip_preserves_block_scans(self):
        entry = build_corpus()[0]
        clone = pickle.loads(pickle.dumps(entry.compiled))
        assert clone.block_scans == entry.compiled.block_scans
        assert verify_kernel(clone, entry.name) == []

    def test_legacy_pickle_without_block_scans_recovers_scopes(self):
        entry = next(e for e in build_corpus() if e.compiled.block_scans)
        compiled = entry.compiled
        state = compiled.__getstate__()
        del state["block_scans"]
        clone = type(compiled).__new__(type(compiled))
        clone.__setstate__(state)
        assert clone.block_scans == compiled.block_scans


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
