"""Shared builders for the codegen differential suite.

The contract under test is *bit-identical conformance*: for every plan it
accepts, the compiled kernel must reproduce the tree-walking
interpreter's ``{values: multiplicity}`` mapping exactly — same content,
same insertion order — on every possible world.  The builders here
produce small databases (cheap world enumeration) and a spread of query
shapes covering every fused operator: filter, hash join, nested-loop
product, projection, union, extension, reordering and group-aggregation.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import SConst, Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.pvc_table import PVCDatabase
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    relation,
)
from repro.query.predicates import cmp_, eq, lit


def build_db(semiring):
    """Two joinable tables over four variables (16 worlds)."""
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=semiring)
    r = db.create_table("R", ["a", "b"])
    reg.bernoulli("x1", 0.4)
    reg.bernoulli("x2", 0.7)
    if semiring is NATURALS:
        r.add(("u", 1), Var("x1"))
        r.add(("u", 1), SConst(2))  # duplicate values, merged multiplicity
        r.add(("v", 2), Var("x2"))
    else:
        r.add(("u", 1), Var("x1"))
        r.add(("v", 2), Var("x2"))
    r.add(("w", 3), SConst(semiring.one))
    s = db.create_table("S", ["c", "d"])
    reg.bernoulli("y1", 0.5)
    reg.bernoulli("y2", 0.8)
    s.add((1, "p"), Var("y1"))
    s.add((2, "q"), Var("y2"))
    s.add((3, "p"), SConst(semiring.one))
    return db


#: Query shapes exercising every operator the emitter fuses.  Products
#: require disjoint schemas and unions identical ones, hence the shapes.
QUERY_SHAPES = {
    "project": Project(relation("R"), ["a"]),
    "select": Select(relation("R"), cmp_("b", ">=", 2)),
    "join": Project(
        Select(Product(relation("R"), relation("S")), eq("b", "c")),
        ["a", "d"],
    ),
    "union": Union(
        Select(relation("R"), eq("a", lit("u"))),
        Select(relation("R"), cmp_("b", ">", 1)),
    ),
    "shared-subplan": Union(
        Select(relation("R"), cmp_("b", ">", 1)),
        Select(relation("R"), cmp_("b", ">", 1)),
    ),
    "extend-permute": Project(Extend(relation("R"), "a2", "a"), ["a2", "b", "a"]),
    "groupby": GroupAgg(
        Select(Product(relation("R"), relation("S")), eq("b", "c")),
        ["d"],
        [AggSpec.of("n", "count")],
    ),
    "agg-sum": GroupAgg(
        relation("S"),
        ["d"],
        [AggSpec.of("total", "sum", "c")],
    ),
}


@pytest.fixture(params=[BOOLEAN, NATURALS], ids=["boolean", "naturals"])
def db(request):
    return build_db(request.param)


@pytest.fixture(params=sorted(QUERY_SHAPES), ids=sorted(QUERY_SHAPES))
def query(request):
    return QUERY_SHAPES[request.param]
