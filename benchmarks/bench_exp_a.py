"""Experiment A (Figure 7): varying the constant ``c``.

Paper parameters: #v=25, L=200, R=0, #cl=3, #l=3, maxv=200, c ∈ [0, 300]
(c ∈ [0, 30000] for SUM), θ ∈ {=, ≤, ≥}, for MIN, MAX, COUNT, SUM.

Scaled parameters here: #v=10, L=30, maxv=50, c swept over [0, 75]
(scaled by maxv/2 · L for SUM, as in the paper).  Expected shapes:

* MIN/MAX: runtime grows with c until c ≈ maxv, then plateaus — pruning
  admits ever more terms until all participate;
* COUNT: bell shape peaked near L/2 (binomial-coefficient hardness);
* SUM ≈ COUNT with the c-axis scaled by maxv/2.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import dataclasses
import statistics
import time

import pytest

from benchmarks.common import (
    BenchReport,
    average_time,
    build_mc_database,
    mc_query,
    print_series,
    run_point,
    smoke_mode,
)
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    left_terms=30,
    right_terms=0,
    variables=10,
    clauses=3,
    literals=3,
    max_value=50,
)

#: c-sweep for MIN/MAX (same axis as the paper's [0, 1.5·maxv]).
C_VALUES = [0, 12, 25, 50, 75]

#: For SUM the axis is scaled by maxv/2 = 25 (expected term value),
#: for COUNT it spans the term count L.
C_VALUES_COUNT = [0, 7, 15, 22, 30]
C_VALUES_SUM = [0, 190, 375, 560, 750]

THETAS = ["=", "<=", ">="]
RUNS = 2


#: Monte-Carlo baseline parameters (see ``common.build_mc_database``).
MC_SAMPLES = 2000
MC_RUNS = 3


def _params(agg: str, theta: str, c: int) -> ExprParams:
    return BASE.with_(agg_left=agg, theta=theta, constant=c)


def _sweep(
    agg: str,
    cs: list[int],
    thetas: list[str] = None,
    runs: int = RUNS,
    report: BenchReport | None = None,
) -> list[tuple]:
    rows = []
    for theta in thetas if thetas is not None else THETAS:
        for c in cs:
            mean, stdev = run_point(_params(agg, theta, c), runs=runs, seed=c)
            rows.append((agg, theta, c, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
            if report is not None:
                report.add(
                    agg,
                    {"theta": theta, "c": c, "runs": runs},
                    mean=mean,
                    stdev=stdev,
                )
    return rows


def montecarlo_baseline(
    samples: int = MC_SAMPLES, runs: int = MC_RUNS
) -> tuple[float, float]:
    """Time the MCDB-style sampling baseline on the grouped-SUM workload.

    Returns ``(mean_seconds, stdev_seconds)`` over ``runs`` engine
    instances with distinct seeds (as for the compiled sweeps, engine
    construction is not timed — sampling and evaluation are).
    """
    from repro.engine.montecarlo import MonteCarloEngine

    query = mc_query()
    times = []
    for run in range(runs):
        db = build_mc_database()
        engine = MonteCarloEngine(db, seed=42 + run)
        start = time.perf_counter()
        engine.tuple_probabilities(query, samples=samples)
        times.append(time.perf_counter() - start)
    mean = statistics.mean(times)
    stdev = statistics.stdev(times) if len(times) > 1 else 0.0
    return mean, stdev


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES)
def bench_min(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("MIN", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES)
def bench_max(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("MAX", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES_COUNT)
def bench_count(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("COUNT", theta, c), RUNS), rounds=1, iterations=1
    )


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("c", C_VALUES_SUM)
def bench_sum(benchmark, theta, c):
    benchmark.pedantic(
        average_time, args=(_params("SUM", theta, c), RUNS), rounds=1, iterations=1
    )


def main():
    smoke = smoke_mode()
    report = BenchReport(
        "exp_a",
        base_params=dataclasses.asdict(BASE),
        mc={"rows": 40, "groups": 4, "max_value": 50, "samples": MC_SAMPLES},
    )
    for agg, cs in [
        ("MIN", C_VALUES),
        ("MAX", C_VALUES),
        ("COUNT", C_VALUES_COUNT),
        ("SUM", C_VALUES_SUM),
    ]:
        if smoke:  # CI perf-smoke job: one mid-sweep point, one θ, one run
            cs, thetas, runs = [cs[len(cs) // 2]], ["<="], 1
        else:
            thetas, runs = THETAS, RUNS
        print_series(
            f"Experiment A — {agg} (Figure 7)",
            ["agg", "θ", "c", "mean", "stdev"],
            _sweep(agg, cs, thetas, runs, report=report),
        )
    samples, runs = (200, 1) if smoke else (MC_SAMPLES, MC_RUNS)
    mean, stdev = montecarlo_baseline(samples=samples, runs=runs)
    print_series(
        "Monte-Carlo baseline — grouped SUM, sampled worlds",
        ["samples", "mean", "stdev"],
        [(samples, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}")],
    )
    report.add(
        "MONTECARLO", {"samples": samples, "runs": runs}, mean=mean, stdev=stdev
    )
    report.finish()


if __name__ == "__main__":
    main()
