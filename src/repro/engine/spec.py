"""The unified answer surface: evaluation specs and interval-valued results.

Two small types shared by every engine:

* :class:`EvalSpec` — *how* a query should be answered: exactly, by
  budgeted d-tree approximation with deterministic bounds (``approx``),
  or by sequential-stopping Monte-Carlo with an (ε, δ) guarantee
  (``sample``).  One spec object travels ``Session.run/sql`` → the
  :class:`~repro.engine.base.Engine` protocol → the adapters, so every
  engine interprets ``epsilon``/``delta``/``budget``/``time_limit`` the
  same way.
* :class:`ProbInterval` — *what* comes back: every probability in a
  :class:`~repro.engine.sprout.QueryResult` is an interval ``[low, high]``
  guaranteed to contain the true probability.  Exact answers are
  zero-width intervals.  The class subclasses :class:`float` (its value
  is the midpoint), so existing call sites — arithmetic, comparisons,
  formatting, JSON — keep working unchanged while new code can inspect
  ``.low``/``.high``/``.width`` and ``.point``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import QueryValidationError
from repro.parallel.shards import validate_workers

__all__ = ["EvalSpec", "ProbInterval", "EVAL_MODES"]

#: The recognised evaluation modes, in guarantee order.
EVAL_MODES = ("exact", "approx", "sample")

_POINT_TOL = 1e-12


class ProbInterval(float):
    """An interval ``[low, high]`` bracketing a probability.

    The float value of the instance is the midpoint, so interval-valued
    results drop into existing float call sites; ``width == 0``
    identifies exact results.  Instances are immutable.
    """

    __slots__ = ("low", "high")

    def __new__(cls, low: float, high: float) -> "ProbInterval":
        if not (low == low and high == high):  # NaN guard
            raise QueryValidationError(
                f"invalid probability interval [{low}, {high}]"
            )
        if low > high + 1e-9 or low < -1e-9 or high > 1.0 + 1e-9:
            raise QueryValidationError(
                f"invalid probability interval [{low}, {high}]"
            )
        low = min(max(low, 0.0), 1.0)
        high = min(max(high, low), 1.0)
        self = super().__new__(cls, (low + high) / 2.0)
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        return self

    def __setattr__(self, name, value):
        raise AttributeError(f"ProbInterval is immutable; cannot set {name!r}")

    def __reduce__(self):
        # float's default reduce reconstructs from the single float value
        # and then re-sets the slots, which immutability forbids; rebuild
        # from the real constructor arguments instead (pickle + deepcopy).
        return (ProbInterval, (self.low, self.high))

    @classmethod
    def point(cls, p: float) -> "ProbInterval":
        """The zero-width interval of an exactly known probability."""
        return cls(p, p)

    @classmethod
    def unknown(cls) -> "ProbInterval":
        """The vacuous interval ``[0, 1]``."""
        return cls(0.0, 1.0)

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def is_point(self) -> bool:
        """True when the interval has (numerically) collapsed."""
        return self.high - self.low <= _POINT_TOL

    @property
    def value(self) -> float:
        """The exact probability of a collapsed interval.

        Raises :class:`~repro.errors.QueryValidationError` when the
        interval still has width — callers that can consume intervals
        should read ``low``/``high`` (or the midpoint, ``float(self)``)
        instead.
        """
        if not self.is_point:
            raise QueryValidationError(
                f"interval {self!r} has width {self.width:.3g}; "
                f"no exact point value is known"
            )
        return float(self)

    def contains(self, p: float, tol: float = 1e-9) -> bool:
        return self.low - tol <= p <= self.high + tol

    def definitely_above(self, other: "ProbInterval") -> bool:
        """True when every probability in ``self`` ≥ every one in ``other``."""
        return self.low >= other.high

    def intersect(self, other: "ProbInterval") -> "ProbInterval":
        """The intersection of two sound intervals (still sound)."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:  # numerically inconsistent: keep the tighter one
            return self if self.width <= other.width else other
        return ProbInterval(low, high)

    def to_json(self) -> dict:
        """The documented wire encoding: ``{"low": ..., "high": ...}``.

        A bare ``json.dumps`` of a :class:`ProbInterval` would serialise
        the float midpoint and silently lose the bracket; the codec keeps
        both endpoints (the midpoint is recomputable).
        """
        return {"low": self.low, "high": self.high}

    @classmethod
    def from_json(cls, payload) -> "ProbInterval":
        """Inverse of :meth:`to_json` (accepts any low/high mapping)."""
        try:
            low, high = float(payload["low"]), float(payload["high"])
        except (TypeError, KeyError, ValueError) as exc:
            raise QueryValidationError(
                f"cannot decode {payload!r} as a probability interval; "
                f"expected a mapping with 'low' and 'high'"
            ) from exc
        return cls(low, high)

    def __repr__(self):
        if self.is_point:
            return f"ProbInterval({float(self):.6g})"
        return f"ProbInterval({self.low:.6g}, {self.high:.6g})"


@dataclass(frozen=True)
class EvalSpec:
    """How a query should be evaluated, uniformly across engines.

    ``mode``:
        * ``"exact"`` — point answers (zero-width intervals); the default.
        * ``"approx"`` — budgeted d-tree compilation with deterministic
          bounds: every reported interval *certainly* contains the true
          probability, refined until all widths ≤ ``epsilon``.
        * ``"sample"`` — sequential-stopping Monte-Carlo: intervals are
          (ε, δ) confidence intervals, each covering its true probability
          with probability ≥ 1 − ``delta``.
    ``epsilon``:
        Target interval width (both modes stop once all widths ≤ ε).
    ``delta``:
        Per-interval failure probability of the ``sample`` mode.
    ``budget``:
        Hard work cap: Shannon expansions for ``approx``, drawn worlds
        for ``sample``.  ``None`` means engine defaults (approx falls
        back to exact compilation rather than give up; sample caps at
        the Hoeffding sample size for (ε, δ)).
    ``time_limit``:
        Wall-clock cap in seconds; refinement stops at the last completed
        round, reporting the (still sound) wider intervals.
    ``workers``:
        Multi-core execution: ``None`` (default) keeps every engine on
        its serial code path, an integer ``>= 1`` runs the deterministic
        sharded scheme on that many processes, and ``"auto"`` uses the
        machine's CPU count.  Seeded results are bit-identical for any
        worker count (see :mod:`repro.parallel`); ``workers`` therefore
        changes *how fast* an answer arrives, never *what* it is.
    ``on_timeout``:
        What happens when the ``time_limit`` deadline trips:
        ``"partial"`` (default) degrades to the best *sound* answer
        obtained so far — exact rows stay zero-width, not-yet-compiled
        rows report the vacuous ``[0, 1]`` interval — while ``"raise"``
        raises :class:`~repro.errors.QueryTimeoutError` carrying that
        same partial result.  The naive engine has no sound partial
        (its tuple set is incomplete mid-enumeration) and always raises.
    ``codegen``:
        Whether deterministic per-world evaluation may use the compiled
        plan kernels of :mod:`repro.codegen`: ``None`` (default) follows
        the ``REPRO_CODEGEN`` environment knob, ``True``/``False`` force
        it per run.  Compiled and interpreted execution are bit-identical
        (the interpreter is the conformance oracle), so this — like
        ``workers`` — changes only *how fast* an answer arrives.
    """

    mode: str = "exact"
    epsilon: float = 0.05
    delta: float = 0.05
    budget: int | None = None
    time_limit: float | None = None
    workers: int | str | None = None
    on_timeout: str = "partial"
    codegen: bool | None = None

    def __post_init__(self):
        if self.mode not in EVAL_MODES:
            raise QueryValidationError(
                f"unknown evaluation mode {self.mode!r}; "
                f"expected one of {list(EVAL_MODES)}"
            )
        if not (self.epsilon >= 0.0):
            raise QueryValidationError(
                f"epsilon must be >= 0, got {self.epsilon!r}"
            )
        if not (0.0 < self.delta < 1.0):
            raise QueryValidationError(
                f"delta must be in (0, 1), got {self.delta!r}"
            )
        if self.budget is not None and self.budget <= 0:
            raise QueryValidationError(
                f"budget must be a positive integer, got {self.budget!r}"
            )
        if self.time_limit is not None and self.time_limit <= 0:
            raise QueryValidationError(
                f"time_limit must be positive, got {self.time_limit!r}"
            )
        validate_workers(self.workers)
        if self.on_timeout not in ("partial", "raise"):
            raise QueryValidationError(
                f"on_timeout must be 'partial' or 'raise', "
                f"got {self.on_timeout!r}"
            )
        if self.codegen not in (None, True, False):
            raise QueryValidationError(
                f"codegen must be True, False or None, got {self.codegen!r}"
            )

    @classmethod
    def make(cls, spec=None, **overrides) -> "EvalSpec":
        """Coerce ``spec`` (None, a mode string, or an EvalSpec) and apply
        keyword overrides (``mode=``, ``epsilon=``, ... with ``None``
        meaning "keep").  This is the single entry point the session uses
        to build the spec it threads through the engine protocol."""
        if spec is None:
            spec = cls()
        elif isinstance(spec, str):
            spec = cls(mode=spec)
        elif not isinstance(spec, EvalSpec):
            raise QueryValidationError(
                f"cannot use {spec!r} as an evaluation spec; expected an "
                f"EvalSpec, a mode string, or None"
            )
        supplied = {k: v for k, v in overrides.items() if v is not None}
        if supplied:
            unknown = set(supplied) - {
                "mode", "epsilon", "delta", "budget", "time_limit",
                "workers", "on_timeout", "codegen",
            }
            if unknown:
                raise QueryValidationError(
                    f"unknown EvalSpec fields {sorted(unknown)}"
                )
            # An epsilon/delta/budget override alone implies a non-exact
            # intent only when the caller also picks the mode; leave the
            # mode untouched here and let the session's auto policy decide.
            spec = replace(spec, **supplied)
        return spec

    def to_json(self) -> dict:
        """The documented wire encoding — one key per spec field.

        Defaults are included, so a decoded spec is exactly the encoded
        one (``EvalSpec.from_json(spec.to_json()) == spec``).
        """
        return {
            "mode": self.mode,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "budget": self.budget,
            "time_limit": self.time_limit,
            "workers": self.workers,
            "on_timeout": self.on_timeout,
            "codegen": self.codegen,
        }

    @classmethod
    def from_json(cls, payload) -> "EvalSpec":
        """Inverse of :meth:`to_json`; missing keys take the defaults.

        Unknown keys are rejected (a mistyped field silently meaning
        "default" would be a protocol bug), and field validation is the
        constructor's — a bad wire value raises the same
        :class:`~repro.errors.QueryValidationError` a local caller gets.
        """
        if not isinstance(payload, dict):
            raise QueryValidationError(
                f"cannot decode {payload!r} as an EvalSpec; expected an "
                f"object with spec fields"
            )
        unknown = set(payload) - {
            "mode", "epsilon", "delta", "budget", "time_limit",
            "workers", "on_timeout", "codegen",
        }
        if unknown:
            raise QueryValidationError(
                f"unknown EvalSpec fields {sorted(unknown)}"
            )
        defaults = cls()
        fields = {}
        for field in (
            "mode", "epsilon", "delta", "budget", "time_limit",
            "workers", "on_timeout", "codegen",
        ):
            value = payload.get(field)
            # Explicit null and absent both mean "the default": budget,
            # time_limit and workers legitimately default to None, and
            # clients round-tripping to_json() re-send those nulls.
            fields[field] = getattr(defaults, field) if value is None else value
        return cls(**fields)

    @property
    def is_exact(self) -> bool:
        return self.mode == "exact"

    @property
    def execution_only(self) -> bool:
        """True when the spec only tunes *execution* (the workers knob)
        and leaves every answer-quality field at its default.

        The Monte-Carlo adapter uses this to distinguish "shard my legacy
        fixed-budget run" (allowed) from an explicit exact-mode request
        (still an error: sampling cannot guarantee exact answers).
        ``on_timeout`` is a degradation policy, not a quality field, so
        it does not count either; neither does ``codegen``, which is
        answer-neutral by construction.
        """
        return (
            replace(self, workers=None, on_timeout="partial", codegen=None)
            == EvalSpec()
        )
