"""Property tests: the algebraic laws of Definitions 2-4 hold.

These are the structural invariants everything else rests on: if the
monoid/semiring/semimodule axioms broke, convolution-based probability
computation would silently produce garbage.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import Var
from repro.algebra.monoid import COUNT, MAX, MIN, PROD, SUM, CappedSumMonoid
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.valuation import Valuation

from tests.property.strategies import NAMES, semiring_exprs

MONOIDS = [SUM, COUNT, MIN, MAX, PROD, CappedSumMonoid(10)]

monoid_values = st.integers(min_value=0, max_value=20)
nat_values = st.integers(min_value=0, max_value=10)
bool_values = st.booleans()


class TestMonoidLaws:
    @given(st.sampled_from(MONOIDS), monoid_values, monoid_values, monoid_values)
    def test_associativity(self, monoid, a, b, c):
        assert monoid.add(monoid.add(a, b), c) == monoid.add(a, monoid.add(b, c))

    @given(st.sampled_from(MONOIDS), monoid_values, monoid_values)
    def test_commutativity(self, monoid, a, b):
        assert monoid.add(a, b) == monoid.add(b, a)

    @given(st.sampled_from(MONOIDS), monoid_values)
    def test_neutral_element(self, monoid, a):
        a = monoid.clamp(a)
        assert monoid.add(monoid.zero, a) == a
        assert monoid.add(a, monoid.zero) == a

    @given(st.sampled_from(MONOIDS), nat_values, nat_values, monoid_values)
    def test_nat_action_is_iterated_addition(self, monoid, n, m_count, value):
        # n ⊗ m computed in closed form equals n-fold addition.
        expected = monoid.fold([value] * n)
        assert monoid.act_nat(n, value) == monoid.clamp(expected)


class TestSemiringLaws:
    semirings = st.sampled_from([BOOLEAN, NATURALS])

    @given(semirings, nat_values, nat_values, nat_values)
    def test_distributivity(self, semiring, a, b, c):
        a, b, c = map(semiring.coerce, (min(a, 1), min(b, 1), min(c, 1)))
        left = semiring.mul(a, semiring.add(b, c))
        right = semiring.add(semiring.mul(a, b), semiring.mul(a, c))
        assert left == right

    @given(semirings, nat_values, nat_values)
    def test_add_mul_commute(self, semiring, a, b):
        a, b = semiring.coerce(min(a, 1)), semiring.coerce(min(b, 1))
        assert semiring.add(a, b) == semiring.add(b, a)
        assert semiring.mul(a, b) == semiring.mul(b, a)


class TestSemimoduleLaws:
    """Definition 4, checked through the valuation homomorphism."""

    @given(
        st.sampled_from([SUM, MIN, MAX]),
        bool_values,
        bool_values,
        monoid_values,
        monoid_values,
    )
    def test_action_distributes_over_monoid_sum_boolean(
        self, monoid, s, _unused, m1, m2
    ):
        # s ⊗ (m1 + m2) = s ⊗ m1 + s ⊗ m2
        left = monoid.act_bool(s, monoid.add(m1, m2))
        right = monoid.add(monoid.act_bool(s, m1), monoid.act_bool(s, m2))
        assert left == right

    @given(st.sampled_from([MIN, MAX]), bool_values, bool_values, monoid_values)
    def test_scalar_sum_distributes_boolean_idempotent(self, monoid, s1, s2, m):
        # (s1 + s2) ⊗ m = s1 ⊗ m + s2 ⊗ m   (in B: + is ∨).
        # Holds for the idempotent monoids MIN/MAX only: the paper notes
        # that "a semimodule B⊗N over SUM would not have the intuitive
        # semantics; this reflects the well-known incompatibility of SUM
        # aggregation with set semantics" (Section 2.2).
        left = monoid.act_bool(BOOLEAN.add(s1, s2), m)
        right = monoid.add(monoid.act_bool(s1, m), monoid.act_bool(s2, m))
        assert left == right

    def test_sum_over_boolean_is_not_a_semimodule(self):
        # The paper's counterexample, pinned: ⊤∨⊤ ⊗ m = m but m + m = 2m.
        assert SUM.act_bool(BOOLEAN.add(True, True), 5) == 5
        assert SUM.add(SUM.act_bool(True, 5), SUM.act_bool(True, 5)) == 10

    @given(
        st.sampled_from([SUM, MIN, MAX]), nat_values, nat_values, monoid_values
    )
    def test_scalar_product_is_composition_naturals(self, monoid, s1, s2, m):
        # (s1 · s2) ⊗ m = s1 ⊗ (s2 ⊗ m)
        left = monoid.act_nat(s1 * s2, m)
        right = monoid.act_nat(s1, monoid.act_nat(s2, m))
        assert left == right

    @given(st.sampled_from([SUM, MIN, MAX]), nat_values)
    def test_annihilation(self, monoid, s):
        assert monoid.act_nat(s, monoid.zero) == monoid.zero
        assert monoid.act_nat(0, 7) == monoid.zero


class TestFreeSemiringInvariance:
    """Evaluation is invariant under the constructors' canonicalisation."""

    @settings(max_examples=50)
    @given(
        semiring_exprs(depth=3),
        semiring_exprs(depth=3),
        st.lists(st.booleans(), min_size=len(NAMES), max_size=len(NAMES)),
    )
    def test_sum_commutes_under_evaluation(self, e1, e2, values):
        nu = Valuation(dict(zip(NAMES, values)), BOOLEAN)
        assert nu(e1 + e2) == nu(e2 + e1)
        assert nu(e1 * e2) == nu(e2 * e1)

    @settings(max_examples=50)
    @given(
        semiring_exprs(depth=2),
        semiring_exprs(depth=2),
        semiring_exprs(depth=2),
        st.lists(st.integers(0, 3), min_size=len(NAMES), max_size=len(NAMES)),
    )
    def test_distributivity_under_evaluation(self, e1, e2, e3, values):
        nu = Valuation(dict(zip(NAMES, values)), NATURALS)
        assert nu(e1 * (e2 + e3)) == nu(e1 * e2 + e1 * e3)
