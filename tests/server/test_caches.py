"""The shared engine-layer caches: bounded LRU, counters, thread-safety."""

import threading

import pytest

from repro import CompilationCache, PlanCache, connect
from repro.algebra.expressions import Var, ssum
from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.errors import QueryValidationError
from repro.prob.variables import VariableRegistry
from repro.query.ast import Project, relation


def make_cache(max_entries=None, variables=32):
    registry = VariableRegistry()
    for i in range(variables):
        registry.bernoulli(f"x{i}", 0.5)
    return CompilationCache(Compiler(registry, BOOLEAN), max_entries=max_entries)


class TestCompilationCacheLRU:
    def test_hit_miss_counters(self):
        cache = make_cache()
        cache.distribution(Var("x0"))
        cache.distribution(Var("x0"))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["evictions"] == 0

    def test_eviction_past_bound(self):
        cache = make_cache(max_entries=2)
        for i in range(3):
            cache.distribution(Var(f"x{i}"))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # x0 was least-recently-used: recompiling it is a miss...
        cache.distribution(Var("x0"))
        assert cache.stats()["misses"] == 4
        # ...while x2 is still cached.
        before = cache.stats()["hits"]
        cache.distribution(Var("x2"))
        assert cache.stats()["hits"] == before + 1

    def test_lookup_refreshes_recency(self):
        cache = make_cache(max_entries=2)
        cache.distribution(Var("x0"))
        cache.distribution(Var("x1"))
        cache.distribution(Var("x0"))  # x0 becomes MRU
        cache.distribution(Var("x2"))  # evicts x1, not x0
        hits = cache.stats()["hits"]
        cache.distribution(Var("x0"))
        assert cache.stats()["hits"] == hits + 1

    def test_unbounded_by_default(self):
        cache = make_cache()
        for i in range(20):
            cache.distribution(Var(f"x{i}"))
        assert cache.stats()["evictions"] == 0
        assert len(cache) == 20

    def test_bad_bound_rejected(self):
        with pytest.raises(QueryValidationError):
            make_cache(max_entries=0)

    def test_absorb_counts_as_miss_and_respects_existing(self):
        cache = make_cache()
        key = cache.normalize(Var("x0"))
        dist = Compiler(cache.registry, cache.semiring).distribution(key)
        cache.absorb(key, dist)
        assert cache.stats()["misses"] == 1
        assert cache.cached(key) is dist
        # A second absorb of the same key is a no-op.
        other = Compiler(cache.registry, cache.semiring).distribution(key)
        cache.absorb(key, other)
        assert cache.cached(key) is dist
        assert cache.stats()["misses"] == 1

    def test_clear_keeps_cache_usable(self):
        cache = make_cache()
        cache.distribution(ssum([Var("x0"), Var("x1")]))
        cache.clear()
        assert len(cache) == 0
        result = cache.distribution(ssum([Var("x0"), Var("x1")]))
        assert result is not None


class TestCompilationCacheThreads:
    def test_concurrent_distribution_absorb_clear(self):
        cache = make_cache(max_entries=16)
        errors = []

        def reader(offset):
            try:
                for round_ in range(30):
                    for i in range(8):
                        expr = ssum(
                            [Var(f"x{(offset + i) % 32}"), Var(f"x{i}")]
                        )
                        dist = cache.distribution(expr)
                        assert abs(sum(p for _, p in dist.items()) - 1.0) < 1e-9
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def clearer():
            try:
                for _ in range(10):
                    cache.clear()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(k,)) for k in range(3)
        ] + [threading.Thread(target=clearer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16


class TestPlanCache:
    def test_structurally_equal_queries_share_plans(self):
        cache = PlanCache()
        q1 = Project(relation("R"), ["a"])
        q2 = Project(relation("R"), ["a"])  # distinct object, equal structure
        fingerprint = (("R", 3),)
        assert cache.get(q1, fingerprint) is None
        cache.put(q1, fingerprint, "prepared-plan")
        assert cache.get(q2, fingerprint) == "prepared-plan"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_fingerprint_invalidates(self):
        cache = PlanCache()
        query = Project(relation("R"), ["a"])
        cache.put(query, (("R", 3),), "old")
        assert cache.get(query, (("R", 4),)) is None

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        queries = [Project(relation("R"), [col]) for col in ("a", "b", "c")]
        for i, query in enumerate(queries):
            cache.put(query, (), f"plan{i}")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(queries[0], ()) is None
        assert cache.get(queries[2], ()) == "plan2"

    def test_bad_bound_rejected(self):
        with pytest.raises(QueryValidationError):
            PlanCache(max_entries=-1)


class TestSharedCachesAcrossSessions:
    def test_plan_and_distribution_reuse_across_sessions(self):
        def build(cache=None, plan_cache=None):
            s = connect(cache=cache, plan_cache=plan_cache)
            t = s.table("R", ["kind", "value"])
            for kind, value, p in [("a", 10, 0.5), ("b", 30, 0.7)]:
                t.insert((kind, value), p=p)
            return s

        first = build()
        shared_plans = PlanCache()
        a = build(plan_cache=shared_plans)
        b = connect(plan_cache=shared_plans, database=a.db)
        query = "SELECT kind FROM R WHERE value >= 20"
        baseline = first.sql(query)
        r1 = a.sql(query)
        assert shared_plans.stats()["misses"] >= 1
        r2 = b.sql(query)
        assert shared_plans.stats()["hits"] >= 1
        probs = lambda r: {
            row.values: (row.probability().low, row.probability().high)
            for row in r.rows
        }
        assert probs(r1) == probs(r2) == probs(baseline)

    def test_session_rejects_foreign_cache(self):
        s1 = connect()
        s1.table("R", ["a"]).insert((1,), p=0.5)
        foreign = CompilationCache(
            Compiler(VariableRegistry(), BOOLEAN)
        )
        with pytest.raises(QueryValidationError):
            connect(cache=foreign, database=s1.db)
