"""Unit tests for the query algebra AST (Definition 5)."""

import pytest

from repro.db.schema import Schema
from repro.errors import QueryValidationError, SchemaError
from repro.query.ast import (
    AggSpec,
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    equijoin,
    product_of,
    relation,
)
from repro.query.predicates import cmp_, eq

CATALOG = {
    "R": Schema(["a", "b"]),
    "S": Schema(["c", "d"]),
    "T": Schema(["a", "b"]),
}


class TestSchemas:
    def test_base_relation(self):
        assert relation("R").schema(CATALOG) == CATALOG["R"]

    def test_unknown_relation(self):
        with pytest.raises(QueryValidationError, match="unknown relation"):
            relation("missing").schema(CATALOG)

    def test_extend(self):
        schema = Extend(relation("R"), "a2", "a").schema(CATALOG)
        assert schema.attributes == ("a", "b", "a2")

    def test_select_keeps_schema(self):
        query = Select(relation("R"), eq("a", 1))
        assert query.schema(CATALOG) == CATALOG["R"]

    def test_select_checks_predicate_attributes(self):
        query = Select(relation("R"), eq("z", 1))
        with pytest.raises(SchemaError):
            query.schema(CATALOG)

    def test_project(self):
        schema = Project(relation("R"), ["b"]).schema(CATALOG)
        assert schema.attributes == ("b",)

    def test_product_concatenates(self):
        schema = Product(relation("R"), relation("S")).schema(CATALOG)
        assert schema.attributes == ("a", "b", "c", "d")

    def test_product_name_clash_rejected(self):
        with pytest.raises(SchemaError, match="rename"):
            Product(relation("R"), relation("T")).schema(CATALOG)

    def test_union_compatible(self):
        schema = Union(relation("R"), relation("T")).schema(CATALOG)
        assert schema.attributes == ("a", "b")

    def test_union_incompatible_rejected(self):
        with pytest.raises(SchemaError, match="incompatible"):
            Union(relation("R"), relation("S")).schema(CATALOG)

    def test_group_agg_schema_marks_aggregations(self):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "b")])
        schema = query.schema(CATALOG)
        assert schema.attributes == ("a", "t")
        assert schema.is_aggregation("t")
        assert not schema.is_aggregation("a")

    def test_group_agg_empty_groupby(self):
        query = GroupAgg(relation("R"), [], [AggSpec.of("n", "COUNT")])
        assert query.schema(CATALOG).attributes == ("n",)

    def test_group_agg_needs_aggregations(self):
        with pytest.raises(QueryValidationError):
            GroupAgg(relation("R"), ["a"], [])


class TestAggSpec:
    def test_count_without_attribute(self):
        spec = AggSpec.of("n", "COUNT")
        assert spec.attribute is None

    def test_non_count_requires_attribute(self):
        with pytest.raises(QueryValidationError, match="requires an input"):
            AggSpec.of("t", "SUM")

    def test_monoid_instance_accepted(self):
        from repro.algebra.monoid import MIN

        assert AggSpec.of("m", MIN, "b").monoid == MIN

    def test_repr(self):
        assert "SUM(b)" in repr(AggSpec.of("t", "SUM", "b"))
        assert "COUNT(*)" in repr(AggSpec.of("n", "COUNT"))


class TestHelpers:
    def test_product_of_left_deep(self):
        query = product_of(relation("R"), relation("S"))
        assert isinstance(query, Product)

    def test_product_of_single(self):
        assert product_of(relation("R")) == relation("R")

    def test_product_of_empty_rejected(self):
        with pytest.raises(QueryValidationError):
            product_of()

    def test_equijoin_is_select_product(self):
        query = equijoin(relation("R"), relation("S"), [("a", "c")])
        assert isinstance(query, Select)
        assert isinstance(query.child, Product)

    def test_walk_and_base_relations(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("a", "c")), ["b"]
        )
        assert query.base_relations() == ["R", "S"]
        assert query.is_non_repeating()

    def test_repeating_detected(self):
        query = Product(relation("R"), relation("R"))
        assert not query.is_non_repeating()

    def test_repr_uses_algebra_notation(self):
        query = Project(Select(relation("R"), cmp_("a", "<=", 5)), ["b"])
        text = repr(query)
        assert "π" in text and "σ" in text
