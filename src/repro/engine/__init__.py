"""Query engines: compiled (SPROUT-style), approximate, brute-force, Monte-Carlo.

* :class:`~repro.engine.sprout.SproutEngine` — the paper's architecture:
  Figure-4 rewriting followed by d-tree compilation (exact, efficient on
  tractable queries).
* :class:`~repro.engine.approximate.ApproxAdapter` — budgeted partial
  compilation with deterministic probability bounds, refined until every
  interval width ≤ ε (the paper's anytime approximation scheme).
* :class:`~repro.engine.naive.NaiveEngine` — explicit possible-world
  enumeration (exact, exponential; the test oracle).
* :class:`~repro.engine.montecarlo.MonteCarloEngine` — sampling baseline
  in the spirit of MCDB, with a sequential-stopping (ε, δ) mode.

All are available behind the uniform :class:`~repro.engine.base.Engine`
protocol (adapters returning the same
:class:`~repro.engine.sprout.QueryResult` type, every probability a
:class:`~repro.engine.spec.ProbInterval`), which is what the
:class:`~repro.session.Session` facade dispatches on — *how* to evaluate
travels as one :class:`~repro.engine.spec.EvalSpec`.
"""

from repro.engine.approximate import ApproxAdapter
from repro.engine.base import (
    ENGINE_NAMES,
    CompilationCache,
    Engine,
    MonteCarloAdapter,
    NaiveAdapter,
    PlanCache,
    SproutAdapter,
    create_engine,
    select_engine_name,
)
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine, evaluate_deterministic
from repro.engine.spec import EVAL_MODES, EvalSpec, ProbInterval
from repro.engine.sprout import QueryResult, ResultRow, SproutEngine

__all__ = [
    "SproutEngine",
    "QueryResult",
    "ResultRow",
    "NaiveEngine",
    "evaluate_deterministic",
    "MonteCarloEngine",
    "Engine",
    "ENGINE_NAMES",
    "EVAL_MODES",
    "EvalSpec",
    "ProbInterval",
    "CompilationCache",
    "PlanCache",
    "SproutAdapter",
    "ApproxAdapter",
    "NaiveAdapter",
    "MonteCarloAdapter",
    "create_engine",
    "select_engine_name",
]
