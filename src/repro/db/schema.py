"""Relation schemas with aggregation-attribute tracking.

The query language ``Q`` (Definition 5) distinguishes ordinary attributes
from *aggregation attributes* — attributes produced by the ``$`` operator
whose values are semimodule expressions.  Projection, union and grouping
must never be applied to aggregation attributes; schemas therefore carry
that marking so the validator can enforce the constraints statically.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An ordered list of attribute names with aggregation markings.

    >>> s = Schema(["sid", "shop"])
    >>> s.index("shop")
    1
    """

    __slots__ = ("attributes", "aggregation_attributes", "_index")

    def __init__(
        self,
        attributes: Sequence[str],
        aggregation_attributes: Iterable[str] = (),
    ):
        attributes = tuple(attributes)
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attribute names in {attributes}")
        aggregation_attributes = frozenset(aggregation_attributes)
        unknown = aggregation_attributes - set(attributes)
        if unknown:
            raise SchemaError(
                f"aggregation attributes {sorted(unknown)} not in schema "
                f"{attributes}"
            )
        self.attributes = attributes
        self.aggregation_attributes = aggregation_attributes
        self._index = {name: i for i, name in enumerate(attributes)}

    def index(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema."""
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.attributes}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def is_aggregation(self, attribute: str) -> bool:
        """True if ``attribute`` carries semimodule expressions."""
        return attribute in self.aggregation_attributes

    def project(self, attributes: Sequence[str]) -> "Schema":
        """The sub-schema of ``attributes`` (order as given)."""
        for attribute in attributes:
            self.index(attribute)
        return Schema(
            tuple(attributes),
            frozenset(attributes) & self.aggregation_attributes,
        )

    def extend(self, attribute: str, *, aggregation: bool = False) -> "Schema":
        """Append a new attribute."""
        if attribute in self._index:
            raise SchemaError(f"attribute {attribute!r} already in schema")
        aggs = set(self.aggregation_attributes)
        if aggregation:
            aggs.add(attribute)
        return Schema(self.attributes + (attribute,), aggs)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the cartesian product; attribute names must be disjoint."""
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise SchemaError(
                f"cannot concatenate schemas sharing attributes "
                f"{sorted(overlap)}; rename first"
            )
        return Schema(
            self.attributes + other.attributes,
            self.aggregation_attributes | other.aggregation_attributes,
        )

    def __eq__(self, other):
        return (
            isinstance(other, Schema)
            and self.attributes == other.attributes
            and self.aggregation_attributes == other.aggregation_attributes
        )

    def __hash__(self):
        return hash((self.attributes, self.aggregation_attributes))

    def __repr__(self):
        parts = [
            f"{name}*" if self.is_aggregation(name) else name
            for name in self.attributes
        ]
        return f"Schema({', '.join(parts)})"
