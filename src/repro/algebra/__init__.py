"""Algebraic substrate: monoids, semirings, semimodules, and expressions.

This package implements Section 2.2 and the Figure-2 expression grammar of
the paper: commutative aggregation monoids, concrete annotation semirings,
the free semiring of symbolic annotations, semimodule expressions mixing
annotations with aggregation values, conditional expressions, and the
valuation homomorphisms that evaluate all of them.
"""

from repro.algebra.bounds import fold_comparison_by_bounds, value_bounds
from repro.algebra.conditions import COMPARISON_OPS, Compare, ComparisonOp, compare
from repro.algebra.expressions import (
    ONE,
    ZERO,
    Expr,
    Prod,
    SConst,
    SemiringExpr,
    Sum,
    Var,
    count_occurrences,
    sprod,
    ssum,
    variables_of,
)
from repro.algebra.monoid import (
    COUNT,
    MAX,
    MIN,
    PROD,
    SUM,
    CappedSumMonoid,
    Monoid,
    monoid_by_name,
)
from repro.algebra.parser import parse_expr
from repro.algebra.semimodule import (
    AggSum,
    MConst,
    ModuleExpr,
    Tensor,
    aggsum,
    module_terms,
    tensor,
)
from repro.algebra.semiring import BOOLEAN, NATURALS, Semiring
from repro.algebra.simplify import Normalizer, normalize
from repro.algebra.valuation import Valuation, evaluate

__all__ = [
    # expressions
    "Expr",
    "SemiringExpr",
    "Var",
    "SConst",
    "Sum",
    "Prod",
    "ZERO",
    "ONE",
    "ssum",
    "sprod",
    "variables_of",
    "count_occurrences",
    # monoids
    "Monoid",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "PROD",
    "CappedSumMonoid",
    "monoid_by_name",
    # semirings
    "Semiring",
    "BOOLEAN",
    "NATURALS",
    # semimodule
    "ModuleExpr",
    "MConst",
    "Tensor",
    "AggSum",
    "tensor",
    "aggsum",
    "module_terms",
    # conditions
    "Compare",
    "ComparisonOp",
    "compare",
    "COMPARISON_OPS",
    # valuation & simplification
    "Valuation",
    "evaluate",
    "Normalizer",
    "normalize",
    # parsing
    "parse_expr",
    # bounds
    "value_bounds",
    "fold_comparison_by_bounds",
]
