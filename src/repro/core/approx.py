"""Approximate probability computation on partially compiled d-trees.

The paper notes (Section 1) that "besides exact computation, decomposition
trees also allow for approximate probability computation [18]": compiling
an expression only partially and propagating *bounds* for the unexpanded
residual expressions.  This module reproduces that scheme for the
presence probability ``P[Φ ≠ 0_S]`` of tuple annotations:

* the expression is compiled with a budget on the number of Shannon (⊔)
  expansions;
* when the budget runs out, the remaining expression becomes an *unknown*
  leaf whose probability of being non-zero lies in ``[0, 1]``;
* bounds propagate upward through the independence rules because
  ``P(Φ ∨ Ψ) = 1-(1-p)(1-q)`` and ``P(Φ ∧ Ψ) = p·q`` are monotone in both
  arguments, and through mutex nodes because mixtures are monotone too.
  (For positive semirings without zero divisors — Boolean and ℕ — the
  non-zero events of independent sums/products combine by exactly these
  formulas, so the same propagation covers bag semantics.)
* conditional sub-expressions ``[α θ β]`` over aggregation semimodules are
  decided outright by the value intervals of
  :func:`repro.algebra.bounds.value_bounds` when the two sides separate
  (the Experiment-E effect); undecided comparisons are Shannon-expanded
  within the same budget, each substitution re-tightening the value
  intervals until the comparison folds.

Increasing the budget refines the interval monotonically; with an
unbounded budget the interval collapses to the exact probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.bounds import fold_comparison_by_bounds
from repro.algebra.conditions import Compare
from repro.algebra.expressions import (
    Expr,
    Prod,
    SConst,
    Sum,
    Var,
    count_occurrences,
    ssum,
    sprod,
)
from repro.algebra.simplify import Normalizer
from repro.algebra.semiring import BOOLEAN, Semiring
from repro.core import decompose
from repro.core.compile import Compiler
from repro.errors import CompilationError
from repro.prob.variables import VariableRegistry

__all__ = [
    "ProbabilityBounds",
    "ApproximateCompiler",
    "approximate_probability",
    "bounds_task",
]


@dataclass(frozen=True)
class ProbabilityBounds:
    """An interval ``[low, high]`` bracketing a Boolean probability."""

    low: float
    high: float

    def __post_init__(self):
        if not (0.0 - 1e-9 <= self.low <= self.high + 1e-9 <= 1.0 + 1e-9):
            raise CompilationError(
                f"invalid probability bounds [{self.low}, {self.high}]"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def contains(self, p: float, tol: float = 1e-9) -> bool:
        return self.low - tol <= p <= self.high + tol

    @classmethod
    def exact(cls, p: float) -> "ProbabilityBounds":
        return cls(p, p)

    @classmethod
    def unknown(cls) -> "ProbabilityBounds":
        return cls(0.0, 1.0)

    def disjunction(self, other: "ProbabilityBounds") -> "ProbabilityBounds":
        """Bounds of ``P(Φ ∨ Ψ)`` for independent operands (monotone)."""
        return ProbabilityBounds(
            1.0 - (1.0 - self.low) * (1.0 - other.low),
            1.0 - (1.0 - self.high) * (1.0 - other.high),
        )

    def conjunction(self, other: "ProbabilityBounds") -> "ProbabilityBounds":
        """Bounds of ``P(Φ ∧ Ψ)`` for independent operands (monotone)."""
        return ProbabilityBounds(self.low * other.low, self.high * other.high)

    def __repr__(self):
        return f"[{self.low:.6g}, {self.high:.6g}]"


class ApproximateCompiler:
    """Budgeted compilation producing probability bounds.

    Bounds ``P[Φ ≠ 0_S]`` — the presence probability of an annotation —
    for expressions built from variables, sums, products and conditional
    (semimodule comparison) sub-expressions.  ``semiring`` selects bag
    vs set semantics: it drives normalisation and decides whether the
    value-interval analysis of aggregation comparisons may assume 0/1
    scalars.  Semimodule expressions may appear only *inside* comparisons
    (as they do in Figure-4 annotations); a bare semimodule expression is
    rejected.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        budget: int,
        semiring: Semiring = BOOLEAN,
        normalizer: Normalizer | None = None,
        seed_bounds: dict | None = None,
        deadline=None,
    ):
        self.registry = registry
        self.budget = budget
        self.semiring = semiring
        #: Optional :class:`repro.resilience.deadline.Deadline`; once it
        #: expires further Shannon expansions return unknown bounds, the
        #: same sound degradation as budget exhaustion.
        self.deadline = deadline
        #: Shannon expansions actually performed (for diagnostics; the
        #: remaining allowance is ``budget``).
        self.expansions = 0
        #: ``normalizer`` may be shared across refinement rounds (and
        #: across the rows of one query): normalisation and restriction
        #: are pure, so the fused restrict cache carries over soundly.
        self._normalizer = normalizer if normalizer is not None else Normalizer(semiring)
        self._memo: dict[Expr, ProbabilityBounds] = {}
        if seed_bounds:
            # Zero-width entries of an earlier (smaller-budget) round are
            # *exact* regardless of that round's unexpanded leaves — an
            # unknown [0, 1] factor can only surface as positive width —
            # so iterative deepening reuses them instead of re-deriving.
            self._memo.update(
                (expr, bounds)
                for expr, bounds in seed_bounds.items()
                if bounds.width == 0.0
            )

    def exact_bounds(self) -> dict:
        """The memo entries proven exact, for seeding the next round."""
        return {
            expr: bounds
            for expr, bounds in self._memo.items()
            if bounds.width == 0.0
        }

    def bounds(self, expr: Expr) -> ProbabilityBounds:
        """Bounds on ``P[expr ≠ 0_S]`` within the expansion budget."""
        return self._bounds(self._normalizer(expr))

    def _bounds(self, expr: Expr) -> ProbabilityBounds:
        cached = self._memo.get(expr)
        if cached is None:
            cached = self._bounds_uncached(expr)
            self._memo[expr] = cached
        return cached

    def _bounds_uncached(self, expr: Expr) -> ProbabilityBounds:
        if isinstance(expr, SConst):
            nonzero = self.semiring.coerce(expr.value) != self.semiring.zero
            return ProbabilityBounds.exact(float(nonzero))
        if isinstance(expr, Var):
            return ProbabilityBounds.exact(self._var_nonzero(expr.name))
        if isinstance(expr, Sum):
            return self._combine(expr.children, ssum, "disjunction")
        if isinstance(expr, Prod):
            return self._combine(expr.children, sprod, "conjunction")
        if isinstance(expr, Compare):
            decided = fold_comparison_by_bounds(
                expr.left, expr.op.symbol, expr.right, self.semiring.is_boolean
            )
            if decided is not None:
                return ProbabilityBounds.exact(float(decided))
            if expr.variables:
                return self._shannon(expr)
            return ProbabilityBounds.unknown()
        raise CompilationError(
            f"approximation supports semiring expressions (with semimodule "
            f"comparisons) only, got {type(expr).__name__}"
        )

    def _var_nonzero(self, name: str) -> float:
        zero = self.semiring.zero
        return sum(
            prob
            for value, prob in self.registry[name].items()
            if self.semiring.coerce(value) != zero
        )

    def _combine(self, children, rebuild, combiner: str) -> ProbabilityBounds:
        groups = decompose.independent_groups(children)
        if len(groups) == 1:
            # Connected: no independence rule applies, expand a variable.
            return self._shannon(rebuild(children))
        result: ProbabilityBounds | None = None
        for group in groups:
            if len(group) == 1:
                group_bounds = self._bounds(group[0])
            else:
                group_bounds = self._shannon(rebuild(group))
            result = (
                group_bounds
                if result is None
                else getattr(result, combiner)(group_bounds)
            )
        return result

    def _shannon(self, expr: Expr) -> ProbabilityBounds:
        if not expr.variables:
            return self._bounds(expr)
        if self.budget <= 0:
            return ProbabilityBounds.unknown()
        if self.deadline is not None and self.deadline.expired():
            # An expired deadline behaves exactly like an exhausted
            # budget: stop expanding and report the (sound) vacuous
            # bounds, letting the caller keep whatever tightness the
            # completed expansions bought.
            return ProbabilityBounds.unknown()
        self.budget -= 1
        self.expansions += 1
        counts = count_occurrences(expr)
        name = max(expr.variables, key=lambda n: (counts.get(n, 0), n))
        low = high = 0.0
        for value, prob in self.registry[name].items():
            # The fused memoised restrict-and-normalise pass of the exact
            # compiler; sibling Shannon branches share their subterms.
            restricted = self._normalizer.restrict(
                expr, name, SConst(int(value))
            )
            child = self._bounds(restricted)
            low += prob * child.low
            high += prob * child.high
        return ProbabilityBounds(low, high)


def bounds_task(context, payload):
    """Process-pool task: one row's budgeted refinement round.

    The parallel seam of the approximate engine: within a refinement
    round every pending row gets the same Shannon allowance, so the rows
    are independent tasks.  ``context`` is the shared
    ``(registry, semiring, annotations)`` — annotations ride in the
    fork-inherited context so they cross the pickled call queue zero
    times instead of once per refinement round; the payload carries only
    the row's index, its allowance, and the exact sub-bounds an earlier
    round proved (the cross-round seed).  Bounds are a pure function of
    the inputs — a fresh :class:`~repro.algebra.simplify.Normalizer`
    only loses cache *sharing*, never changes a result — so parallel
    rounds are bit-identical to serial ones.

    Returns ``(low, high, expansions, exact_bounds)``.
    """
    registry, semiring, annotations = context
    index, allowance, seed_bounds = payload
    approximator = ApproximateCompiler(
        registry, allowance, semiring, seed_bounds=seed_bounds
    )
    bounds = approximator.bounds(annotations[index])
    return (
        bounds.low,
        bounds.high,
        approximator.expansions,
        approximator.exact_bounds(),
    )


def approximate_probability(
    expr: Expr,
    registry: VariableRegistry,
    epsilon: float = 0.01,
    initial_budget: int = 8,
    max_budget: int = 1 << 20,
    semiring: Semiring = BOOLEAN,
) -> ProbabilityBounds:
    """Refine bounds on ``P[expr ≠ 0_S]`` until the interval width ≤ ε.

    Doubles the Shannon budget until the requested precision is reached;
    falls back to the exact compiler once the budget would exceed
    ``max_budget`` (at which point exact compilation is typically cheaper
    than further refinement).
    """
    budget = initial_budget
    normalizer = Normalizer(semiring)
    seed: dict | None = None
    while budget <= max_budget:
        approximator = ApproximateCompiler(
            registry, budget, semiring, normalizer=normalizer, seed_bounds=seed
        )
        bounds = approximator.bounds(expr)
        if bounds.width <= epsilon:
            return bounds
        seed = approximator.exact_bounds()
        budget *= 2
    compiler = Compiler(registry, semiring)
    exact = 1.0 - compiler.distribution(expr)[semiring.zero]
    return ProbabilityBounds.exact(exact)
