"""Possible-worlds semantics of pvc-databases (Definition 6).

The semantics of a pvc-database ``D`` is the set of worlds
``{ν(T₁), ..., ν(Tₙ)}`` for every valuation ``ν`` of the variables,
where ``ν`` maps annotations to multiplicities and semimodule values to
monoid values.  This module enumerates those worlds explicitly — the
exponential-cost ground truth used by the brute-force query engine and
the test suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.db.pvc_table import PVCDatabase
from repro.db.relation import Relation
from repro.errors import ConcurrentMutationError
from repro.prob.space import ProbabilitySpace

__all__ = ["enumerate_database_worlds", "world_count"]


def world_count(db: PVCDatabase) -> int:
    """Number of distinct valuations of the variables used by ``db``."""
    space = ProbabilitySpace(db.registry, db.semiring)
    return space.world_count(sorted(db.variables))


def enumerate_database_worlds(
    db: PVCDatabase,
) -> Iterator[tuple[dict[str, Relation], float]]:
    """Yield every possible world of the database with its probability.

    A world is a mapping from table names to deterministic
    :class:`~repro.db.relation.Relation` instances.  Only the variables
    actually used by the database are enumerated; unused registry
    variables are marginalised out.

    Enumeration spans many reads of the live tables; a mutation landing
    mid-sweep would mix epochs across worlds, so the generation is
    checked per world and :class:`~repro.errors.ConcurrentMutationError`
    raised when it moves.
    """
    space = ProbabilitySpace(db.registry, db.semiring)
    names = sorted(db.variables)
    generation = db.generation
    for valuation, probability in space.enumerate_worlds(names):
        if db.generation != generation:
            raise ConcurrentMutationError(
                f"database mutated during possible-worlds enumeration "
                f"(generation {generation} -> {db.generation})"
            )
        world = {
            table_name: table.instantiate(valuation, db.semiring)
            for table_name, table in db.tables.items()
        }
        yield world, probability
