"""Tests for the hierarchical property and Q_ind/Q_hie classes (Section 6)."""

import pytest

from repro.algebra.expressions import Var
from repro.db.pvc_table import PVCDatabase
from repro.db.schema import Schema
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    product_of,
    relation,
)
from repro.query.predicates import cmp_, conj, eq, lit
from repro.query.tractability import (
    QueryClass,
    classify_query,
    flatten_spj,
    is_hierarchical,
    root_attribute_classes,
    tuple_independent_relations,
)

CATALOG = {
    "R": Schema(["r_a", "r_b"]),
    "S": Schema(["s_b", "s_c"]),
    "T": Schema(["t_c", "t_d"]),
    "Sup": Schema(["sid", "shop"]),
    "PS": Schema(["psid", "pid", "price"]),
}
TI = set(CATALOG)


class TestFlatten:
    def test_spj_block_structure(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("r_b", "s_b")),
            ["r_a"],
        )
        block = flatten_spj(query)
        assert block.head == ("r_a",)
        assert len(block.leaves) == 2
        assert len(block.atoms) == 1

    def test_nested_selects_collected(self):
        query = Select(
            Select(Product(relation("R"), relation("S")), eq("r_b", "s_b")),
            eq("r_a", lit(1)),
        )
        block = flatten_spj(query)
        assert len(block.atoms) == 2
        assert block.head is None


class TestHierarchical:
    def test_two_relation_join_is_hierarchical(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("r_b", "s_b")),
            [],
        )
        assert is_hierarchical(query, CATALOG)

    def test_rst_chain_is_not_hierarchical(self):
        # The classic non-hierarchical pattern R(a,b) S(b,c) T(c,d) with
        # joins on b and c: at(b*)={R,S}, at(c*)={S,T} overlap on S.
        query = Project(
            Select(
                product_of(relation("R"), relation("S"), relation("T")),
                conj(eq("r_b", "s_b"), eq("s_c", "t_c")),
            ),
            [],
        )
        assert not is_hierarchical(query, CATALOG)

    def test_head_attributes_are_exempt(self):
        # Projecting the offending attribute into the head restores the
        # hierarchical property.
        query = Project(
            Select(
                product_of(relation("R"), relation("S"), relation("T")),
                conj(eq("r_b", "s_b"), eq("s_c", "t_c")),
            ),
            ["s_c", "t_c"],
        )
        assert is_hierarchical(query, CATALOG)

    def test_constant_equated_attributes_are_exempt(self):
        query = Project(
            Select(
                product_of(relation("R"), relation("S"), relation("T")),
                conj(eq("r_b", "s_b"), eq("s_c", "t_c"), eq("s_c", lit(7))),
            ),
            [],
        )
        assert is_hierarchical(query, CATALOG)

    def test_repeating_queries_are_not_hierarchical(self):
        query = Project(Product(relation("R"), relation("R")), [])
        assert not is_hierarchical(query, CATALOG)

    def test_root_attributes(self):
        query = Project(
            Select(Product(relation("Sup"), relation("PS")), eq("sid", "psid")),
            [],
        )
        roots = root_attribute_classes(query, CATALOG)
        assert frozenset({"sid", "psid"}) in roots
        assert all("shop" not in cls for cls in roots)


class TestClassification:
    def test_tuple_independent_base_is_qind(self):
        result = classify_query(relation("R"), CATALOG, TI)
        assert result.query_class is QueryClass.QIND

    def test_unknown_base_is_unknown(self):
        result = classify_query(relation("R"), CATALOG, set())
        assert result.query_class is QueryClass.UNKNOWN

    def test_def_82a_project_away_aggregate(self):
        agg = GroupAgg(relation("PS"), ["pid"], [AggSpec.of("m", "MAX", "price")])
        query = Project(Select(agg, cmp_("m", "<=", 50)), ["pid"])
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.QIND
        assert any("8.2a" in reason for reason in result.reasons)

    def test_def_82b_hierarchical_join_with_root_head(self):
        query = Project(
            Select(Product(relation("Sup"), relation("PS")), eq("sid", "psid")),
            ["sid"],
        )
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.QIND

    def test_def_82b_non_root_head_not_qind(self):
        query = Project(
            Select(Product(relation("Sup"), relation("PS")), eq("sid", "psid")),
            ["shop"],
        )
        result = classify_query(query, CATALOG, TI)
        # 'shop' is not a root attribute, so 8.2(b) does not apply; the
        # query is still hierarchical, hence Q_hie by 9.2.
        assert result.query_class is QueryClass.QHIE

    def test_def_82c_aggregate_comparison(self):
        g1 = GroupAgg(relation("R"), [], [AggSpec.of("m1", "MIN", "r_b")])
        g2 = GroupAgg(relation("S"), [], [AggSpec.of("m2", "MIN", "s_b")])
        query = Project(Select(Product(g1, g2), cmp_("m1", "<=", "m2")), [])
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.QIND
        assert any("8.2c" in reason for reason in result.reasons)

    def test_def_91_grouped_aggregation_over_hierarchical_join(self):
        # Example 14: $_{∅;α←SUM(price)}(σ_{shop=c}(Sup ⋈ PS))
        join = Select(
            Product(relation("Sup"), relation("PS")),
            conj(eq("sid", "psid"), eq("shop", lit("M&S"))),
        )
        query = GroupAgg(join, [], [AggSpec.of("alpha", "SUM", "price")])
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.QHIE
        assert any("9.1" in reason for reason in result.reasons)

    def test_def_92_plain_hierarchical_join(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("r_b", "s_b")),
            ["r_a"],
        )
        result = classify_query(query, CATALOG, TI)
        assert result.tractable

    def test_non_hierarchical_aggregation_unknown(self):
        join = Select(
            product_of(relation("R"), relation("S"), relation("T")),
            conj(eq("r_b", "s_b"), eq("s_c", "t_c")),
        )
        query = GroupAgg(join, [], [AggSpec.of("n", "COUNT")])
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.UNKNOWN

    def test_repeating_query_unknown(self):
        query = Project(Product(relation("R"), relation("R")), [])
        result = classify_query(query, CATALOG, TI)
        assert result.query_class is QueryClass.UNKNOWN
        assert any("repeats" in reason for reason in result.reasons)


class TestTupleIndependenceDetection:
    def test_detects_ti_tables(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg)
        table = db.create_table("R", ["a"])
        for i in range(3):
            reg.bernoulli(f"x{i}", 0.5)
            table.add((i,), Var(f"x{i}"))
        assert tuple_independent_relations(db) == {"R"}

    def test_shared_variable_breaks_independence(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg)
        reg.bernoulli("x", 0.5)
        t1 = db.create_table("R", ["a"])
        t1.add((1,), Var("x"))
        t2 = db.create_table("S", ["b"])
        t2.add((2,), Var("x"))
        assert tuple_independent_relations(db) == set()

    def test_composite_annotation_breaks_independence(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg)
        reg.bernoulli("x", 0.5)
        reg.bernoulli("y", 0.5)
        table = db.create_table("R", ["a"])
        table.add((1,), Var("x") * Var("y"))
        assert tuple_independent_relations(db) == set()
