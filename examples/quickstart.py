"""Quickstart: probabilistic aggregation in five minutes.

A tiny product catalogue where each item's availability is uncertain.
We ask: what is the distribution of the total price of available items,
and what is the probability that the cheapest available item costs at
most 100?  Everything goes through the :func:`repro.connect` session
facade — one front door, three engines behind it.

Run with::

    python examples/quickstart.py
"""

import warnings

from repro import cmp_, connect, lit, min_, sum_


def main():
    # 1. Open a session and define a tuple-independent probabilistic
    #    table; insert(p=...) auto-mints one Bernoulli variable per row.
    s = connect(seed=7)
    items = s.table("items", ["name", "category", "price"])
    catalogue = [
        ("inkjet printer", "printer", 99, 0.7),
        ("laser printer", "printer", 349, 0.4),
        ("ultrabook", "laptop", 1199, 0.8),
        ("netbook", "laptop", 249, 0.9),
        ("workstation", "laptop", 1999, 0.2),
    ]
    for name, category, price, probability in catalogue:
        items.insert((name, category, price), p=probability)

    # 2. SUM aggregate: distribution of the total price of available items.
    result = items.agg(total=sum_("price")).run(engine="sprout")
    row = result.rows[0]
    print("Distribution of SUM(price) over available items:")
    for value, probability in sorted(row.value_distribution("total").items()):
        print(f"  total = {value:>5}:  {probability:.4f}")

    # 3. Per-category MIN with a threshold, built fluently: which
    #    categories offer an available item for at most 300?
    affordable = (
        items.group_by("category")
        .agg(cheapest=min_("price"))
        .where(cmp_("cheapest", "<=", lit(300)))
        .select("category")
    )

    # 4. The same query through all three engines — one QueryResult type.
    print(f"\nClassification: {affordable.classify()!r}")
    print("P(category has an available item ≤ 300), per engine:")
    results = {
        engine: affordable.run(engine=engine, **option)
        for engine, option in [
            ("sprout", {}),
            ("naive", {}),
            ("montecarlo", {"samples": 4000}),
        ]
    }
    for engine, result in results.items():
        answers = ", ".join(
            f"{values[0]}: {p:.4f}"
            for values, p in sorted(result.tuple_probabilities().items())
        )
        print(f"  {result.engine:<11} {answers}")

    # The two exact engines agree to within numerical noise.
    exact = results["sprout"].tuple_probabilities()
    oracle = results["naive"].tuple_probabilities()
    assert set(exact) == set(oracle)
    assert all(abs(exact[key] - oracle[key]) < 1e-9 for key in oracle)
    print("  (sprout and naive agree to 1e-9)")

    # 5. engine="auto" dispatches on tractability: the affordable query is
    #    provably in Q_ind, so it compiles exactly; a query repeating a
    #    base relation falls outside the analysis and falls back to
    #    Monte-Carlo sampling (with a warning).
    print("\nAutomatic engine selection:")
    auto = affordable.run(engine="auto")
    print(f"  tractable query  -> engine={auto.engine!r}")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        hard = s.sql(
            "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        )
    print(f"  self-join query  -> engine={hard.engine!r} (sampled fallback)")

    # 6. Peek under the hood: the symbolic annotation and its d-tree.
    table = s.rewrite(affordable)
    first = table.rows[0]
    print(f"\nSymbolic annotation of {first.values}:")
    print(f"  Φ = {first.annotation!r}")
    print("Decomposition tree:")
    print(s.compiler.compile(first.annotation).pretty("  "))


if __name__ == "__main__":
    main()
