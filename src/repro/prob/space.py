"""The induced probability space and brute-force world enumeration.

Definition 1 of the paper: a finite set ``X`` of independent random
variables induces the probability space over all mappings ``ν : X → S``
with ``Pr(ν) = Π_x P_x[ν(x)]``.  This module materialises that space by
explicit enumeration — exponential in ``|X|`` and therefore only suitable
for small instances, but *exact*, which makes it the ground-truth oracle
against which every compiled distribution in the test suite is verified.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.algebra.expressions import Expr, variables_of
from repro.algebra.semiring import Semiring
from repro.algebra.valuation import Valuation
from repro.errors import WorldEnumerationError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

__all__ = ["ProbabilitySpace", "MAX_ENUMERABLE_WORLDS"]

#: Safety limit on the number of worlds the brute-force oracle will visit.
MAX_ENUMERABLE_WORLDS = 2_000_000


class ProbabilitySpace:
    """The probability space induced by a variable registry (Definition 1).

    >>> from repro.prob.variables import VariableRegistry
    >>> from repro.algebra import Var, BOOLEAN
    >>> reg = VariableRegistry()
    >>> _ = reg.bernoulli("x", 0.5)
    >>> _ = reg.bernoulli("y", 0.5)
    >>> space = ProbabilitySpace(reg, BOOLEAN)
    >>> space.distribution_of(Var("x") * Var("y"))[True]
    0.25
    """

    def __init__(self, registry: VariableRegistry, semiring: Semiring):
        self.registry = registry
        self.semiring = semiring

    def world_count(self, names: Sequence[str] | None = None) -> int:
        """Number of valuations over ``names`` (default: all variables)."""
        names = self.registry.names() if names is None else list(names)
        count = 1
        for name in names:
            count *= len(self.registry[name])
        return count

    def enumerate_worlds(
        self, names: Sequence[str] | None = None
    ) -> Iterator[tuple[Valuation, float]]:
        """Yield every valuation with its probability ``Pr(ν)``.

        Restricting to ``names`` marginalises out the other variables,
        which is sound because the variables are independent.
        """
        names = self.registry.names() if names is None else sorted(names)
        count = self.world_count(names)
        if count > MAX_ENUMERABLE_WORLDS:
            raise WorldEnumerationError(
                f"{count} worlds exceed the enumeration limit of "
                f"{MAX_ENUMERABLE_WORLDS}; use compilation instead"
            )
        supports = [sorted(self.registry[n].items(), key=lambda kv: repr(kv[0]))
                    for n in names]
        for combo in itertools.product(*supports):
            prob = 1.0
            assignment = {}
            for name, (value, p) in zip(names, combo):
                prob *= p
                assignment[name] = value
            yield Valuation(assignment, self.semiring), prob

    def distribution_of(self, expr: Expr) -> Distribution:
        """Exact distribution of an expression by world enumeration (Eq. 3)."""
        accum: dict = {}
        for valuation, prob in self.enumerate_worlds(sorted(expr.variables)):
            value = valuation(expr)
            accum[value] = accum.get(value, 0.0) + prob
        return Distribution(accum)

    def joint_distribution_of(self, exprs: Iterable[Expr]) -> Distribution:
        """Exact joint distribution of several expressions, as value tuples."""
        exprs = list(exprs)
        names = sorted(variables_of(exprs))
        accum: dict = {}
        for valuation, prob in self.enumerate_worlds(names):
            values = tuple(valuation(e) for e in exprs)
            accum[values] = accum.get(values, 0.0) + prob
        return Distribution(accum)

    def probability(self, expr: Expr, value=None) -> float:
        """Probability that ``expr`` evaluates to ``value``.

        With the default ``value=None``, returns the probability of the
        semiring's ``1_S`` — i.e. "the tuple is present" under set
        semantics.
        """
        if value is None:
            value = self.semiring.one
        return self.distribution_of(expr)[value]

    def __repr__(self):
        return (
            f"ProbabilitySpace({len(self.registry)} variables, "
            f"semiring {self.semiring.name})"
        )
