"""Experiment workloads: Eq.-11 random expressions and TPC-H data/queries."""

from repro.workloads.random_expr import (
    ExprParams,
    generate_condition,
    generate_workload,
)

__all__ = ["ExprParams", "generate_condition", "generate_workload"]
