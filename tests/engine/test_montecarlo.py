"""Tests for the Monte-Carlo sampling baseline."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import AggSpec, GroupAgg, Project, Select, relation
from repro.query.predicates import cmp_


def simple_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "v"])
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.3)
    r.add((1, 10), Var("x"))
    r.add((1, 20), Var("y"))
    return db


class TestEstimation:
    def test_seeded_runs_are_reproducible(self):
        db = simple_db()
        e1 = MonteCarloEngine(db, seed=7).tuple_probabilities(relation("R"), 200)
        e2 = MonteCarloEngine(db, seed=7).tuple_probabilities(relation("R"), 200)
        assert e1 == e2

    def test_estimates_converge_to_exact(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        exact = NaiveEngine(db).tuple_probabilities(query)
        estimate = MonteCarloEngine(db, seed=3).tuple_probabilities(query, 5000)
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.03)

    def test_having_query(self):
        db = simple_db()
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MAX", "v")])
        query = Project(Select(agg, cmp_("m", "<=", 15)), ["a"])
        exact = NaiveEngine(db).tuple_probabilities(query)
        p = MonteCarloEngine(db, seed=11).estimate_probability(query, (1,), 5000)
        assert p == pytest.approx(exact[(1,)], abs=0.03)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloEngine(simple_db()).tuple_probabilities(relation("R"), 0)

    def test_sample_valuation_covers_all_variables(self):
        db = simple_db()
        valuation = MonteCarloEngine(db, seed=1).sample_valuation()
        assert "x" in valuation and "y" in valuation
