"""The query language ``Q``: positive relational algebra with aggregation.

Definition 5 of the paper: queries built from the operators

* ``δ_{B←A}`` (:class:`Extend`) — duplicate attribute A under a new name B,
* ``σ_φ`` (:class:`Select`),
* ``π_{A̅}`` (:class:`Project`),
* ``×`` (:class:`Product`),
* ``∪`` (:class:`Union`),
* ``$_{A̅; α₁←AGG₁(B₁), ...}`` (:class:`GroupAgg`) — grouping/aggregation,

subject to the constraint that projection, union and grouping are never
applied to aggregation attributes.  Output schemas (with aggregation-
attribute markings) are computed against a catalog of base-table schemas;
the Definition-5 constraints are enforced by
:mod:`repro.query.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.algebra.monoid import COUNT, Monoid, monoid_by_name
from repro.db.schema import Schema
from repro.errors import QueryValidationError, SchemaError
from repro.query.predicates import Predicate, conj, eq

__all__ = [
    "Query",
    "BaseRelation",
    "Extend",
    "Select",
    "Project",
    "Product",
    "Union",
    "GroupAgg",
    "AggSpec",
    "relation",
    "product_of",
    "equijoin",
]


class Query:
    """Base class of query-algebra nodes."""

    #: Child queries, for generic tree walks.
    children: tuple = ()

    def schema(self, catalog: Mapping[str, Schema]) -> Schema:
        """The output schema against a catalog of base-table schemas."""
        raise NotImplementedError

    def walk(self) -> Iterator["Query"]:
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def base_relations(self) -> list[str]:
        """The names of base relations, in occurrence order."""
        return [node.name for node in self.walk() if isinstance(node, BaseRelation)]

    def is_non_repeating(self) -> bool:
        """True if every base relation occurs at most once (Section 6)."""
        names = self.base_relations()
        return len(names) == len(set(names))


@dataclass(frozen=True)
class BaseRelation(Query):
    """A reference to a stored pvc-table."""

    name: str

    def schema(self, catalog):
        try:
            return catalog[self.name]
        except KeyError:
            raise QueryValidationError(
                f"query references unknown relation {self.name!r}"
            ) from None

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Extend(Query):
    """``δ_{B←A}``: append a copy of attribute ``source`` named ``target``."""

    child: Query
    target: str
    source: str

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def schema(self, catalog):
        child_schema = self.child.schema(catalog)
        child_schema.index(self.source)
        return child_schema.extend(
            self.target, aggregation=child_schema.is_aggregation(self.source)
        )

    def __repr__(self):
        return f"δ[{self.target}←{self.source}]({self.child!r})"


@dataclass(frozen=True)
class Select(Query):
    """``σ_φ``: selection by a conjunctive predicate."""

    child: Query
    predicate: Predicate

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def schema(self, catalog):
        child_schema = self.child.schema(catalog)
        for attribute in self.predicate.attributes():
            child_schema.index(attribute)
        return child_schema

    def __repr__(self):
        return f"σ[{self.predicate!r}]({self.child!r})"


@dataclass(frozen=True)
class Project(Query):
    """``π_{A̅}``: projection onto ``attributes`` (duplicates merge)."""

    child: Query
    attributes: tuple

    def __init__(self, child: Query, attributes: Sequence[str]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "children", (child,))

    def schema(self, catalog):
        return self.child.schema(catalog).project(self.attributes)

    def __repr__(self):
        return f"π[{', '.join(self.attributes)}]({self.child!r})"


@dataclass(frozen=True)
class Product(Query):
    """``×``: cartesian product (attribute names must be disjoint)."""

    left: Query
    right: Query

    def __post_init__(self):
        object.__setattr__(self, "children", (self.left, self.right))

    def schema(self, catalog):
        return self.left.schema(catalog).concat(self.right.schema(catalog))

    def __repr__(self):
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True)
class Union(Query):
    """``∪``: union of compatible relations (annotations add)."""

    left: Query
    right: Query

    def __post_init__(self):
        object.__setattr__(self, "children", (self.left, self.right))

    def schema(self, catalog):
        left_schema = self.left.schema(catalog)
        right_schema = self.right.schema(catalog)
        if left_schema.attributes != right_schema.attributes:
            raise SchemaError(
                f"union of incompatible schemas {left_schema!r} and "
                f"{right_schema!r}"
            )
        return Schema(
            left_schema.attributes,
            left_schema.aggregation_attributes
            | right_schema.aggregation_attributes,
        )

    def __repr__(self):
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True)
class AggSpec:
    """One aggregation of a ``$`` operator: ``output ← AGG(attribute)``.

    For COUNT the input ``attribute`` is ``None`` (each tuple counts 1).
    """

    output: str
    monoid: Monoid
    attribute: str | None

    @classmethod
    def of(cls, output: str, agg: str | Monoid, attribute: str | None = None):
        monoid = monoid_by_name(agg) if isinstance(agg, str) else agg
        if attribute is None and monoid != COUNT:
            raise QueryValidationError(
                f"aggregation {monoid.name} requires an input attribute"
            )
        return cls(output, monoid, attribute)

    def __repr__(self):
        inner = "*" if self.attribute is None else self.attribute
        return f"{self.output}←{self.monoid.name}({inner})"


@dataclass(frozen=True)
class GroupAgg(Query):
    """``$_{A̅; α₁←AGG₁(B₁), ...}``: grouping with aggregation."""

    child: Query
    groupby: tuple
    aggregations: tuple

    def __init__(
        self,
        child: Query,
        groupby: Sequence[str],
        aggregations: Sequence[AggSpec],
    ):
        if not aggregations:
            raise QueryValidationError("$ operator needs at least one aggregation")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "groupby", tuple(groupby))
        object.__setattr__(self, "aggregations", tuple(aggregations))
        object.__setattr__(self, "children", (child,))

    def schema(self, catalog):
        child_schema = self.child.schema(catalog)
        for attribute in self.groupby:
            child_schema.index(attribute)
        for spec in self.aggregations:
            if spec.attribute is not None:
                child_schema.index(spec.attribute)
        names = self.groupby + tuple(spec.output for spec in self.aggregations)
        return Schema(names, [spec.output for spec in self.aggregations])

    def __repr__(self):
        aggs = ", ".join(map(repr, self.aggregations))
        groupby = ", ".join(self.groupby) if self.groupby else "∅"
        return f"$[{groupby}; {aggs}]({self.child!r})"


def relation(name: str) -> BaseRelation:
    """Shorthand for a base-relation reference."""
    return BaseRelation(name)


def product_of(*queries: Query) -> Query:
    """Left-deep product of several queries."""
    if not queries:
        raise QueryValidationError("product of no relations")
    result = queries[0]
    for query in queries[1:]:
        result = Product(result, query)
    return result


def equijoin(left: Query, right: Query, pairs: Sequence[tuple[str, str]]) -> Query:
    """``left ⋈ right`` on attribute-equality pairs (sugar for σ(×))."""
    return Select(
        Product(left, right), conj(*(eq(a, b) for a, b in pairs))
    )
