"""``python -m repro.server`` — run the query server from the shell.

Serves the deterministic demo database by default (``--scale`` sizes
it); every operational knob of :class:`~repro.server.app.ServerConfig`
is a flag.  Example::

    python -m repro.server --port 8642 --threads 4 --soft-limit 8

then, from another shell::

    printf '{"op": "query", "sql": "SELECT kind FROM R"}\\n' | nc 127.0.0.1 8643
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.server.app import QueryServer, ServerConfig
from repro.server.bootstrap import demo_database


def build_parser() -> argparse.ArgumentParser:
    defaults = ServerConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description=(
            "Serve a probabilistic database over HTTP (POST /query, "
            "GET /stats, GET /healthz) and a line-JSON TCP protocol "
            "with anytime streaming."
        ),
    )
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port,
        help=f"HTTP port (default {defaults.port}; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--tcp-port", type=int, default=None,
        help="TCP line-protocol port (default: HTTP port + 1)",
    )
    parser.add_argument(
        "--threads", type=int, default=defaults.threads,
        help="executor threads for blocking compile/eval work",
    )
    parser.add_argument(
        "--statement-cache", type=int, default=defaults.statement_cache_size,
        metavar="N", help="prepared-statement cache entries",
    )
    parser.add_argument(
        "--plan-cache", type=int, default=defaults.plan_cache_size,
        metavar="N", help="physical-plan cache entries",
    )
    parser.add_argument(
        "--distribution-cache", type=int,
        default=defaults.distribution_cache_size,
        metavar="N", help="compiled-distribution cache entries",
    )
    parser.add_argument(
        "--soft-limit", type=int, default=defaults.soft_limit,
        help="concurrent requests beyond which specs degrade to anytime mode",
    )
    parser.add_argument(
        "--hard-limit", type=int, default=defaults.hard_limit,
        help="concurrent requests beyond which requests are shed (503)",
    )
    parser.add_argument(
        "--max-tenants", type=int, default=defaults.max_tenants,
        help="bound on per-tenant sessions (LRU-evicts idle tenants)",
    )
    parser.add_argument(
        "--shed-epsilon", type=float, default=defaults.shed_epsilon,
        help="target interval width of degraded requests",
    )
    parser.add_argument(
        "--shed-budget", type=int, default=defaults.shed_budget,
        help="work budget (expansions/samples) of degraded requests",
    )
    parser.add_argument(
        "--shed-time-limit", type=float, default=defaults.shed_time_limit,
        help="wall-clock cap in seconds of degraded requests",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=defaults.drain_timeout,
        help="seconds to let in-flight requests finish on SIGTERM/SIGINT "
        "(new arrivals are shed with 503 during the drain)",
    )
    parser.add_argument(
        "--engine", default=defaults.default_engine,
        help="default engine of tenant sessions (auto/sprout/approx/"
        "naive/montecarlo)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="Monte-Carlo seed of tenant sessions",
    )
    parser.add_argument(
        "--scale", type=int, default=1,
        help="size multiplier of the demo database",
    )
    return parser


async def _serve(args) -> None:
    config = ServerConfig(
        host=args.host,
        port=args.port,
        tcp_port=args.tcp_port,
        threads=args.threads,
        statement_cache_size=args.statement_cache,
        plan_cache_size=args.plan_cache,
        distribution_cache_size=args.distribution_cache,
        soft_limit=args.soft_limit,
        hard_limit=args.hard_limit,
        max_tenants=args.max_tenants,
        shed_epsilon=args.shed_epsilon,
        shed_budget=args.shed_budget,
        shed_time_limit=args.shed_time_limit,
        drain_timeout=args.drain_timeout,
        default_engine=args.engine,
        seed=args.seed,
    )
    server = QueryServer(demo_database(scale=args.scale), config)
    await server.start()
    http_host, http_port = server.http_address
    tcp_host, tcp_port = server.tcp_address
    print(f"repro query server: http://{http_host}:{http_port} "
          f"(POST /query, GET /stats, GET /healthz)")
    print(f"                    tcp://{tcp_host}:{tcp_port} "
          f"(line-JSON: ping/stats/query/stream)")
    print(f"database: {server.db!r}")

    # Graceful shutdown: SIGTERM/SIGINT flip an event instead of killing
    # the loop mid-request; stop() then drains — new arrivals shed with
    # 503 + Retry-After, admitted work gets up to --drain-timeout.
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    installed: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_requested.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal support (e.g. Windows
            # proactor) fall back to the KeyboardInterrupt path in main.
            pass
    serve_task = asyncio.ensure_future(server.serve_forever())
    stop_task = asyncio.ensure_future(stop_requested.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop_requested.is_set():
            print(f"\nsignal received: draining for up to "
                  f"{config.drain_timeout:g}s ...")
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()
        print("server stopped")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with contextlib.suppress(asyncio.CancelledError):
            asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
