"""Multi-core execution: worker-count sweeps over the two cost centers.

Measures the ``workers`` knob on the paper's two expensive phases:

* **MC-heavy** — a grouped-SUM query over a database with conjunctive
  annotations, which forces Monte-Carlo onto the generic per-world
  evaluation path; worlds are drawn and evaluated in deterministic
  shards that spread across the process pool.  Also sweeps the
  sequential-stopping (ε, δ) interval path, whose doubling rounds shard
  the same way.
* **Compilation-heavy** — an Experiment-A-style ``HAVING SUM(v) >= c``
  query: every group's answer annotation is an aggregation comparison
  over its own variable pool (clause structure mimicking join
  provenance), so step II compiles one hard, independent d-tree per
  group; the sprout engine fans those compilations out per chunk.

Every point *asserts serial/parallel answer identity* before recording a
time — a conformance failure fails the benchmark (and the CI smoke leg)
loudly.  Speedups are relative to ``workers=1`` (the sharded scheme run
inline).  Note the machine matters: on a single-core container the pool
can only add overhead; the committed reference JSON records the
``cpu_count`` it was measured on.

Flags: ``--smoke`` (trimmed sweep for CI), ``--workers N`` (cap the
sweep), ``--json PATH``, ``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import random
import statistics
import sys
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro.algebra.expressions import Var, sprod, ssum
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.sprout import SproutEngine
from repro.parallel import resolve_workers
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Project,
    Select,
    product_of,
    relation,
)
from repro.query.predicates import cmp_, eq


def _cpu_count() -> int:
    # The same resolution the engines use for workers="auto".
    return resolve_workers("auto")


def worker_sweep(argv=None) -> list[int]:
    """``[1, 2, 4]`` capped by ``--workers N`` (and ``[1, 2]`` in smoke)."""
    args = sys.argv[1:] if argv is None else argv
    cap = None
    for index, arg in enumerate(args):
        if arg == "--workers" and index + 1 < len(args):
            cap = int(args[index + 1])
        elif arg.startswith("--workers="):
            cap = int(arg.split("=", 1)[1])
    sweep = [1, 2] if smoke_mode(argv) else [1, 2, 4]
    if cap is not None:
        sweep = [w for w in sweep if w <= cap] or [cap]
    return sweep


# -- workloads ----------------------------------------------------------------


def build_mc_hard_database(rows: int, groups: int = 4, seed: int = 0):
    """Conjunctively annotated fact table: the per-world MC path."""
    rng = random.Random(seed)
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    table = db.create_table("R", ["a", "v"])
    for i in range(rows):
        x, y = f"r{i}", f"q{i}"
        registry.bernoulli(x, 0.5)
        registry.bernoulli(y, 0.6)
        table.add((i % groups, rng.randint(0, 50)), Var(x) * Var(y))
    return db


def mc_hard_query():
    return GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])


def build_mc_join_database(rows: int, dim_rows: int = 50, seed: int = 0):
    """A conjunctively annotated fact table plus a certain dimension.

    The conjunctions force Monte-Carlo onto the per-world path (the
    vectorized batch evaluator requires single-variable annotations) and
    the join makes per-world evaluation the cost center: the compiled
    kernel hoists the deterministic dimension — instantiation and hash
    index — out of the world loop entirely, while the interpreter
    rebuilds the world's relations every time.
    """
    rng = random.Random(seed)
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    fact = db.create_table("fact", ["k", "v"])
    for i in range(rows):
        x, y = f"r{i}", f"q{i}"
        registry.bernoulli(x, 0.5)
        registry.bernoulli(y, 0.6)
        fact.add(
            (rng.randrange(dim_rows), rng.randint(0, 50)), Var(x) * Var(y)
        )
    dim = db.create_table("dim", ["dk", "cat"])
    for k in range(dim_rows):
        dim.add((k, k % 5))
    return db


def mc_join_query():
    return GroupAgg(
        Project(
            Select(
                product_of(relation("fact"), relation("dim")), eq("k", "dk")
            ),
            ["cat", "v"],
        ),
        ["cat"],
        [AggSpec.of("t", "SUM", "v")],
    )


def build_compile_database(
    groups: int, terms: int, variables: int, seed: int = 0
):
    """Experiment-A-style groups: independent variable pool per group,
    each row annotated with a 2-clause product of disjunctions (the
    provenance shape of a 2-way join with projection alternatives)."""
    rng = random.Random(seed)
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    table = db.create_table("R", ["g", "v"])
    for g in range(groups):
        names = [f"g{g}v{i}" for i in range(variables)]
        for name in names:
            registry.bernoulli(name, 0.5)
        for _ in range(terms):
            phi = sprod(
                ssum(Var(name) for name in rng.sample(names, 2))
                for _ in range(2)
            )
            table.add((g, rng.randint(0, 30)), phi)
    return db


def compile_query(threshold: int):
    agg = GroupAgg(relation("R"), ["g"], [AggSpec.of("total", "SUM", "v")])
    return Project(Select(agg, cmp_("total", ">=", threshold)), ["g"])


# -- measurement --------------------------------------------------------------


def _fingerprint_rows(result):
    return [
        (row.values, row.probability().low, row.probability().high)
        for row in result.rows
    ]


def measure_mc_fixed(db, query, samples, workers, runs, seed=1):
    times, fingerprint = [], None
    for run in range(runs):
        engine = MonteCarloEngine(db, seed=seed)
        start = time.perf_counter()
        estimate = engine.tuple_probabilities(query, samples, workers=workers)
        times.append(time.perf_counter() - start)
        fingerprint = sorted(estimate.items(), key=lambda kv: repr(kv[0]))
        assert "parallel_fallback" not in engine.last_run_info, (
            engine.last_run_info
        )
    return times, fingerprint


def measure_mc_codegen(db, query, samples, codegen, runs, seed=1):
    """Fixed-budget MC on the per-world path with codegen forced on/off.

    Serial (``workers=None``) so the measured difference is purely the
    per-world evaluator: interpreted instantiate-and-execute vs the bound
    fused kernel.  Returns the times and the answer fingerprint — the
    caller asserts the two evaluators estimate identically.
    """
    times, fingerprint = [], None
    for run in range(runs):
        engine = MonteCarloEngine(db, seed=seed, codegen=codegen)
        start = time.perf_counter()
        estimate = engine.tuple_probabilities(query, samples)
        times.append(time.perf_counter() - start)
        fingerprint = sorted(estimate.items(), key=lambda kv: repr(kv[0]))
        assert engine.last_run_info.get("codegen_used", False) is codegen, (
            engine.last_run_info
        )
    return times, fingerprint


def measure_mc_sequential(db, query, epsilon, workers, runs, seed=1):
    times, fingerprint = [], None
    for run in range(runs):
        engine = MonteCarloEngine(db, seed=seed)
        start = time.perf_counter()
        intervals, info = engine.estimate_intervals(
            query, epsilon=epsilon, workers=workers
        )
        times.append(time.perf_counter() - start)
        fingerprint = sorted(
            ((key, i.low, i.high) for key, i in intervals.items()),
            key=repr,
        ) + [info["samples"]]
        assert "parallel_fallback" not in info, info
    return times, fingerprint


def measure_compile(db, query, workers, runs):
    times, fingerprint = [], None
    for run in range(runs):
        engine = SproutEngine(db)  # fresh: no memo reuse across runs
        start = time.perf_counter()
        result = engine.run(query, workers=workers)
        times.append(time.perf_counter() - start)
        fingerprint = _fingerprint_rows(result)
        assert result.stats.get("parallel_fallback") is None, result.stats
    return times, fingerprint


def sweep(report, series, params, measure, sweep_workers):
    """Measure one workload across the worker sweep, asserting that every
    worker count reproduces the ``workers=1`` answer exactly."""
    rows = []
    serial_mean, reference = None, None
    for workers in sweep_workers:
        times, fingerprint = measure(workers)
        mean = statistics.mean(times)
        stdev = statistics.stdev(times) if len(times) > 1 else 0.0
        if reference is None:
            serial_mean, reference = mean, fingerprint
        elif fingerprint != reference:
            raise AssertionError(
                f"{series}: workers={workers} diverged from serial answers"
            )
        speedup = serial_mean / mean if mean > 0 else 0.0
        report.add(
            series,
            {**params, "workers": workers},
            mean=round(mean, 6),
            stdev=round(stdev, 6),
            speedup_vs_serial=round(speedup, 3),
        )
        rows.append((workers, f"{mean * 1e3:.1f}", f"{speedup:.2f}x"))
    return rows


def main() -> None:
    smoke = smoke_mode()
    workers = worker_sweep()
    runs = 1 if smoke else 3
    cpus = _cpu_count()

    report = BenchReport(
        "parallel",
        smoke=smoke,
        runs=runs,
        worker_sweep=workers,
        cpu_count=cpus,
    )
    print(
        f"worker sweep {workers} on {cpus} usable CPU(s)"
        + (" [smoke]" if smoke else "")
    )
    if cpus < max(workers):
        print(
            "note: fewer CPUs than workers — expect pool overhead, "
            "not speedup; the answers must still be identical"
        )

    # MC-heavy: fixed-budget estimation on the per-world path.
    mc_rows, mc_samples = (16, 1200) if smoke else (30, 6000)
    db = build_mc_hard_database(rows=mc_rows)
    query = mc_hard_query()
    rows = sweep(
        report,
        "mc_per_world",
        {"rows": mc_rows, "samples": mc_samples},
        lambda w: measure_mc_fixed(db, query, mc_samples, w, runs),
        workers,
    )
    print_series(
        f"MC-heavy fixed budget ({mc_samples} worlds, per-world path)",
        ["workers", "mean_ms", "speedup"],
        rows,
    )

    # MC sequential stopping: the interval path shards every round.
    epsilon = 0.08 if smoke else 0.04
    rows = sweep(
        report,
        "mc_sequential",
        {"rows": mc_rows, "epsilon": epsilon},
        lambda w: measure_mc_sequential(db, query, epsilon, w, runs),
        workers,
    )
    print_series(
        f"MC sequential stopping (eps={epsilon})",
        ["workers", "mean_ms", "speedup"],
        rows,
    )

    # Compilation-heavy: one hard d-tree per group, fanned out per chunk.
    groups, terms, variables = (4, 10, 8) if smoke else (8, 25, 14)
    db = build_compile_database(groups, terms, variables)
    query = compile_query(120)
    rows = sweep(
        report,
        "compile_groups",
        {"groups": groups, "terms": terms, "variables": variables},
        lambda w: measure_compile(db, query, w, runs),
        workers,
    )
    print_series(
        f"Compilation-heavy HAVING sweep ({groups} groups)",
        ["workers", "mean_ms", "speedup"],
        rows,
    )

    # Codegen on/off on the serial per-world MC path: same drawn worlds,
    # different evaluator — the answers must be bit-identical.  A join
    # workload, so per-world evaluation (not world sampling, which both
    # evaluators share) dominates the wall-clock.
    cg_mc_rows, cg_samples = (12, 800) if smoke else (40, 4000)
    db = build_mc_join_database(rows=cg_mc_rows)
    query = mc_join_query()
    cg_rows = []
    reference, interp_mean = None, None
    for codegen in (False, True):
        times, fingerprint = measure_mc_codegen(
            db, query, cg_samples, codegen, runs
        )
        mean = statistics.mean(times)
        stdev = statistics.stdev(times) if len(times) > 1 else 0.0
        if reference is None:
            interp_mean, reference = mean, fingerprint
        elif fingerprint != reference:
            raise AssertionError(
                "mc_codegen: compiled estimates diverged from interpreted"
            )
        speedup = interp_mean / mean if mean > 0 else 0.0
        report.add(
            "mc_codegen",
            {"rows": cg_mc_rows, "samples": cg_samples, "codegen": codegen},
            mean=round(mean, 6),
            stdev=round(stdev, 6),
            speedup_vs_interpreter=round(speedup, 3),
        )
        cg_rows.append(
            ("on" if codegen else "off", f"{mean * 1e3:.1f}", f"{speedup:.2f}x")
        )
    print_series(
        f"MC per-world evaluator — codegen off vs on ({cg_samples} worlds, serial)",
        ["codegen", "mean_ms", "speedup"],
        cg_rows,
    )

    report.finish()


if __name__ == "__main__":
    main()
