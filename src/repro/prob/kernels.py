"""Vectorized convolution kernels — an *optional* numpy accelerator.

:meth:`Distribution.convolve` is the hot path of the whole exact engine:
every ``⊕``/``⊙``/``⊕M`` d-tree node convolves the distributions of its
children, and for SUM/COUNT aggregations the supports grow to hundreds of
values.  When the supports are numeric and the combining operation is a
recognized arithmetic (``+``, ``*``, ``min``, ``max``, a saturating capped
sum, or a comparison), the O(|Φ|·|Ψ|) support-pair sum of Proposition 1
can be evaluated as an outer product over value/probability arrays and
re-binned with ``np.unique`` + ``np.bincount``.

Everything in this module is **optional**: numpy is imported lazily, every
entry point returns ``None`` when it does not apply (non-numeric supports,
unrecognized operation, numpy missing or disabled), and callers fall back
to the generic dict-loop path.  The environment variable
``REPRO_DISABLE_NUMPY=1`` (or :func:`set_numpy_enabled`) forces the pure
Python path, which CI exercises explicitly; the parity test suite asserts
the two paths agree to 1e-12.

The kernels work on raw ``{value: probability}`` dicts rather than
:class:`~repro.prob.distribution.Distribution` objects so that this module
never imports :mod:`repro.prob.distribution` (which imports us for its
fast paths).

Exactness notes
---------------
* Values participate in float64 arithmetic.  Integer supports are kept
  exact by refusing the kernel when a combining operation could exceed
  2**52 in magnitude, and integer-valued results are converted back to
  Python ints whenever every finite input value was an int — so kernel
  results are *identical* (not just close) to the dict path's support.
* Probabilities are accumulated by ``np.bincount``; the summation order
  differs from the dict path, so probabilities agree only up to float
  rounding (well below the 1e-9 tolerance used everywhere else).
"""

from __future__ import annotations

import heapq
import math
import operator
import os
from typing import Callable, Iterable

from repro.algebra.monoid import (
    CappedSumMonoid,
    MaxMonoid,
    MinMonoid,
    Monoid,
    ProdMonoid,
    SumMonoid,
)
from repro.algebra.semiring import NaturalsSemiring, Semiring

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "numpy_available",
    "numpy_enabled",
    "set_numpy_enabled",
    "resolve_op",
    "monoid_op",
    "semiring_add_op",
    "semiring_mul_op",
    "convolve_dicts",
    "mixture_dicts",
    "comparison_mass",
    "expectation",
    "bin_images",
    "convolve_many",
    "MIN_CELLS",
]

#: Below this many support pairs the dict loop beats the numpy overhead.
MIN_CELLS = 64

#: Magnitude guard keeping integer arithmetic exact in float64.
_EXACT_INT_BOUND = 2**52

_enabled = _np is not None and os.environ.get("REPRO_DISABLE_NUMPY", "") not in (
    "1",
    "true",
    "True",
)


def numpy_available() -> bool:
    """True when numpy is importable in this interpreter."""
    return _np is not None


def numpy_enabled() -> bool:
    """True when the vectorized kernels are active."""
    return _enabled


def set_numpy_enabled(flag: bool) -> bool:
    """Toggle the kernels (no-op without numpy); returns the old setting.

    The parity tests flip this to compare the two implementations inside
    one process.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag) and _np is not None
    return previous


class OpSpec:
    """A recognized binary operation on numeric supports.

    ``array_fn`` evaluates the operation on broadcast numpy arrays;
    ``kind`` ∈ {"add", "mul", "select"} drives the exactness guards
    ("select" operations like min/max never create new values).
    """

    __slots__ = ("array_fn", "kind")

    def __init__(self, array_fn: Callable, kind: str):
        self.array_fn = array_fn
        self.kind = kind


def _specs():
    add = OpSpec(lambda a, b: _np.add(a, b), "add")
    mul = OpSpec(lambda a, b: _np.multiply(a, b), "mul")
    vmin = OpSpec(lambda a, b: _np.minimum(a, b), "select")
    vmax = OpSpec(lambda a, b: _np.maximum(a, b), "select")
    return add, mul, vmin, vmax


if _np is not None:
    _ADD, _MUL, _MIN, _MAX = _specs()
else:  # placeholders; every entry point checks numpy_enabled() first
    _ADD = _MUL = _MIN = _MAX = None

_CALLABLE_SPECS: dict = {}
if _np is not None:
    _CALLABLE_SPECS = {
        operator.add: _ADD,
        operator.mul: _MUL,
        min: _MIN,
        max: _MAX,
    }


def _capped_add_spec(cap) -> OpSpec:
    return OpSpec(lambda a, b: _np.minimum(_np.add(a, b), cap), "add")


def monoid_op(monoid: Monoid) -> OpSpec | None:
    """The kernel spec of a monoid's addition, if recognized."""
    if not _enabled:
        return None
    if isinstance(monoid, CappedSumMonoid):
        return _capped_add_spec(monoid.cap)
    if isinstance(monoid, SumMonoid):  # covers COUNT
        return _ADD
    if isinstance(monoid, MinMonoid):
        return _MIN
    if isinstance(monoid, MaxMonoid):
        return _MAX
    if isinstance(monoid, ProdMonoid):
        return _MUL
    return None


def semiring_add_op(semiring: Semiring) -> OpSpec | None:
    """The kernel spec of a semiring's addition, if recognized.

    The Boolean semiring is intentionally unrecognized: its supports have
    at most two elements, where the dict loop always wins.
    """
    if _enabled and isinstance(semiring, NaturalsSemiring):
        return _ADD
    return None


def semiring_mul_op(semiring: Semiring) -> OpSpec | None:
    """The kernel spec of a semiring's multiplication, if recognized."""
    if _enabled and isinstance(semiring, NaturalsSemiring):
        return _MUL
    return None


def resolve_op(op: Callable) -> OpSpec | None:
    """Recognize a plain callable as a kernel operation.

    Handles ``operator.add``/``operator.mul``, the ``min``/``max``
    builtins, and bound ``add``/``mul`` methods of the standard monoids
    and semirings — the callables that reach
    :meth:`Distribution.convolve` from the Eq. (4)-(10) wrappers.
    """
    if not _enabled:
        return None
    spec = _CALLABLE_SPECS.get(op)
    if spec is not None:
        return spec
    owner = getattr(op, "__self__", None)
    if owner is None:
        return None
    name = getattr(op, "__name__", "")
    if isinstance(owner, Monoid) and name == "add":
        return monoid_op(owner)
    if isinstance(owner, Semiring):
        if name == "add":
            return semiring_add_op(owner)
        if name == "mul":
            return semiring_mul_op(owner)
    return None


# -- numeric support extraction ----------------------------------------------


def _numeric_support(probs: dict):
    """``(values, probabilities, finite_ints, max_abs, all_finite)`` or
    ``None``.

    Only exact ``int``/``float`` values qualify (``bool`` is excluded:
    Boolean supports belong to the dict path).  ``finite_ints`` is True
    when every finite value is a Python int, which is what allows the
    kernel to convert integer-valued results back to ints.
    """
    values = []
    weights = []
    finite_ints = True
    all_finite = True
    max_abs = 0.0
    for value, p in probs.items():
        kind = type(value)
        if kind is int:
            if not -_EXACT_INT_BOUND <= value <= _EXACT_INT_BOUND:
                return None  # float64 could not represent it exactly
        elif kind is float:
            if math.isfinite(value):
                finite_ints = False
            else:
                all_finite = False
        else:
            return None
        values.append(value)
        weights.append(p)
        abs_value = abs(value)
        if abs_value > max_abs and not math.isinf(abs_value):
            max_abs = abs_value
    return values, weights, finite_ints, max_abs, all_finite


def _exactness_ok(spec: OpSpec, a, b) -> bool:
    """Would float64 evaluation stay exact on these supports?"""
    if spec.kind == "select":
        return True
    # Combining operations over non-finite values (inf + -inf → nan) are
    # left to the dict loop: np.unique would merge NaN results that the
    # dict path keeps as distinct keys.
    if not (a[4] and b[4]):
        return False
    a_ints, b_ints = a[2], b[2]
    if not (a_ints and b_ints):
        # Float-valued supports: float64 is the dict path's own
        # arithmetic (Python floats are doubles), so nothing is lost.
        return True
    a_max, b_max = a[3], b[3]
    if spec.kind == "add":
        return a_max + b_max <= _EXACT_INT_BOUND
    return a_max * b_max <= _EXACT_INT_BOUND  # "mul"


def _to_python_values(array, finite_ints: bool) -> list:
    """Convert a result array back to the dict path's Python values."""
    raw = array.tolist()
    if not finite_ints:
        return raw
    return [int(v) if math.isfinite(v) else v for v in raw]


# -- kernels ------------------------------------------------------------------


def convolve_dicts(
    probs_a: dict, probs_b: dict, op: Callable, spec: OpSpec | None = None,
    tolerance: float = 0.0,
) -> dict | None:
    """Vectorized Proposition-1 convolution of two support dicts.

    Returns the accumulated ``{op(a, b): Σ p_a·p_b}`` dict with entries of
    mass ≤ ``tolerance`` dropped (mirroring ``Distribution.__init__``), or
    ``None`` when the kernel does not apply.
    """
    if spec is None:
        spec = resolve_op(op)
    if spec is None or not _enabled:
        return None
    if len(probs_a) * len(probs_b) < MIN_CELLS:
        return None
    a = _numeric_support(probs_a)
    if a is None:
        return None
    b = _numeric_support(probs_b)
    if b is None:
        return None
    if not _exactness_ok(spec, a, b):
        return None
    va = _np.asarray(a[0], dtype=float)
    vb = _np.asarray(b[0], dtype=float)
    pa = _np.asarray(a[1], dtype=float)
    pb = _np.asarray(b[1], dtype=float)
    combined = spec.array_fn(va[:, None], vb[None, :]).ravel()
    mass = (pa[:, None] * pb[None, :]).ravel()
    unique, inverse = _np.unique(combined, return_inverse=True)
    accumulated = _np.bincount(inverse.ravel(), weights=mass)
    finite_ints = a[2] and b[2]
    keep = accumulated > tolerance
    values = _to_python_values(unique[keep], finite_ints)
    return dict(zip(values, accumulated[keep].tolist()))


def mixture_dicts(
    weighted: list, tolerance: float = 0.0
) -> dict | None:
    """Vectorized convex mixture ``Σ wᵢ · Dᵢ`` of support dicts.

    ``weighted`` pairs float weights with ``{value: probability}`` dicts.
    Returns ``None`` when any support is non-numeric, the total size is
    too small to be worth it, or numpy is disabled.
    """
    if not _enabled:
        return None
    if sum(len(probs) for _, probs in weighted) < MIN_CELLS:
        return None
    chunks_v = []
    chunks_p = []
    finite_ints = True
    for weight, probs in weighted:
        extracted = _numeric_support(probs)
        if extracted is None:
            return None
        values, masses, ints_ok, _, _ = extracted
        finite_ints = finite_ints and ints_ok
        chunks_v.append(_np.asarray(values, dtype=float))
        chunks_p.append(weight * _np.asarray(masses, dtype=float))
    if not chunks_v:
        return None
    all_values = _np.concatenate(chunks_v)
    all_mass = _np.concatenate(chunks_p)
    unique, inverse = _np.unique(all_values, return_inverse=True)
    accumulated = _np.bincount(inverse.ravel(), weights=all_mass)
    keep = accumulated > tolerance
    values = _to_python_values(unique[keep], finite_ints)
    return dict(zip(values, accumulated[keep].tolist()))


_COMPARE_FNS = {
    "=": "equal",
    "!=": "not_equal",
    "<=": "less_equal",
    ">=": "greater_equal",
    "<": "less",
    ">": "greater",
}


def comparison_mass(probs_l: dict, probs_r: dict, op_symbol: str) -> float | None:
    """``P[X θ Y]`` for independent numeric supports (Eqs. 8/9 core).

    Returns the total probability mass of support pairs satisfying the
    comparison, or ``None`` when the kernel does not apply.
    """
    if not _enabled:
        return None
    fn_name = _COMPARE_FNS.get(op_symbol)
    if fn_name is None:
        return None
    if len(probs_l) * len(probs_r) < MIN_CELLS:
        return None
    l = _numeric_support(probs_l)
    if l is None:
        return None
    r = _numeric_support(probs_r)
    if r is None:
        return None
    vl = _np.asarray(l[0], dtype=float)
    vr = _np.asarray(r[0], dtype=float)
    pl = _np.asarray(l[1], dtype=float)
    pr = _np.asarray(r[1], dtype=float)
    holds = getattr(_np, fn_name)(vl[:, None], vr[None, :])
    mass = pl[:, None] * pr[None, :]
    return float(mass[holds].sum())


def expectation(probs: dict) -> float | None:
    """Vectorized ``Σ v·p`` for numeric supports, or ``None``."""
    if not _enabled or len(probs) < MIN_CELLS:
        return None
    extracted = _numeric_support(probs)
    if extracted is None:
        return None
    values, masses, _, _, _ = extracted
    return float(
        _np.dot(_np.asarray(values, dtype=float), _np.asarray(masses, dtype=float))
    )


def bin_images(
    images: list, masses: list, tolerance: float = 0.0
) -> dict | None:
    """Vectorized re-binning of precomputed push-forward images.

    The caller evaluates its (arbitrary Python) mapping function exactly
    once per support value; numpy only accelerates the accumulation of
    collisions, which is the expensive part for large supports.  Returns
    ``None`` when the images are not all numeric or the support is small.
    """
    if not _enabled or len(images) < MIN_CELLS:
        return None
    for image in images:
        kind = type(image)
        if kind is not int and kind is not float:
            return None
        if kind is int and not -_EXACT_INT_BOUND <= image <= _EXACT_INT_BOUND:
            return None
    finite_ints = all(
        type(v) is int or not math.isfinite(v) for v in images
    )
    values = _np.asarray(images, dtype=float)
    mass = _np.asarray(masses, dtype=float)
    unique, inverse = _np.unique(values, return_inverse=True)
    accumulated = _np.bincount(inverse.ravel(), weights=mass)
    keep = accumulated > tolerance
    kept_values = _to_python_values(unique[keep], finite_ints)
    return dict(zip(kept_values, accumulated[keep].tolist()))


# -- n-ary reduction ----------------------------------------------------------


def convolve_many(distributions: Iterable, pairwise: Callable):
    """Size-aware n-ary convolution (the convolution-tree optimization).

    Always combines the two smallest operands first — the Huffman-style
    reduction order that keeps intermediate supports small for SUM/COUNT
    aggregates, where a left-to-right fold re-convolves the full running
    support at every step.  ``pairwise`` is any associative, commutative
    combiner of distribution-like objects supporting ``len``.

    Works on any objects with ``len`` (no numpy involved); the counter
    breaks ties deterministically by insertion order.
    """
    heap = [(len(dist), index, dist) for index, dist in enumerate(distributions)]
    if not heap:
        raise ValueError("convolve_many needs at least one distribution")
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        combined = pairwise(a, b)
        heapq.heappush(heap, (len(combined), counter, combined))
        counter += 1
    return heap[0][2]
