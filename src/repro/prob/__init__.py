"""Probability substrate: distributions, convolution, induced spaces.

Implements Section 2.1 of the paper: finite discrete probability
distributions with convolution with respect to arbitrary operations
(Proposition 1), registries of independent random variables, and the
induced probability space with a brute-force enumeration oracle.
"""

from repro.prob.convolution import (
    comparison,
    monoid_add,
    mutex_mixture,
    scalar_action,
    semiring_add,
    semiring_mul,
)
from repro.prob.distribution import TOLERANCE, Distribution
from repro.prob.space import MAX_ENUMERABLE_WORLDS, ProbabilitySpace
from repro.prob.variables import VariableRegistry

__all__ = [
    "Distribution",
    "TOLERANCE",
    "VariableRegistry",
    "ProbabilitySpace",
    "MAX_ENUMERABLE_WORLDS",
    "semiring_add",
    "semiring_mul",
    "monoid_add",
    "scalar_action",
    "comparison",
    "mutex_mixture",
]
