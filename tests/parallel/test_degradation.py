"""Engine-level degradation: pools fail, answers don't.

Every scenario asserts the same contract: when the parallel layer cannot
run (worker crash, un-picklable payload, missing fork), the engine falls
back to serial execution, records the reason in
``stats["parallel_fallback"]``, and still returns exactly the answer the
serial engine computes.
"""

import pickle

import pytest

from repro import connect, count_
from repro.algebra.expressions import Var
from repro.parallel import pool
from repro.parallel.pool import ParallelUnavailable


@pytest.fixture
def session():
    s = connect(seed=3)
    t = s.table("R", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5),
        ("a", 20, 0.4),
        ("b", 30, 0.7),
        ("b", 40, 0.2),
    ]:
        t.insert((kind, value), p=p)
    return s


def _probs(result):
    return [
        (row.values, row.probability().low, row.probability().high)
        for row in result
    ]


def _broken_pool(monkeypatch, reason):
    def broken(executor, payloads):
        raise ParallelUnavailable(reason, "simulated")

    monkeypatch.setattr(pool, "_gather", broken)


class TestMonteCarloDegradation:
    def test_simulated_crash_falls_back_and_matches_serial(
        self, monkeypatch, session
    ):
        query = session.table("R").select("kind")
        serial = session.run(
            query, engine="montecarlo", samples=2000, workers=1
        )
        _broken_pool(monkeypatch, "worker_crash")
        crashed_session = connect(seed=3, database=session.db)
        degraded = crashed_session.run(
            query, engine="montecarlo", samples=2000, workers=2
        )
        assert degraded.stats["parallel_fallback"] == "worker_crash"
        assert degraded.stats["workers"] == 1
        assert _probs(degraded) == _probs(serial)

    def test_sequential_stopping_records_fallback(self, monkeypatch, session):
        # ε small enough that the doubling rounds reach multi-shard
        # batches, where the pool actually engages (and here, "fails").
        serial = connect(seed=9, database=session.db).engine(
            "montecarlo"
        ).engine.estimate_intervals(
            session.table("R").select("kind").build(),
            epsilon=0.05,
            workers=1,
            shard_size=128,
        )
        _broken_pool(monkeypatch, "pickle_error")
        degraded = connect(seed=9, database=session.db).engine(
            "montecarlo"
        ).engine.estimate_intervals(
            session.table("R").select("kind").build(),
            epsilon=0.05,
            workers=4,
            shard_size=128,
        )
        assert degraded[1]["parallel_fallback"] == "pickle_error"
        assert degraded[0] == serial[0]
        assert {
            key: (i.low, i.high) for key, i in degraded[0].items()
        } == {key: (i.low, i.high) for key, i in serial[0].items()}


class _UnpicklableVar(Var):
    """A variable whose pickling always fails (simulates exotic payloads)."""

    def __reduce__(self):
        raise pickle.PicklingError("refusing to pickle this annotation")


class TestCompilationDegradation:
    def test_unpicklable_annotation_falls_back_and_matches_serial(
        self, monkeypatch
    ):
        """A real end-to-end pickle failure: payload chunks reach the
        call queue, fail to serialize, and the run completes serially."""
        if not pool.fork_available():
            pytest.skip("no fork on this platform")
        from repro.core.compile import Compiler

        # The compiler dispatches on exact node types; teach it that the
        # test's unpicklable variable compiles like a plain Var.
        monkeypatch.setitem(
            Compiler._DISPATCH, _UnpicklableVar, Compiler._compile_var
        )
        results = {}
        for workers in (1, 2):
            s = connect()
            t = s.table("R", ["kind"])
            for i, name in enumerate(["u0", "u1", "u2"]):
                s.registry.bernoulli(name, 0.3 + 0.1 * i)
                s.db.tables["R"].add((f"k{i}",), _UnpicklableVar(name))
            result = s.run(t.select("kind"), engine="sprout", workers=workers)
            results[workers] = _probs(result)
            if workers == 2:
                assert result.stats["parallel_fallback"] == "pickle_error"
                assert result.stats["workers"] == 1
        assert results[1] == results[2]

    def test_sprout_simulated_crash(self, monkeypatch, session):
        query = session.table("R").group_by("kind").agg(n=count_())
        serial = _probs(session.run(query, engine="sprout", workers=1))
        _broken_pool(monkeypatch, "worker_crash")
        s2 = connect(seed=3, database=session.db)
        degraded = s2.run(query, engine="sprout", workers=2)
        assert degraded.stats["parallel_fallback"] == "worker_crash"
        assert _probs(degraded) == serial

    def test_approx_simulated_crash(self, monkeypatch, session):
        query = session.table("R").group_by("kind").agg(n=count_())
        serial = _probs(
            session.run(query, engine="approx", epsilon=0.05, workers=1)
        )
        _broken_pool(monkeypatch, "worker_crash")
        s2 = connect(seed=3, database=session.db)
        degraded = s2.run(query, engine="approx", epsilon=0.05, workers=2)
        assert degraded.stats["parallel_fallback"] == "worker_crash"
        assert _probs(degraded) == serial


class TestNoForkPlatforms:
    def test_all_parallel_engines_degrade_without_fork(
        self, monkeypatch, session
    ):
        monkeypatch.setattr(pool, "fork_available", lambda: False)
        query = session.table("R").group_by("kind").agg(n=count_())
        result = session.run(query, engine="sprout", workers=2)
        assert result.stats["parallel_fallback"] == "no_fork"
        mc = connect(seed=5, database=session.db).run(
            session.table("R").select("kind"),
            engine="montecarlo",
            samples=2000,
            workers=2,
        )
        assert mc.stats["parallel_fallback"] == "no_fork"
