"""Wall-clock deadlines with ambient propagation.

A :class:`Deadline` is an absolute point on the monotonic clock,
usually derived from ``EvalSpec.time_limit``.  Engine adapters enter a
:func:`deadline_scope` around a run; inner loops — the ⊔-node loop of
exact compilation, Sprout's per-row compilation, Monte-Carlo rounds —
call :func:`check_deadline` (or read :func:`current_deadline`) without
any signature changes in between.  The scope is a
:class:`contextvars.ContextVar`, so concurrent server requests on
different executor threads each see their own deadline.

Checkpoints are *cooperative*: an expired deadline raises
:class:`DeadlineExceeded`, which callers catch at a sound degradation
boundary (a fully-compiled row, a completed sampling round).  Forked
pool workers do not inherit the scope — cross-process enforcement is
the pool watchdog's job (``parallel.pool``), which bounds every
submitted task by the ambient deadline's remaining time plus a small
grace period.

``DeadlineExceeded`` is internal control flow; user-facing timeout
failures are :class:`repro.errors.QueryTimeoutError`, raised by the
adapters and carrying the best sound partial result when one exists.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.errors import QueryValidationError, ReproError

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_from_spec",
    "deadline_scope",
]


class DeadlineExceeded(ReproError):
    """A cooperative cancellation checkpoint found its deadline expired.

    Internal control flow: adapters catch it and degrade to a partial
    answer or convert it into :class:`repro.errors.QueryTimeoutError`.
    """

    def __init__(self, where: str = "", deadline: "Deadline | None" = None):
        label = where or "work"
        if deadline is not None:
            message = (f"{label} exceeded the {deadline.seconds:g}s deadline "
                       f"({deadline.elapsed():.3f}s elapsed)")
        else:
            message = f"{label} exceeded its deadline"
        super().__init__(message)
        self.where = where
        self.deadline = deadline


class Deadline:
    """An absolute wall-clock budget: ``seconds`` from its creation."""

    __slots__ = ("seconds", "_start", "_expires")

    def __init__(self, seconds: float):
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise QueryValidationError(
                f"deadline seconds must be a number, got {seconds!r}"
            )
        if seconds <= 0:
            raise QueryValidationError(
                f"deadline seconds must be positive, got {seconds!r}"
            )
        self.seconds = float(seconds)
        self._start = time.perf_counter()
        self._expires = self._start + self.seconds

    @classmethod
    def after(cls, seconds: "float | None") -> "Deadline | None":
        """Build a deadline, or ``None`` when no limit was given."""
        return None if seconds is None else cls(seconds)

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires - time.perf_counter()

    def expired(self) -> bool:
        return time.perf_counter() >= self._expires

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if time.perf_counter() >= self._expires:
            raise DeadlineExceeded(where, self)

    def __repr__(self) -> str:
        return (f"Deadline({self.seconds:g}s, "
                f"remaining={self.remaining():.3f}s)")


def deadline_from_spec(spec) -> "Deadline | None":
    """The deadline implied by an :class:`EvalSpec` (duck-typed)."""
    if spec is None:
        return None
    limit = getattr(spec, "time_limit", None)
    return Deadline.after(limit)


#: The ambient deadline of the current logical task.  ``deadline_scope``
#: is entered once per adapter run; nested scopes shadow the outer one
#: (innermost wins).
_ACTIVE: "ContextVar[Deadline | None]" = ContextVar(
    "repro_active_deadline", default=None
)


@contextmanager
def deadline_scope(deadline: "Deadline | None"):
    """Make ``deadline`` ambient for the enclosed block (no-op on None)."""
    if deadline is None:
        yield None
        return
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)


def current_deadline() -> "Deadline | None":
    """The ambient deadline, or ``None`` outside any scope."""
    return _ACTIVE.get()


def check_deadline(where: str = "") -> None:
    """Cooperative checkpoint: raise if the ambient deadline expired.

    Cost when no deadline is active: one ContextVar read.
    """
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check(where)
