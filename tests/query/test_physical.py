"""Tests for the physical planner (stage 2 of step I)."""

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase, Schema
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    lit,
    product_of,
    relation,
)
from repro.query.executor import evaluate, prepare
from repro.query.physical import (
    EmptyResult,
    Filter,
    HashJoin,
    NestedLoopProduct,
    ReorderOp,
    Scan,
    explain_plan,
    plan_query,
)

CATALOG = {
    "R": Schema(["a", "v"]),
    "S": Schema(["b", "w"]),
    "T": Schema(["c"]),
}
CARDS = {"R": 1000, "S": 10, "T": 100}


def ops(plan, kind):
    return [op for op in plan.walk() if isinstance(op, kind)]


class TestJoinExtraction:
    def test_equijoin_becomes_hash_join(self):
        query = Select(Product(relation("R"), relation("S")), eq("a", "b"))
        plan = plan_query(query, CATALOG, CARDS)
        joins = ops(plan, HashJoin)
        assert len(joins) == 1
        assert not ops(plan, NestedLoopProduct)

    def test_smallest_relation_first(self):
        query = Select(
            product_of(relation("R"), relation("S"), relation("T")),
            conj(eq("a", "b"), eq("a", "c")),
        )
        plan = plan_query(query, CATALOG, CARDS)
        # S (10 rows) starts; R and T hash-join onto it; build sides are
        # the incoming relations.
        scans = [op.name for op in ops(plan, Scan)]
        joins = ops(plan, HashJoin)
        assert len(joins) == 2
        deepest = joins[-1]
        assert isinstance(deepest.left, Scan) and deepest.left.name == "S"

    def test_local_atoms_become_leaf_filters(self):
        query = Select(
            Product(relation("R"), relation("S")),
            conj(eq("a", "b"), eq("w", 7)),
        )
        plan = plan_query(query, CATALOG, CARDS)
        filters = ops(plan, Filter)
        assert any(
            isinstance(f.child, Scan) and f.child.name == "S" for f in filters
        )

    def test_theta_atoms_become_residual_filter(self):
        query = Select(
            Product(relation("R"), relation("S")),
            conj(eq("a", "b"), cmp_("v", "<", "w")),
        )
        plan = plan_query(query, CATALOG, CARDS)
        assert isinstance(plan, (Filter, ReorderOp))
        assert ops(plan, HashJoin)

    def test_disconnected_leaves_fall_back_to_product(self):
        query = Select(Product(relation("R"), relation("T")), cmp_("v", "<", "c"))
        plan = plan_query(query, CATALOG, CARDS)
        assert ops(plan, NestedLoopProduct)
        assert not ops(plan, HashJoin)

    def test_constant_false_predicate_plans_empty(self):
        query = Select(
            Product(relation("R"), relation("S")),
            conj(eq("a", "b"), cmp_(lit(2), "<", lit(1))),
        )
        plan = plan_query(query, CATALOG, CARDS)
        assert isinstance(plan, EmptyResult)

    def test_root_restores_declared_column_order(self):
        query = Select(
            product_of(relation("R"), relation("S"), relation("T")),
            conj(eq("a", "b"), eq("a", "c")),
        )
        plan = plan_query(query, CATALOG, CARDS)
        assert plan.schema.attributes == query.schema(CATALOG).attributes

    def test_aggregation_attributes_never_hash_join(self):
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        query = Select(Product(relation("S"), agg), eq("w", "t"))
        plan = plan_query(query, CATALOG, CARDS)
        assert not ops(plan, HashJoin)  # t is symbolic: θ-filter instead


class TestExplain:
    def test_explain_renders_tree(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("a", "b")), ["v"]
        )
        text = explain_plan(plan_query(query, CATALOG, CARDS))
        assert "HashJoin" in text
        assert "Scan[R]" in text and "Scan[S]" in text
        assert text.splitlines()[0].startswith("Project")


class TestExecutedPlans:
    """Planned-and-executed results match the naive relational semantics."""

    def db(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=BOOLEAN)
        r = db.create_table("R", ["a", "v"])
        for i, row in enumerate([(1, 10), (1, 20), (2, 30)]):
            reg.bernoulli(f"r{i}", 0.5)
            r.add(row, Var(f"r{i}"))
        s = db.create_table("S", ["b", "w"])
        for i, row in enumerate([(1, 100), (3, 300)]):
            reg.bernoulli(f"s{i}", 0.5)
            s.add(row, Var(f"s{i}"))
        return db

    def test_hash_join_values(self):
        db = self.db()
        query = Select(Product(relation("R"), relation("S")), eq("a", "b"))
        table = evaluate(query, db)
        assert {row.values for row in table} == {
            (1, 10, 1, 100),
            (1, 20, 1, 100),
        }

    def test_empty_plan_yields_no_rows(self):
        db = self.db()
        query = Select(relation("R"), cmp_(lit(1), ">", lit(2)))
        assert len(evaluate(query, db)) == 0

    def test_prepared_plan_is_reusable(self):
        db = self.db()
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("a", "b")), ["v"]
        )
        prepared = prepare(query, db.catalog(), db.cardinalities())
        from repro.query.executor import execute_symbolic

        first = execute_symbolic(prepared, db)
        second = execute_symbolic(prepared, db)
        assert [r.values for r in first] == [r.values for r in second]
        assert [r.annotation for r in first] == [r.annotation for r in second]
