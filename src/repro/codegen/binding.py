"""Bind a compiled plan to a pvc-database: the per-world fast path.

A :class:`BoundPlan` hoists every piece of world-invariant work out of
the per-world loop the Monte-Carlo fallback and the naive oracle run:

* **deterministic tables** (no random variables) are instantiated once;
  their tuple mappings, hash indexes, and any *subplan* touching only
  deterministic tables are evaluated once — by the interpreter, the
  conformance oracle — and injected into the kernel's statics mapping,
  so the kernel skips those blocks entirely on every world;
* **uncertain tables** are lowered to a columnar layout: the raw rows
  once, each *distinct* annotation expression compiled once to a closure
  over a coerced valuation vector (annotation-level CSE — the
  interpreter re-evaluates the annotation per row per world), and the
  per-variable support values coerced once so Monte-Carlo sample indices
  map straight to semiring values;
* with numpy available, an all-``Var``-annotated Boolean table becomes a
  single fancy-indexing gather per world (``presence[slots]``),
  list-ified back to Python bools so results stay bit-identical.

``run_indices`` (Monte-Carlo: per-variable support indices) and
``run_assignment`` (naive oracle: a ``{variable: value}`` assignment)
then evaluate one world each as ``instantiate dynamic tables → run
kernel``, replicating ``PVCTable.instantiate`` and ``Relation.add``
merge semantics exactly.
"""

from __future__ import annotations

from repro.algebra.conditions import Compare
from repro.algebra.expressions import Prod, SConst, Sum, Var
from repro.algebra.semimodule import AggSum, MConst, ModuleExpr, Tensor
from repro.algebra.valuation import Valuation
from repro.codegen.runtime import CodegenUnsupported
from repro.prob.kernels import numpy_enabled

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["BoundPlan", "compile_annotation"]


def compile_annotation(expr, slots: dict, semiring):
    """Compile an annotation expression to a closure over a valuation
    vector (``vals[slots[name]]`` is the *coerced* value of ``name``).

    Replicates :func:`repro.algebra.valuation.evaluate` case by case —
    including the ``Prod`` zero short-circuit — so values and error
    behavior are identical.  Raises :class:`CodegenUnsupported` for
    expression types the interpreter would also reject (or that we do
    not compile), letting callers fall back wholesale.
    """
    if isinstance(expr, Var):
        try:
            slot = slots[expr.name]
        except KeyError:
            raise CodegenUnsupported(
                f"variable {expr.name!r} is not covered by the bound "
                f"valuation order"
            ) from None

        def fn(vals, _slot=slot):
            return vals[_slot]

        return fn
    if isinstance(expr, SConst):
        constant = semiring.coerce(expr.value)
        return lambda vals: constant
    if isinstance(expr, Sum):
        parts = tuple(
            compile_annotation(child, slots, semiring) for child in expr.children
        )

        def fn(vals, _parts=parts, _add=semiring.add, _zero=semiring.zero):
            result = _zero
            for part in _parts:
                result = _add(result, part(vals))
            return result

        return fn
    if isinstance(expr, Prod):
        parts = tuple(
            compile_annotation(child, slots, semiring) for child in expr.children
        )

        def fn(
            vals,
            _parts=parts,
            _mul=semiring.mul,
            _one=semiring.one,
            _zero=semiring.zero,
        ):
            result = _one
            for part in _parts:
                result = _mul(result, part(vals))
                if result == _zero:
                    return result
            return result

        return fn
    if isinstance(expr, Compare):
        left = compile_annotation(expr.left, slots, semiring)
        right = compile_annotation(expr.right, slots, semiring)

        def fn(
            vals,
            _left=left,
            _right=right,
            _op=expr.op,
            _cond=semiring.from_condition,
        ):
            return _cond(_op(_left(vals), _right(vals)))

        return fn
    if isinstance(expr, MConst):
        value = expr.value
        return lambda vals: value
    if isinstance(expr, Tensor):
        phi = compile_annotation(expr.phi, slots, semiring)
        arg = compile_annotation(expr.arg, slots, semiring)

        def fn(
            vals, _phi=phi, _arg=arg, _act=expr.monoid.act, _sr=semiring
        ):
            return _act(_phi(vals), _arg(vals), _sr)

        return fn
    if isinstance(expr, AggSum):
        parts = tuple(
            compile_annotation(child, slots, semiring) for child in expr.children
        )

        def fn(
            vals,
            _parts=parts,
            _add=expr.monoid.add,
            _zero=expr.monoid.zero,
        ):
            result = _zero
            for part in _parts:
                result = _add(result, part(vals))
            return result

        return fn
    raise CodegenUnsupported(
        f"cannot compile annotation of type {type(expr).__name__}"
    )


def _static_scans(op) -> set:
    from repro.query.physical import Scan

    return {node.name for node in op.walk() if isinstance(node, Scan)}


class BoundPlan:
    """A compiled plan with all world-invariant work pre-evaluated."""

    def __init__(self, compiled, db, names, supports=None):
        semiring = compiled.semiring
        if db.semiring != semiring:
            raise CodegenUnsupported(
                f"plan compiled for semiring {semiring.name!r} cannot bind "
                f"a {db.semiring.name!r} database"
            )
        self._compiled = compiled
        self._semiring = semiring
        self._zero = semiring.zero
        self._add = semiring.add
        self._names = list(names)
        self._slots = {name: i for i, name in enumerate(self._names)}
        if supports is not None:
            coerce = semiring.coerce
            self._coerced = [
                [coerce(value) for value in support] for support in supports
            ]
        else:
            self._coerced = None

        tables = {}
        for name in compiled.scan_names:
            table = db.tables.get(name)
            if table is None:
                raise CodegenUnsupported(
                    f"database has no table named {name!r}"
                )
            tables[name] = table
        #: Epoch vector of everything this binding snapshotted: the
        #: scanned tables plus the registry (variable supports feed the
        #: coerced valuation layout).  A bound plan is a point-in-time
        #: artifact; :meth:`is_current` lets callers reuse it across runs
        #: only while none of its inputs mutated.
        self.epochs = tuple(
            sorted((name, table.epoch) for name, table in tables.items())
        )
        self.registry_epoch = getattr(db.registry, "epoch", None)
        static_names = {
            name for name, table in tables.items() if not table.variables
        }

        # World-invariant statics: deterministic tables instantiated once,
        # their hash indexes built once, and every block whose subplan
        # touches only deterministic tables evaluated once (by the
        # interpreter — the oracle defines the hoisted values).
        statics: dict = {}
        static_world = {}
        if static_names:
            empty = Valuation({}, semiring)
            for name in static_names:
                relation = tables[name].instantiate(empty, semiring)
                static_world[name] = relation
                statics[f"t:{name}"] = relation._tuples
            for key, name, attributes, _indices in compiled.index_sites:
                if name in static_names:
                    statics[key] = static_world[name].hash_index(attributes)
            from repro.query.executor import _DeterministicExecutor

            executor = _DeterministicExecutor(static_world, semiring, {})
            scopes = getattr(compiled, "block_scans", None) or {}
            for key, kind, op, extra in compiled.block_sites:
                # The emitter's declared scope is authoritative (and what
                # the kernel verifier proves); fall back to walking the
                # subtree for compiled plans predating the metadata.
                scope = scopes.get(key)
                if scope is None:
                    scope = _static_scans(op)
                if not set(scope) <= static_names:
                    continue
                tuples = executor.tuples(op)
                if kind == "dict":
                    statics[key] = tuples
                elif kind == "list":
                    statics[key] = list(tuples.items())
                elif kind == "index":
                    buckets: dict = {}
                    for values, multiplicity in tuples.items():
                        bucket_key = tuple(values[i] for i in extra)
                        bucket = buckets.get(bucket_key)
                        if bucket is None:
                            buckets[bucket_key] = bucket = []
                        bucket.append((values, multiplicity))
                    statics[key] = buckets
        self._statics = statics

        # Columnar layout + compiled annotations for the uncertain tables.
        use_numpy = (
            _np is not None and numpy_enabled() and semiring.is_boolean
        )
        ann_fns: list = []
        ann_slots: dict = {}
        dynamic = []
        for name in compiled.scan_names:
            if name in static_names:
                continue
            table = tables[name]
            annotations = table.annotation_column()
            raw_rows = table.rows
            fast = None
            if use_numpy and all(
                isinstance(annotation, Var) for annotation in annotations
            ):
                module_free = all(
                    not any(
                        isinstance(value, ModuleExpr) for value in row.values
                    )
                    for row in raw_rows
                )
                if module_free:
                    fast = (
                        [tuple(row.values) for row in raw_rows],
                        _np.array(
                            [
                                self._slots[annotation.name]
                                for annotation in annotations
                            ],
                            dtype=_np.intp,
                        )
                        if raw_rows
                        else _np.array([], dtype=_np.intp),
                    )
            if fast is not None:
                dynamic.append((name, None, fast))
                continue
            rows = []
            for row, annotation in zip(raw_rows, annotations):
                try:
                    index = ann_slots.get(annotation)
                except TypeError:
                    index = None
                if index is None:
                    index = len(ann_fns)
                    ann_fns.append(
                        compile_annotation(annotation, self._slots, semiring)
                    )
                    try:
                        ann_slots[annotation] = index
                    except TypeError:
                        pass
                modules = tuple(
                    (position, compile_annotation(value, self._slots, semiring))
                    for position, value in enumerate(row.values)
                    if isinstance(value, ModuleExpr)
                ) or None
                rows.append((tuple(row.values), index, modules))
            dynamic.append((name, rows, None))
        self._ann_fns = tuple(ann_fns)
        self._dynamic = tuple(dynamic)
        self._nvars = len(self._names)

    @property
    def statics(self) -> dict:
        return self._statics

    def run_values(self, vals, trace=None, check_deadline=None) -> dict:
        """Evaluate one world given the coerced valuation vector."""
        ann = [fn(vals) for fn in self._ann_fns]
        zero = self._zero
        add = self._add
        world = {}
        presence = None
        for name, rows, fast in self._dynamic:
            mapping: dict = {}
            if fast is not None:
                values_list, slot_array = fast
                if presence is None:
                    presence = _np.fromiter(
                        vals, dtype=_np.bool_, count=self._nvars
                    )
                for values, present in zip(
                    values_list, presence[slot_array].tolist()
                ):
                    if present:
                        # Boolean merge: True ∨ anything is True.
                        mapping[values] = True
            else:
                for values, index, modules in rows:
                    multiplicity = ann[index]
                    if multiplicity == zero:
                        continue
                    if modules is not None:
                        buffer = list(values)
                        for position, fn in modules:
                            buffer[position] = fn(vals)
                        values = tuple(buffer)
                    # Relation.add merge semantics, verbatim.
                    combined = add(mapping.get(values, zero), multiplicity)
                    if combined == zero:
                        mapping.pop(values, None)
                    else:
                        mapping[values] = combined
            world[name] = mapping
        return self._compiled.fn(world, self._statics, trace, check_deadline)

    def is_current(self, db) -> bool:
        """Whether this binding's snapshot still matches ``db``.

        True iff every table it read is at the epoch it was bound at and
        the registry is unchanged.  Callers caching bound plans across
        runs (the naive oracle) must re-bind when this goes false; the
        compiled kernel itself is data-independent and survives.
        """
        if self.registry_epoch != getattr(db.registry, "epoch", None):
            return False
        for name, epoch in self.epochs:
            table = db.tables.get(name)
            if table is None or table.epoch != epoch:
                return False
        return True

    def run_indices(self, key, trace=None, check_deadline=None) -> dict:
        """Evaluate the world selected by per-variable support indices."""
        coerced = self._coerced
        vals = [coerced[i][key[i]] for i in range(len(key))]
        return self.run_values(vals, trace, check_deadline)

    def run_assignment(self, assignment, trace=None, check_deadline=None) -> dict:
        """Evaluate the world of a ``{variable: raw value}`` assignment."""
        coerce = self._semiring.coerce
        vals = [coerce(assignment[name]) for name in self._names]
        return self.run_values(vals, trace, check_deadline)
