"""Value bounds for semimodule expressions.

For a semimodule expression ``α = Σ_AGG Φᵢ ⊗ mᵢ (+ certain constants)``
over independent Boolean-presence scalars, the attainable values in every
possible world lie within a closed interval computable from the term
values alone:

* **MIN**: between ``min`` over all term values and the minimum of the
  *certain* (constant) contributions (``+∞`` when there is none);
* **MAX**: mirror image;
* **SUM/COUNT** (Boolean scalars, so every term contributes at most
  once): between the certain part plus all negative term values and the
  certain part plus all positive term values.

These bounds drive the early folding of two-sided conditional expressions
``[α θ β]`` during compilation: once the intervals of the two sides
separate, the comparison is decided in *every* remaining world and the
conditional collapses to ``0_S``/``1_S``.  This is the effect the paper
describes for Experiment E — "already a few mutex decomposition steps
satisfy enough clauses to make the sum larger than the maximum on the
left side", after which compilation stops.

Under bag semantics (N-valued scalars) SUM contributions are unbounded
above, so the bounds degenerate conservatively to ``±∞`` where needed;
MIN/MAX bounds depend only on term *presence* and remain valid.
"""

from __future__ import annotations

import math

from repro.algebra.expressions import Expr
from repro.algebra.monoid import MaxMonoid, MinMonoid, ProdMonoid, SumMonoid
from repro.algebra.semimodule import AggSum, MConst, ModuleExpr, Tensor

__all__ = ["value_bounds", "fold_comparison_by_bounds"]

_UNBOUNDED = (-math.inf, math.inf)


def value_bounds(expr: Expr, boolean_scalars: bool) -> tuple[float, float]:
    """A closed interval containing ``ν(expr)`` for every valuation ``ν``.

    ``boolean_scalars`` states that all annotation scalars evaluate to
    0/1 (set semantics, or Proposition 3's restricted variables); without
    it, SUM-like bounds widen to infinity.  Always sound, possibly loose.

    Non-canonical summands — tensors whose right side is itself a
    semimodule expression, as produced by partially restricted nested
    aggregates — are bounded recursively: a term ``Φ ⊗ α`` contributes
    either nothing or a value within ``value_bounds(α)``.
    """
    if not isinstance(expr, ModuleExpr):
        return _UNBOUNDED
    monoid = expr.monoid
    if isinstance(monoid, ProdMonoid):
        return _UNBOUNDED

    #: Intervals of contributions that happen in *every* world / only in
    #: some worlds.  ``(v, v)`` is the exact single-value case.
    certain: list[tuple[float, float]] = []
    optional: list[tuple[float, float]] = []
    for term in _terms(expr):
        if isinstance(term, MConst):
            certain.append((term.value, term.value))
        elif isinstance(term, Tensor):
            if isinstance(term.arg, MConst):
                inner = (term.arg.value, term.arg.value)
            else:
                inner = value_bounds(term.arg, boolean_scalars)
                if inner == _UNBOUNDED:
                    return _UNBOUNDED
            optional.append(inner)
        elif isinstance(term, ModuleExpr):
            inner = value_bounds(term, boolean_scalars)
            if inner == _UNBOUNDED:
                return _UNBOUNDED
            certain.append(inner)
        else:
            return _UNBOUNDED  # non-module summand: give up

    if isinstance(monoid, MinMonoid):
        high = min((hi for _, hi in certain), default=math.inf)
        lows = [lo for lo, _ in certain] + [lo for lo, _ in optional]
        low = min(lows) if lows else math.inf
        return (low, high)
    if isinstance(monoid, MaxMonoid):
        low = max((lo for lo, _ in certain), default=-math.inf)
        highs = [hi for _, hi in certain] + [hi for _, hi in optional]
        high = max(highs) if highs else -math.inf
        return (low, high)
    if isinstance(monoid, SumMonoid):
        base_low = sum(lo for lo, _ in certain)
        base_high = sum(hi for _, hi in certain)
        if boolean_scalars:
            # Each optional term contributes once or not at all.
            low = base_low + sum(min(0.0, lo) for lo, _ in optional)
            high = base_high + sum(max(0.0, hi) for _, hi in optional)
            return (monoid.clamp(low), monoid.clamp(high))
        # Bag semantics: non-negative multiplicities, unbounded above.
        low = -math.inf if any(lo < 0 for lo, _ in optional) else base_low
        high = math.inf if any(hi > 0 for _, hi in optional) else base_high
        return (low, high)
    return _UNBOUNDED


def _terms(expr: ModuleExpr):
    if isinstance(expr, AggSum):
        return expr.children
    return (expr,)


def fold_comparison_by_bounds(
    left: Expr, op_symbol: str, right: Expr, boolean_scalars: bool
) -> bool | None:
    """Decide ``[left θ right]`` from value bounds, if possible.

    Returns ``True``/``False`` when every valuation agrees on the
    comparison, ``None`` when the intervals overlap and the outcome
    still depends on the world.
    """
    lo_l, hi_l = value_bounds(left, boolean_scalars)
    lo_r, hi_r = value_bounds(right, boolean_scalars)
    if (lo_l, hi_l) == _UNBOUNDED or (lo_r, hi_r) == _UNBOUNDED:
        return None

    if op_symbol == "<=":
        if hi_l <= lo_r:
            return True
        if lo_l > hi_r:
            return False
    elif op_symbol == "<":
        if hi_l < lo_r:
            return True
        if lo_l >= hi_r:
            return False
    elif op_symbol == ">=":
        if lo_l >= hi_r:
            return True
        if hi_l < lo_r:
            return False
    elif op_symbol == ">":
        if lo_l > hi_r:
            return True
        if hi_l <= lo_r:
            return False
    elif op_symbol == "=":
        if hi_l < lo_r or lo_l > hi_r:
            return False
        if lo_l == hi_l == lo_r == hi_r:
            return True
    elif op_symbol == "!=":
        if hi_l < lo_r or lo_l > hi_r:
            return True
        if lo_l == hi_l == lo_r == hi_r:
            return False
    return None
