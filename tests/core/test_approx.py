"""Tests for budgeted approximate probability computation."""

import pytest

from repro.algebra.expressions import ONE, ZERO, Var, sprod, ssum
from repro.algebra.parser import parse_expr
from repro.algebra.semiring import BOOLEAN
from repro.core.approx import (
    ApproximateCompiler,
    ProbabilityBounds,
    approximate_probability,
)
from repro.core.compile import Compiler
from repro.errors import CompilationError
from repro.prob.variables import VariableRegistry


def registry_for(expr_vars, p=0.5):
    reg = VariableRegistry()
    for name in expr_vars:
        reg.bernoulli(name, p)
    return reg


class TestBoundsArithmetic:
    def test_exact_and_unknown(self):
        assert ProbabilityBounds.exact(0.5).width == 0
        assert ProbabilityBounds.unknown().width == 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(CompilationError):
            ProbabilityBounds(0.7, 0.3)
        with pytest.raises(CompilationError):
            ProbabilityBounds(-0.1, 0.5)

    def test_disjunction_monotone(self):
        b1 = ProbabilityBounds(0.2, 0.4)
        b2 = ProbabilityBounds(0.1, 0.3)
        combined = b1.disjunction(b2)
        assert combined.low == pytest.approx(1 - 0.8 * 0.9)
        assert combined.high == pytest.approx(1 - 0.6 * 0.7)

    def test_conjunction(self):
        combined = ProbabilityBounds(0.2, 0.4).conjunction(
            ProbabilityBounds(0.5, 0.5)
        )
        assert combined.low == pytest.approx(0.1)
        assert combined.high == pytest.approx(0.2)

    def test_contains_and_midpoint(self):
        bounds = ProbabilityBounds(0.2, 0.6)
        assert bounds.contains(0.4)
        assert not bounds.contains(0.7)
        assert bounds.midpoint == pytest.approx(0.4)


class TestApproximateCompiler:
    def test_zero_budget_still_bounds(self):
        expr = parse_expr("(a+b)*(a+c)")
        reg = registry_for("abc")
        bounds = ApproximateCompiler(reg, budget=0).bounds(expr)
        exact = Compiler(reg, BOOLEAN).probability(expr)
        assert bounds.contains(exact)

    def test_read_once_needs_no_budget(self):
        # Independent structure resolves exactly without Shannon steps.
        expr = parse_expr("a*b + c*d")
        reg = registry_for("abcd", p=0.3)
        bounds = ApproximateCompiler(reg, budget=0).bounds(expr)
        exact = Compiler(reg, BOOLEAN).probability(expr)
        assert bounds.width == pytest.approx(0.0, abs=1e-12)
        assert bounds.low == pytest.approx(exact)

    def test_bounds_tighten_with_budget(self):
        expr = parse_expr("(a+b)*(a+c)*(b+d)*(c+d)")
        reg = registry_for("abcd", p=0.4)
        exact = Compiler(reg, BOOLEAN).probability(expr)
        widths = []
        for budget in (0, 1, 2, 64):
            bounds = ApproximateCompiler(reg, budget).bounds(expr)
            assert bounds.contains(exact)
            widths.append(bounds.width)
        assert widths[0] >= widths[-1]
        assert widths[-1] == pytest.approx(0.0, abs=1e-12)

    def test_constants(self):
        reg = registry_for("")
        assert ApproximateCompiler(reg, 0).bounds(ONE).low == 1.0
        assert ApproximateCompiler(reg, 0).bounds(ZERO).high == 0.0

    def test_unsupported_expression_rejected(self):
        from repro.algebra.monoid import SUM
        from repro.algebra.semimodule import MConst, aggsum, tensor

        reg = registry_for("x")
        alpha = aggsum(SUM, [tensor(Var("x"), MConst(SUM, 1))])
        with pytest.raises(CompilationError, match="semimodule comparisons"):
            ApproximateCompiler(reg, 8).bounds(alpha)


class TestRefinementLoop:
    def test_epsilon_reached(self):
        expr = parse_expr("(a+b)*(a+c) + d*e")
        reg = registry_for("abcde", p=0.45)
        bounds = approximate_probability(expr, reg, epsilon=1e-6)
        exact = Compiler(reg, BOOLEAN).probability(expr)
        assert bounds.width <= 1e-6
        assert bounds.contains(exact, tol=1e-6)

    def test_falls_back_to_exact(self):
        expr = parse_expr("(a+b)*(a+c)")
        reg = registry_for("abc")
        bounds = approximate_probability(
            expr, reg, epsilon=0.0, initial_budget=1, max_budget=1
        )
        exact = Compiler(reg, BOOLEAN).probability(expr)
        assert bounds.low == pytest.approx(exact)
        assert bounds.width == 0
