"""Unit tests for the Figure-2 grammar parser."""

import pytest

from repro.algebra.conditions import Compare
from repro.algebra.expressions import Prod, SConst, Sum, Var, sprod, ssum
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.parser import parse_expr, tokenize
from repro.algebra.semimodule import AggSum, MConst, Tensor, aggsum, tensor
from repro.errors import ParseError


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("x1 * (y + 3)")
        kinds = [k for k, _, _ in tokens]
        assert kinds == ["name", "punct", "punct", "name", "punct", "int", "punct"]

    def test_comparison_tokens(self):
        tokens = tokenize("a <= b != c")
        symbols = [v for k, v, _ in tokens if k == "cmp"]
        assert symbols == ["<=", "!="]

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            tokenize("x $ y")


class TestSemiringParsing:
    def test_single_variable(self):
        assert parse_expr("x") == Var("x")

    def test_sum_and_product_precedence(self):
        assert parse_expr("a + b*c") == ssum([Var("a"), sprod([Var("b"), Var("c")])])

    def test_parentheses(self):
        expr = parse_expr("a*(b + c)")
        assert isinstance(expr, Prod)
        assert any(isinstance(child, Sum) for child in expr.children)

    def test_figure1_annotation(self):
        expr = parse_expr("x1*y11*(z1 + z5)")
        assert expr.variables == frozenset({"x1", "y11", "z1", "z5"})

    def test_integer_constants(self):
        assert parse_expr("3") == SConst(3)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expr("a b")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(a + b")


class TestModuleParsing:
    def test_tensor(self):
        expr = parse_expr("x @ 5", monoid=SUM)
        assert expr == tensor(Var("x"), MConst(SUM, 5))

    def test_tensor_binds_product_first(self):
        # a*b@5 is (a·b) ⊗ 5
        expr = parse_expr("a*b @ 5", monoid=MIN)
        assert isinstance(expr, Tensor)
        assert expr.phi == sprod([Var("a"), Var("b")])

    def test_module_sum(self):
        expr = parse_expr("x@10 + y@20", monoid=MIN)
        assert isinstance(expr, AggSum)
        assert expr.monoid == MIN

    def test_module_sum_requires_monoid(self):
        with pytest.raises(ParseError, match="monoid"):
            parse_expr("x@10 + y@20")

    def test_cannot_multiply_modules(self):
        with pytest.raises(ParseError, match="multiply"):
            parse_expr("x@1 * y@2", monoid=SUM)

    def test_paper_figure6_expression(self):
        expr = parse_expr(
            "x4*y41*(z1+z5)@15 + x4*y43*z3@60 + x5*y51*(z1+z5)@10",
            monoid=MAX,
        )
        assert isinstance(expr, AggSum)
        assert len(expr.children) == 3
        assert expr.variables == frozenset(
            {"x4", "x5", "y41", "y43", "y51", "z1", "z3", "z5"}
        )


class TestConditionParsing:
    def test_simple_condition(self):
        expr = parse_expr("[x@10 + y@20 <= 15]", monoid=MIN)
        assert isinstance(expr, Compare)
        assert expr.op.symbol == "<="

    def test_semiring_condition(self):
        expr = parse_expr("[x + y != 0]")
        assert isinstance(expr, Compare)

    def test_condition_times_annotation(self):
        expr = parse_expr("[x@10 <= 5] * w", monoid=MIN)
        assert expr.variables == frozenset({"x", "w"})

    def test_missing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("[x + y]")

    def test_roundtrip_equivalence_with_api(self):
        via_parser = parse_expr("[a*b@3 + c@7 <= 5]", monoid=MIN)
        via_api = __import__("repro.algebra.conditions", fromlist=["compare"]).compare(
            aggsum(
                MIN,
                [
                    tensor(sprod([Var("a"), Var("b")]), MConst(MIN, 3)),
                    tensor(Var("c"), MConst(MIN, 7)),
                ],
            ),
            "<=",
            5,
        )
        assert via_parser == via_api
