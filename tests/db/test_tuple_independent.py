"""Unit tests for tuple-independent and BID table constructors."""

import pytest

from repro.algebra.conditions import Compare
from repro.algebra.expressions import Var
from repro.algebra.semiring import NATURALS
from repro.core.compile import Compiler
from repro.db.tuple_independent import bid_table, tuple_independent_table
from repro.errors import DistributionError
from repro.prob.variables import VariableRegistry


class TestTupleIndependent:
    def test_fresh_variables_per_row(self):
        reg = VariableRegistry()
        table = tuple_independent_table(
            ["a"], [((1,), 0.5), ((2,), 0.9)], reg, "t"
        )
        annotations = [row.annotation for row in table]
        assert annotations == [Var("t0"), Var("t1")]
        assert reg["t0"][True] == pytest.approx(0.5)
        assert reg["t1"][True] == pytest.approx(0.9)

    def test_values_preserved(self):
        reg = VariableRegistry()
        table = tuple_independent_table(
            ["a", "b"], [((1, "x"), 0.5)], reg, "t"
        )
        assert table.rows[0].values == (1, "x")


class TestBidTable:
    def test_block_variables_and_conditions(self):
        reg = VariableRegistry()
        table = bid_table(
            ["a"],
            [[((1,), 0.3), ((2,), 0.5)], [((3,), 1.0)]],
            reg,
            "b",
        )
        assert all(isinstance(row.annotation, Compare) for row in table)
        assert reg["b0"][1] == pytest.approx(0.3)
        assert reg["b0"][2] == pytest.approx(0.5)
        assert reg["b0"][0] == pytest.approx(0.2)  # the "none" remainder
        assert reg["b1"][1] == pytest.approx(1.0)

    def test_block_alternatives_are_exclusive(self):
        reg = VariableRegistry()
        table = bid_table(["a"], [[((1,), 0.4), ((2,), 0.6)]], reg, "b")
        compiler = Compiler(reg, NATURALS)
        a1, a2 = (row.annotation for row in table)
        assert compiler.probability(a1) == pytest.approx(0.4)
        assert compiler.probability(a2) == pytest.approx(0.6)
        # Mutual exclusion: both annotations never true together.
        joint = compiler.distribution(a1 * a2)
        assert joint[1] == pytest.approx(0.0)

    def test_overfull_block_rejected(self):
        reg = VariableRegistry()
        with pytest.raises(DistributionError, match="sum to"):
            bid_table(["a"], [[((1,), 0.7), ((2,), 0.7)]], reg, "b")

    def test_zero_probability_alternative_skipped(self):
        reg = VariableRegistry()
        table = bid_table(["a"], [[((1,), 0.0), ((2,), 1.0)]], reg, "b")
        assert len(table) == 1
