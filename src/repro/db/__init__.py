"""Probabilistic database substrate: pvc-tables and possible worlds.

Implements Section 3 of the paper: schemas with aggregation-attribute
tracking, deterministic relations with semiring multiplicities (the
possible worlds), pvc-tables and pvc-databases, tuple-independent and BID
constructors, and explicit world enumeration.
"""

from repro.db.pvc_table import PVCDatabase, PVCRow, PVCTable
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.db.tuple_independent import bid_table, tuple_independent_table
from repro.db.worlds import enumerate_database_worlds, world_count

__all__ = [
    "Schema",
    "Relation",
    "PVCRow",
    "PVCTable",
    "PVCDatabase",
    "tuple_independent_table",
    "bid_table",
    "enumerate_database_worlds",
    "world_count",
]
