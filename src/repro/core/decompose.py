"""Structural decomposition helpers for the compiler (Section 5).

Two syntactic analyses drive the four independence rules of Algorithm 1:

* **Independent partitioning** of sums: the summands of
  ``Φ₁ + ... + Φₙ`` are grouped by the connected components of their
  *clause-dependency graph* — two summands are connected when they share a
  variable.  Distinct components are independent random variables and
  compile to a ``⊕`` node.
* **Common-factor extraction** for connected sums: when every summand of a
  connected (semiring or semimodule) sum contains a variable ``x`` as a
  multiplicative factor, distributivity rewrites the sum as
  ``x · (Σ residuals)`` — the factorisation step that recovers read-once
  forms such as ``x₁y₁₁ + x₁y₁₂ = x₁(y₁₁ + y₁₂)`` (Example 14).  The
  extraction is sound only when the residual no longer mentions ``x``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.expressions import (
    ONE,
    Expr,
    Prod,
    SemiringExpr,
    Var,
    sprod,
)
from repro.algebra.semimodule import Tensor, tensor
from repro.errors import CompilationError

__all__ = [
    "independent_groups",
    "factor_variables",
    "common_factor_variables",
    "divide_by_variable",
]


def independent_groups(exprs: Sequence[Expr]) -> list[list[Expr]]:
    """Partition expressions into groups connected by shared variables.

    Returns the connected components of the graph whose vertices are the
    expressions and whose edges join expressions with intersecting
    variable sets.  Variable-free expressions are singleton components.
    Expressions in different components are independent random variables.

    Instead of the quadratic pairwise variable-set intersection this is a
    union-find indexed by variable: each variable remembers the first
    expression owning it and later owners union with it, so the total
    cost is near-linear in ``Σ |vars(Φᵢ)|``.  This runs on *every* sum
    the compiler decomposes, so the inner loops are kept free of helper
    calls.
    """
    count = len(exprs)
    if count == 1:
        return [list(exprs)]
    parent = list(range(count))

    owner: dict[str, int] = {}
    for index, expr in enumerate(exprs):
        for name in expr.variables:
            prior = owner.get(name)
            if prior is None:
                owner[name] = index
                continue
            # find(prior) / find(index) with path halving, inlined.
            ri = prior
            while parent[ri] != ri:
                parent[ri] = parent[parent[ri]]
                ri = parent[ri]
            rj = index
            while parent[rj] != rj:
                parent[rj] = parent[parent[rj]]
                rj = parent[rj]
            if ri != rj:
                parent[rj] = ri

    groups: dict[int, list[Expr]] = {}
    for index, expr in enumerate(exprs):
        root = index
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        group = groups.get(root)
        if group is None:
            groups[root] = [expr]
        else:
            group.append(expr)
    return list(groups.values())


def factor_variables(expr: Expr) -> frozenset:
    """Variables occurring as top-level multiplicative factors of ``expr``.

    For a product these are its :class:`Var` factors; for a bare variable,
    the variable itself; for a tensor term ``Φ ⊗ α``, the factors of the
    scalar ``Φ``.  Other shapes (sums, comparisons, constants) expose no
    factorable variables.
    """
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Prod):
        return frozenset(f.name for f in expr.children if isinstance(f, Var))
    if isinstance(expr, Tensor):
        return factor_variables(expr.phi)
    return frozenset()


def common_factor_variables(terms: Iterable[Expr]) -> frozenset:
    """Variables available for extraction from *every* summand."""
    common: frozenset | None = None
    for term in terms:
        factors = factor_variables(term)
        if not factors:
            return frozenset()
        common = factors if common is None else common & factors
        if not common:
            return frozenset()
    return common or frozenset()


def divide_by_variable(expr: Expr, name: str) -> Expr:
    """Remove one multiplicative occurrence of ``Var(name)`` from ``expr``.

    Inverse of the distributivity rewrite: dividing every summand of
    ``x·Φ₁ + x·Φ₂`` by ``x`` yields the residual sum ``Φ₁ + Φ₂``.
    """
    if isinstance(expr, Var):
        if expr.name != name:
            raise CompilationError(f"cannot divide {expr!r} by {name}")
        return ONE
    if isinstance(expr, Prod):
        remaining: list[SemiringExpr] = []
        removed = False
        for factor in expr.children:
            if not removed and isinstance(factor, Var) and factor.name == name:
                removed = True
            else:
                remaining.append(factor)
        if not removed:
            raise CompilationError(f"{name} is not a factor of {expr!r}")
        return sprod(remaining)
    if isinstance(expr, Tensor):
        return tensor(divide_by_variable(expr.phi, name), expr.arg)
    raise CompilationError(f"cannot divide expression {expr!r} by {name}")
