"""The physical executor — stage 3 of the step-I pipeline.

Executes the physical plans of :mod:`repro.query.physical` in two modes
sharing one operator tree:

* **symbolic** (:func:`execute_symbolic`) — the Figure-4 construction:
  rows carry semiring *expressions*; joint use multiplies annotations,
  alternative use sums them, symbolic comparisons multiply conditional
  expressions ``[A θ B]`` into the annotation, and ``$`` builds
  semimodule expressions.  Produces the pvc-table of step I, identical
  (in annotation *values*) to the seed's tree-walking interpreter.
* **deterministic** (:func:`execute_deterministic`) — the same plan over
  one possible world: rows carry concrete semiring multiplicities.  This
  is the per-world path of the brute-force oracle and the Monte-Carlo
  fallback, so all three engines execute step I through this module.

:func:`prepare` bundles validation, the rule-based logical optimizer and
the physical planner into a reusable :class:`PreparedQuery`, so engines
that evaluate many worlds plan once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, ZERO, SemiringExpr, sprod, ssum
from repro.codegen import codegen_enabled, kernel_for
from repro.algebra.monoid import COUNT, SUM, CountMonoid
from repro.algebra.semimodule import MConst, ModuleExpr, aggsum, tensor
from repro.db.pvc_table import (
    PVCDatabase,
    PVCRow,
    PVCTable,
    merge_annotated_rows as _merge_rows,
    tuple_getter as _tuple_getter,
)
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import QueryValidationError
from repro.query.ast import Query
from repro.query.optimizer import RuleFiring, optimize_traced
from repro.query.physical import (
    EmptyResult,
    ExtendOp,
    Filter,
    GroupAggOp,
    HashJoin,
    NestedLoopProduct,
    PhysicalOp,
    PhysicalOp as _Op,
    ProjectOp,
    ReorderOp,
    Scan,
    UnionOp,
    plan_query,
)
from repro.query.predicates import AttrRef, Predicate
from repro.query.validate import validate_query

__all__ = [
    "PreparedQuery",
    "prepare",
    "evaluate",
    "execute_symbolic",
    "execute_deterministic",
]


@dataclass(frozen=True)
class PreparedQuery:
    """A query carried through the whole step-I pipeline, reusable across
    executions (and, for the per-world engines, across worlds)."""

    query: Query
    optimized: Query
    plan: PhysicalOp
    trace: tuple[RuleFiring, ...]
    schema: Schema
    #: Per-operator compile cache (predicate accessors, key getters),
    #: keyed on operator identity.  Shared by every execution of this
    #: prepared plan, so the per-world engines compile each operator once.
    op_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )


def prepare(
    query: Query,
    catalog: Mapping[str, Schema],
    cardinalities: Mapping[str, int] | None = None,
    *,
    optimize: bool = True,
    extract_joins: bool = True,
) -> PreparedQuery:
    """Validate, logically optimize and physically plan ``query``."""
    schema = validate_query(query, catalog)
    if optimize:
        optimized, trace = optimize_traced(query, catalog)
    else:
        optimized, trace = query, ()
    plan = plan_query(
        optimized, catalog, cardinalities, extract_joins=extract_joins
    )
    return PreparedQuery(query, optimized, plan, trace, schema)


def evaluate(query: Query, db: PVCDatabase, *, optimize: bool = True) -> PVCTable:
    """Step I end to end: the pvc-table of symbolic result tuples."""
    prepared = prepare(
        query, db.catalog(), db.cardinalities(), optimize=optimize
    )
    return execute_symbolic(prepared, db)


def execute_symbolic(prepared: PreparedQuery, db: PVCDatabase) -> PVCTable:
    """Execute the plan symbolically, constructing annotations in ``K``."""
    rows = _SymbolicExecutor(db, prepared.op_cache).rows(prepared.plan)
    return PVCTable(
        prepared.plan.schema,
        (PVCRow(values, annotation) for values, annotation in rows),
    )


def execute_deterministic(
    prepared: PreparedQuery,
    world: Mapping[str, Relation],
    semiring,
    *,
    codegen: bool | None = None,
) -> Relation:
    """Execute the plan on one deterministic world (concrete multiplicities).

    By default this runs the plan's compiled kernel (see
    :mod:`repro.codegen`), falling back to the tree-walking interpreter
    when the plan has no compiled form.  ``codegen=False`` — or the
    ``REPRO_CODEGEN=0`` environment escape hatch — forces the
    interpreter; the two produce bit-identical relations.
    """
    from repro.codegen import codegen_enabled, kernel_for
    from repro.resilience.deadline import check_deadline

    if codegen_enabled(codegen):
        kernel = kernel_for(prepared, semiring)
        if kernel is not None:
            return Relation.from_mapping(
                prepared.plan.schema,
                semiring,
                kernel.execute(world, check_deadline=check_deadline),
            )
    executor = _DeterministicExecutor(world, semiring, prepared.op_cache)
    return Relation.from_mapping(
        prepared.plan.schema, semiring, executor.tuples(prepared.plan)
    )


# -- predicate compilation ----------------------------------------------------


def _compile_atoms(predicate: Predicate, schema: Schema) -> list:
    """Lower a conjunction to ``(left_index, left_const, op, right_index,
    right_const)`` tuples resolving operands positionally — no per-row
    attribute dictionaries on the hot filter path."""
    compiled = []
    for atom in predicate.atoms():
        left, right = atom.left, atom.right
        if isinstance(left, AttrRef):
            left_index, left_const = schema.index(left.name), None
        else:
            left_index, left_const = None, left.value
        if isinstance(right, AttrRef):
            right_index, right_const = schema.index(right.name), None
        else:
            right_index, right_const = None, right.value
        compiled.append((left_index, left_const, atom.op, right_index, right_const))
    return compiled


def _mul(a: SemiringExpr, b: SemiringExpr) -> SemiringExpr:
    """``a ·_K b`` with fast identity paths for the hot join loops."""
    if a is ONE or a.is_one():
        return b
    if b is ONE or b.is_one():
        return a
    return sprod((a, b))


# -- symbolic execution -------------------------------------------------------


class _OpCompileCache:
    """Per-plan memo of compiled per-operator accessors.

    Keyed on operator identity (the :class:`PreparedQuery` keeps the plan
    alive); shared across executions and across the symbolic and
    deterministic modes, so per-world engines compile each operator once.
    """

    def __init__(self, cache: dict):
        self.cache = cache

    def _cached(self, op: _Op, factory):
        key = id(op)
        entry = self.cache.get(key)
        if entry is None:
            entry = self.cache[key] = factory(op)
        return entry

    def _filter_atoms(self, op: Filter) -> list:
        return self._cached(
            op, lambda op: _compile_atoms(op.predicate, op.child.schema)
        )

    def _join_keys(self, op: HashJoin) -> tuple:
        def compile_keys(op):
            left_schema, right_schema = op.left.schema, op.right.schema
            right_indices = tuple(
                right_schema.index(a) for a in op.right_keys
            )
            left_getter = _tuple_getter(
                [left_schema.index(a) for a in op.left_keys]
            )
            return left_getter, right_indices, _tuple_getter(right_indices)

        return self._cached(op, compile_keys)

    def _attribute_getter(self, op) -> object:
        return self._cached(
            op,
            lambda op: _tuple_getter(
                [op.child.schema.index(a) for a in op.attributes]
            ),
        )

    def _group_accessors(self, op: GroupAggOp) -> tuple:
        def compile_group(op):
            child_schema = op.child.schema
            group_indices = [child_schema.index(a) for a in op.groupby]
            agg_indices = tuple(
                None
                if spec.attribute is None
                else child_schema.index(spec.attribute)
                for spec in op.aggregations
            )
            return _tuple_getter(group_indices), agg_indices

        return self._cached(op, compile_group)


class _SymbolicExecutor(_OpCompileCache):
    """Evaluates plans to lists of ``(values, annotation)`` pairs."""

    def __init__(self, db: PVCDatabase, cache: dict):
        super().__init__(cache)
        self.db = db

    def rows(self, op: _Op) -> list:
        method = self._DISPATCH[type(op)]
        return method(self, op)

    def _scan(self, op: Scan) -> list:
        return self.db[op.name].scan_rows()

    def _empty(self, op: EmptyResult) -> list:
        return []

    def _filter(self, op: Filter) -> list:
        child_rows = self.rows(op.child)
        atoms = self._filter_atoms(op)
        result = []
        for values, annotation in child_rows:
            keep = True
            symbolic = None
            for left_index, left_const, cmp_op, right_index, right_const in atoms:
                left = values[left_index] if left_index is not None else left_const
                right = values[right_index] if right_index is not None else right_const
                if isinstance(left, ModuleExpr) or isinstance(right, ModuleExpr):
                    # Symbolic condition: Φ ·_K [A θ B] (Figure 4, σ rule).
                    condition = compare(left, cmp_op, right)
                    symbolic = (
                        condition if symbolic is None else _mul(symbolic, condition)
                    )
                elif not cmp_op(left, right):
                    keep = False
                    break
            if not keep:
                continue
            if symbolic is not None:
                annotation = _mul(annotation, symbolic)
            result.append((values, annotation))
        return result

    def _hash_join(self, op: HashJoin) -> list:
        left_key, right_indices, right_key = self._join_keys(op)
        if isinstance(op.right, Scan):
            # Base-table build side: reuse the table's cached hash index.
            buckets = self.db[op.right.name].hash_index(right_indices)
        else:
            buckets = {}
            for values, annotation in self.rows(op.right):
                key = right_key(values)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = bucket = []
                bucket.append((values, annotation))
        result = []
        empty = ()
        for values, annotation in self.rows(op.left):
            for right_values, right_annotation in buckets.get(
                left_key(values), empty
            ):
                result.append(
                    (values + right_values, _mul(annotation, right_annotation))
                )
        return result

    def _product(self, op: NestedLoopProduct) -> list:
        right_rows = self.rows(op.right)
        result = []
        for values, annotation in self.rows(op.left):
            if annotation.is_zero():
                continue
            for right_values, right_annotation in right_rows:
                result.append(
                    (values + right_values, _mul(annotation, right_annotation))
                )
        return result

    def _project(self, op: ProjectOp) -> list:
        getter = self._attribute_getter(op)
        return _merge_rows(
            (getter(values), annotation)
            for values, annotation in self.rows(op.child)
        )

    def _reorder(self, op: ReorderOp) -> list:
        getter = self._attribute_getter(op)
        return [
            (getter(values), annotation)
            for values, annotation in self.rows(op.child)
        ]

    def _extend(self, op: ExtendOp) -> list:
        index = self._cached(op, lambda op: op.child.schema.index(op.source))
        return [
            (values + (values[index],), annotation)
            for values, annotation in self.rows(op.child)
        ]

    def _union(self, op: UnionOp) -> list:
        left = self.rows(op.left)
        right = self.rows(op.right)
        return _merge_rows(left + right)

    def _group_agg(self, op: GroupAggOp) -> list:
        group_key, agg_indices = self._group_accessors(op)
        groups: dict[tuple, list] = {}
        for values, annotation in self.rows(op.child):
            if annotation.is_zero():
                continue
            key = group_key(values)
            group = groups.get(key)
            if group is None:
                groups[key] = group = []
            group.append((values, annotation))
        if not op.groupby and not groups:
            groups[()] = []  # $∅ always yields one tuple (Figure 4).

        result = []
        for key, members in groups.items():
            values = list(key)
            for spec, index in zip(op.aggregations, agg_indices):
                values.append(_gamma(spec, index, members))
            if op.groupby:
                # Non-emptiness guard [Σ_K Φ ≠ 0_K].
                annotation = compare(
                    ssum(annotation for _, annotation in members), "!=", ZERO
                )
            else:
                annotation = ONE
            result.append((tuple(values), annotation))
        return result

    _DISPATCH = {
        Scan: _scan,
        EmptyResult: _empty,
        Filter: _filter,
        HashJoin: _hash_join,
        NestedLoopProduct: _product,
        ProjectOp: _project,
        ReorderOp: _reorder,
        ExtendOp: _extend,
        UnionOp: _union,
        GroupAggOp: _group_agg,
    }


def _gamma(spec, index, members) -> ModuleExpr:
    """``Γ = Σ_AGG (Φ ⊗ B)``, resp. ``Σ_SUM (Φ ⊗ 1)`` for COUNT."""
    monoid = SUM if spec.monoid == COUNT else spec.monoid
    terms = []
    for values, annotation in members:
        if index is None or spec.monoid == COUNT:
            value = 1
        else:
            value = values[index]
            if isinstance(value, ModuleExpr):
                raise QueryValidationError(
                    f"cannot aggregate over semimodule values in "
                    f"attribute {spec.attribute!r}"
                )
        terms.append(tensor(annotation, MConst(monoid, value)))
    return aggsum(monoid, terms)


# -- deterministic execution --------------------------------------------------


class _DeterministicExecutor(_OpCompileCache):
    """Evaluates plans to ``{values: multiplicity}`` mappings over one
    possible world — the same operator tree as the symbolic mode, with
    annotations replaced by concrete semiring multiplicities.

    A fresh executor runs per world, but the compile cache is the
    prepared query's, so predicates and key getters compile once across
    all enumerated/sampled worlds."""

    def __init__(self, world: Mapping[str, Relation], semiring, cache: dict):
        super().__init__(cache)
        self.world = world
        self.semiring = semiring

    def tuples(self, op: _Op) -> dict:
        method = self._DISPATCH[type(op)]
        return method(self, op)

    def _relation(self, name: str) -> Relation:
        try:
            return self.world[name]
        except KeyError:
            raise QueryValidationError(
                f"world has no relation named {name!r}"
            ) from None

    def _scan(self, op: Scan) -> dict:
        return dict(self._relation(op.name).tuples())

    def _empty(self, op: EmptyResult) -> dict:
        return {}

    def _filter(self, op: Filter) -> dict:
        atoms = self._filter_atoms(op)
        result = {}
        for values, multiplicity in self.tuples(op.child).items():
            keep = True
            for left_index, left_const, cmp_op, right_index, right_const in atoms:
                left = values[left_index] if left_index is not None else left_const
                right = values[right_index] if right_index is not None else right_const
                if isinstance(left, ModuleExpr) or isinstance(right, ModuleExpr):
                    keep = False  # mirrors `evaluate(row) is True` exactly
                    break
                if not cmp_op(left, right):
                    keep = False
                    break
            if keep:
                result[values] = multiplicity
        return result

    def _hash_join(self, op: HashJoin) -> dict:
        left_key, _, right_key = self._join_keys(op)
        if isinstance(op.right, Scan):
            # Base-relation build side: the world relation's hash index.
            buckets = self._relation(op.right.name).hash_index(op.right_keys)
        else:
            buckets = {}
            for values, multiplicity in self.tuples(op.right).items():
                key = right_key(values)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = bucket = []
                bucket.append((values, multiplicity))
        mul = self.semiring.mul
        result: dict = {}
        empty = ()
        for values, multiplicity in self.tuples(op.left).items():
            for right_values, right_multiplicity in buckets.get(
                left_key(values), empty
            ):
                result[values + right_values] = mul(
                    multiplicity, right_multiplicity
                )
        return result

    def _product(self, op: NestedLoopProduct) -> dict:
        right_tuples = self.tuples(op.right)
        mul = self.semiring.mul
        result: dict = {}
        for values, multiplicity in self.tuples(op.left).items():
            for right_values, right_multiplicity in right_tuples.items():
                result[values + right_values] = mul(
                    multiplicity, right_multiplicity
                )
        return result

    def _merge_into(self, result: dict, values: tuple, multiplicity) -> None:
        semiring = self.semiring
        current = result.get(values)
        if current is None:
            result[values] = multiplicity
            return
        combined = semiring.add(current, multiplicity)
        if combined == semiring.zero:
            del result[values]
        else:
            result[values] = combined

    def _project(self, op: ProjectOp) -> dict:
        getter = self._attribute_getter(op)
        result: dict = {}
        for values, multiplicity in self.tuples(op.child).items():
            self._merge_into(result, getter(values), multiplicity)
        return result

    def _reorder(self, op: ReorderOp) -> dict:
        getter = self._attribute_getter(op)
        return {
            getter(values): multiplicity
            for values, multiplicity in self.tuples(op.child).items()
        }

    def _extend(self, op: ExtendOp) -> dict:
        index = self._cached(op, lambda op: op.child.schema.index(op.source))
        return {
            values + (values[index],): multiplicity
            for values, multiplicity in self.tuples(op.child).items()
        }

    def _union(self, op: UnionOp) -> dict:
        result = dict(self.tuples(op.left))
        for values, multiplicity in self.tuples(op.right).items():
            self._merge_into(result, values, multiplicity)
        return result

    def _group_agg(self, op: GroupAggOp) -> dict:
        group_key, agg_indices = self._group_accessors(op)
        groups: dict[tuple, list] = {}
        for values, multiplicity in self.tuples(op.child).items():
            key = group_key(values)
            group = groups.get(key)
            if group is None:
                groups[key] = group = []
            group.append((values, multiplicity))
        if not op.groupby and not groups:
            groups[()] = []  # $∅ always produces one tuple.
        semiring = self.semiring
        result: dict = {}
        for key, members in groups.items():
            aggregated = []
            for spec, index in zip(op.aggregations, agg_indices):
                monoid = spec.monoid
                acc = monoid.zero
                for values, multiplicity in members:
                    contribution = (
                        1
                        if index is None or isinstance(monoid, CountMonoid)
                        else values[index]
                    )
                    acc = monoid.add(
                        acc, monoid.act(multiplicity, contribution, semiring)
                    )
                aggregated.append(acc)
            result[key + tuple(aggregated)] = semiring.one
        return result

    _DISPATCH = {
        Scan: _scan,
        EmptyResult: _empty,
        Filter: _filter,
        HashJoin: _hash_join,
        NestedLoopProduct: _product,
        ProjectOp: _project,
        ReorderOp: _reorder,
        ExtendOp: _extend,
        UnionOp: _union,
        GroupAggOp: _group_agg,
    }
