"""Tests for Graphviz DOT export of d-trees."""

from repro.algebra.parser import parse_expr
from repro.algebra.monoid import MAX
from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.core.export import to_dot
from repro.prob.variables import VariableRegistry


def compiler_for(names, p=0.5):
    reg = VariableRegistry()
    for name in names:
        reg.bernoulli(name, p)
    return Compiler(reg, BOOLEAN)


class TestToDot:
    def test_read_once_tree(self):
        compiler = compiler_for("abcd")
        tree = compiler.compile(parse_expr("a*b + c*d"))
        dot = to_dot(tree)
        assert dot.startswith("digraph dtree {")
        assert dot.rstrip().endswith("}")
        assert "⊕" in dot and "⊙" in dot
        for name in "abcd":
            assert f'label="{name}"' in dot

    def test_mutex_edges_are_labelled(self):
        compiler = compiler_for("abc")
        tree = compiler.compile(parse_expr("(a+b)*(a+c)"))
        dot = to_dot(tree)
        assert "⊔ a" in dot
        assert "a←False" in dot and "a←True" in dot

    def test_module_tree_mentions_monoid(self):
        compiler = compiler_for(["x", "y"])
        tree = compiler.compile(
            parse_expr("x@10 + y@20", monoid=MAX)
        )
        dot = to_dot(tree)
        assert "MAX" in dot
        assert "⊗" in dot

    def test_shared_nodes_rendered_once(self):
        compiler = compiler_for("ab")
        expr = parse_expr("a*b")
        tree = compiler.compile(expr)
        dot = to_dot(tree)
        # one definition line per unique node
        definitions = [line for line in dot.splitlines() if "label=" in line]
        assert len(definitions) == tree.dag_size()

    def test_custom_graph_name(self):
        compiler = compiler_for("a")
        tree = compiler.compile(parse_expr("a"))
        assert to_dot(tree, "figure6").startswith("digraph figure6")

    def test_quotes_escaped(self):
        compiler = compiler_for("a")
        tree = compiler.compile(parse_expr("a + 1"))
        dot = to_dot(tree)
        assert '\\"' not in dot or dot.count('"') % 2 == 0
