"""Conditional expressions ``[Φ θ Ψ]`` and ``[α θ β]`` (Section 3, Eq. 2).

A conditional expression compares two semiring expressions, two semimodule
expressions, or an expression with a constant, and evaluates to ``1_S`` when
the comparison holds and ``0_S`` otherwise.  Conditional expressions are
themselves semiring expressions (Figure 2) — they appear multiplied into
tuple annotations, e.g. the group non-emptiness guards ``[Σ Φ ≠ 0_K]``
produced by the aggregation rewriting and the HAVING-style conditions
``[Σ_MAX Φᵢ ⊗ mᵢ ≤ 50]`` of the paper's running example.
"""

from __future__ import annotations

import operator
from typing import Callable

from repro.algebra.expressions import Expr, SConst, SemiringExpr
from repro.algebra.semimodule import MConst, ModuleExpr
from repro.errors import AlgebraError

__all__ = ["Compare", "ComparisonOp", "compare", "COMPARISON_OPS"]


class ComparisonOp:
    """A binary comparison relation θ ∈ {=, ≠, ≤, ≥, <, >}."""

    def __init__(self, symbol: str, fn: Callable, negation_symbol: str):
        self.symbol = symbol
        self._fn = fn
        self._negation_symbol = negation_symbol

    def __call__(self, a, b) -> bool:
        return self._fn(a, b)

    @property
    def negation(self) -> "ComparisonOp":
        """The complementary relation, e.g. ``≤ ↦ >``."""
        return COMPARISON_OPS[self._negation_symbol]

    def __repr__(self):
        return self.symbol

    def __eq__(self, other):
        return isinstance(other, ComparisonOp) and self.symbol == other.symbol

    def __hash__(self):
        return hash(("ComparisonOp", self.symbol))


#: The comparison relations of the Figure-2 grammar, by symbol.  The
#: alternative spellings ``==`` and ``<>`` are accepted for convenience.
COMPARISON_OPS: dict[str, ComparisonOp] = {}


def _register(symbol: str, fn: Callable, negation: str, *aliases: str):
    op = ComparisonOp(symbol, fn, negation)
    COMPARISON_OPS[symbol] = op
    for alias in aliases:
        COMPARISON_OPS[alias] = op
    return op


EQ = _register("=", operator.eq, "!=", "==")
NE = _register("!=", operator.ne, "=", "<>")
LE = _register("<=", operator.le, ">")
GE = _register(">=", operator.ge, "<")
LT = _register("<", operator.lt, ">=")
GT = _register(">", operator.gt, "<=")


def _coerce_operand(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int)):
        return SConst(int(value))
    raise AlgebraError(
        f"cannot use {value!r} as a comparison operand; expected an "
        f"expression or an integer constant"
    )


class Compare(SemiringExpr):
    """A conditional expression ``[left θ right]``.

    Both operands are expressions (semiring or semimodule); the node itself
    is a semiring expression evaluating to ``1_S`` or ``0_S`` per Eq. (2).
    Comparing a semimodule expression against a plain integer constant is
    the common case (``[Σ_MAX ... ≤ 50]``); use :func:`compare` which
    coerces integers to :class:`SConst`.
    """

    __slots__ = ("left", "op", "right", "children")

    def __init__(self, left: Expr, op: ComparisonOp, right: Expr):
        self.left = left
        self.op = op
        self.right = right
        self.children = (left, right)
        self._finalize()

    def _compute_key(self):
        return ("?", self.op.symbol, self.left.key, self.right.key)

    def _compute_hash(self):
        return hash(("?", self.op.symbol, self.left._hash, self.right._hash))

    def _compute_vars(self):
        return self.left.variables | self.right.variables

    def substitute(self, mapping):
        variables = self.variables
        if all(name not in variables for name in mapping):
            return self
        return compare(
            self.left.substitute(mapping), self.op, self.right.substitute(mapping)
        )

    def __repr__(self):
        return f"[{self.left!r} {self.op.symbol} {self.right!r}]"


def compare(left, op, right) -> SemiringExpr:
    """Smart constructor for conditional expressions.

    ``op`` may be a :class:`ComparisonOp` or its symbol.  Variable-free
    comparisons between two constants of the *same* kind fold immediately
    to ``1_K``/``0_K``; anything involving variables stays symbolic.
    """
    if isinstance(op, str):
        try:
            op = COMPARISON_OPS[op]
        except KeyError:
            raise AlgebraError(
                f"unknown comparison operator {op!r}; "
                f"expected one of {sorted(set(COMPARISON_OPS))}"
            ) from None
    # Raw numbers compared against a semimodule side become monoid
    # constants directly — monoid carriers admit values (e.g. negatives,
    # ±∞) that the semiring constant type does not.
    if isinstance(left, ModuleExpr) and isinstance(right, (int, float)):
        right = MConst(left.monoid, right)
    if isinstance(right, ModuleExpr) and isinstance(left, (int, float)):
        left = MConst(right.monoid, left)
    left = _coerce_operand(left)
    right = _coerce_operand(right)
    if isinstance(left, ModuleExpr) != isinstance(right, ModuleExpr):
        # Mixed semimodule-vs-semiring comparisons only make sense against
        # plain constants, which stand for values of the respective carrier.
        if isinstance(left, SConst):
            left = MConst(right.monoid, left.value)
        elif isinstance(right, SConst):
            right = MConst(left.monoid, right.value)
        else:
            raise AlgebraError(
                f"cannot compare the semimodule and semiring expressions "
                f"{left!r} and {right!r}"
            )
    if not left.variables and not right.variables:
        left_value = left.value if isinstance(left, (SConst, MConst)) else None
        right_value = right.value if isinstance(right, (SConst, MConst)) else None
        if left_value is not None and right_value is not None:
            return SConst(int(op(left_value, right_value)))
    return Compare(left, op, right)
