"""Wall time of the self-hosted static-analysis gate.

The ``static-analysis`` CI job runs ``python -m repro.analysis
src/repro`` on every push, so its latency is part of the build budget.
This benchmark records the per-checker split over the real tree:

* ``full`` — all four checkers in one pass, exactly the CI gate;
* one series per checker (``locks``, ``forksafety``, ``kernels``,
  ``statskeys``) run in isolation, which shows where the time goes;
* ``parse-only`` — scanning with no checkers, the file-IO/AST floor.

The floor dominates: parsing + tokenizing the tree costs ~0.5 s and the
four checkers together add ~0.1 s on top — including the kernel
verifier's differential corpus (every fused operator shape in both
semirings), which is cheap because the corpus databases are tiny and
plan compilation hits the codegen cache across entries.

Flags: ``--smoke`` (single run per series for CI), ``--runs N``
(default 5; best-of is reported alongside the mean), ``--json PATH``,
``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pathlib
import statistics
import sys
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro.analysis import analyze_paths
from repro.analysis.checkers import (
    ForkSafetyChecker,
    KernelChecker,
    LockDisciplineChecker,
    StatsKeyChecker,
    all_checkers,
)

SRC_REPRO = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

SERIES = [
    ("full", all_checkers),
    ("locks", lambda: [LockDisciplineChecker()]),
    ("forksafety", lambda: [ForkSafetyChecker()]),
    ("kernels", lambda: [KernelChecker()]),
    ("statskeys", lambda: [StatsKeyChecker()]),
    ("parse-only", lambda: []),
]


def measure(checkers_factory, runs: int) -> tuple[float, float, int]:
    """(mean_seconds, best_seconds, files_scanned) over ``runs`` passes."""
    times = []
    files_scanned = 0
    for _ in range(runs):
        start = time.perf_counter()
        result = analyze_paths([str(SRC_REPRO)], checkers=checkers_factory())
        times.append(time.perf_counter() - start)
        files_scanned = result.files_scanned
        if not result.clean:  # the gate itself must hold while we time it
            raise SystemExit(
                "tree is not clean:\n"
                + "\n".join(f.render() for f in result.findings)
            )
    return statistics.mean(times), min(times), files_scanned


def flag_value(flag: str, default: int) -> int:
    args = sys.argv[1:]
    for index, arg in enumerate(args):
        if arg == flag and index + 1 < len(args):
            return int(args[index + 1])
        if arg.startswith(flag + "="):
            return int(arg.split("=", 1)[1])
    return default


def main() -> None:
    smoke = smoke_mode()
    runs = 1 if smoke else flag_value("--runs", 5)
    report = BenchReport("analysis", runs=runs, smoke=smoke)
    rows = []
    for name, factory in SERIES:
        mean, best, files_scanned = measure(factory, runs)
        report.add(
            name,
            {"files": files_scanned},
            mean=round(mean, 4),
            best=round(best, 4),
        )
        rows.append((name, files_scanned, f"{mean:.3f}", f"{best:.3f}"))
    print_series(
        "Self-hosted analyzer wall time over src/repro",
        ["series", "files", "mean_s", "best_s"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
