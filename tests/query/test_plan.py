"""Tests for the logical optimizer (selection merging, projection pushdown)."""

import random

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase, Schema
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    relation,
)
from repro.query.plan import (
    collapse_projections,
    merge_selections,
    optimize,
    pushdown_projections,
)

CATALOG = {
    "R": Schema(["a", "b", "c"]),
    "S": Schema(["d", "e"]),
}


def sample_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "b", "c"])
    rng = random.Random(5)
    for i in range(4):
        reg.bernoulli(f"r{i}", rng.uniform(0.2, 0.9))
        r.add((rng.randint(1, 2), rng.randint(1, 3), rng.randint(1, 9)), Var(f"r{i}"))
    s = db.create_table("S", ["d", "e"])
    for i in range(3):
        reg.bernoulli(f"s{i}", rng.uniform(0.2, 0.9))
        s.add((rng.randint(1, 2), rng.randint(1, 9)), Var(f"s{i}"))
    return db


class TestRewrites:
    def test_merge_selections(self):
        query = Select(Select(relation("R"), eq("a", 1)), cmp_("b", "<", 3))
        merged = merge_selections(query)
        assert isinstance(merged, Select)
        assert not isinstance(merged.child, Select)
        assert len(merged.predicate.atoms()) == 2

    def test_collapse_projections(self):
        query = Project(Project(relation("R"), ["a", "b"]), ["a"])
        collapsed = collapse_projections(query)
        assert isinstance(collapsed.child, type(relation("R")))
        assert collapsed.attributes == ("a",)

    def test_pushdown_narrows_base_relations(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("a", "d")), ["b"]
        )
        optimized = pushdown_projections(query, CATALOG)
        # R is narrowed to the join + output attributes; c disappears.
        base_projects = [
            node
            for node in optimized.walk()
            if isinstance(node, Project) and not isinstance(node.child, Product)
        ]
        narrowed = {tuple(sorted(p.attributes)) for p in base_projects}
        assert ("a", "b") in narrowed

    def test_pushdown_preserves_schema(self):
        query = Project(
            Select(Product(relation("R"), relation("S")), eq("a", "d")), ["b"]
        )
        optimized = optimize(query, CATALOG)
        assert optimized.schema(CATALOG) == query.schema(CATALOG)

    def test_no_pushdown_below_count(self):
        # Inserting a merging projection below COUNT would change
        # multiplicities; the optimizer must leave the child schema whole.
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("n", "COUNT")])
        optimized = optimize(query, CATALOG)
        assert not any(
            isinstance(node, Project) for node in optimized.walk()
        )

    def test_pushdown_below_min_is_allowed(self):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "b")])
        optimized = optimize(query, CATALOG)
        projects = [n for n in optimized.walk() if isinstance(n, Project)]
        assert projects and set(projects[0].attributes) == {"a", "b"}


class TestEquivalence:
    """Optimised plans produce identical probabilities."""

    def queries(self):
        yield Project(
            Select(Product(relation("R"), relation("S")), eq("a", "d")), ["b"]
        )
        yield Select(Select(relation("R"), cmp_("b", "<=", 2)), cmp_("c", ">=", 2))
        yield GroupAgg(relation("R"), ["a"], [AggSpec.of("n", "COUNT")])
        yield GroupAgg(
            Select(Product(relation("R"), relation("S")), eq("a", "d")),
            ["b"],
            [AggSpec.of("m", "MIN", "e")],
        )
        yield Project(
            Select(
                GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "c")]),
                cmp_("t", ">=", 5),
            ),
            ["a"],
        )

    def test_optimized_equals_original(self):
        db = sample_db()
        catalog = {name: t.schema for name, t in db.tables.items()}
        engine = SproutEngine(db)
        naive = NaiveEngine(db)
        for query in self.queries():
            optimized = optimize(query, catalog)
            original = naive.tuple_probabilities(query)
            fast = engine.run(optimized).tuple_probabilities()
            assert set(original) == set(fast), query
            for key in original:
                assert fast[key] == pytest.approx(original[key]), (query, key)


class TestDuplicateBaseRows:
    """Base tables with duplicate tuples merge annotations (Def. 6)."""

    def test_duplicates_merge_for_count(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=BOOLEAN)
        r = db.create_table("R", ["g", "v"])
        reg.bernoulli("x", 0.5)
        reg.bernoulli("y", 0.5)
        r.add((1, 10), Var("x"))
        r.add((1, 10), Var("y"))
        query = GroupAgg(relation("R"), ["g"], [AggSpec.of("n", "COUNT")])
        compiled = SproutEngine(db).run(query).tuple_probabilities()
        brute = NaiveEngine(db).tuple_probabilities(query)
        assert compiled.keys() == brute.keys()
        for key in brute:
            assert compiled[key] == pytest.approx(brute[key])
        assert (1, 2) not in compiled  # a set never holds the tuple twice
