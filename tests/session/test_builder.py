"""The fluent query builder lowers to the documented ``Q`` algebra."""

import pytest

from repro import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    QueryBuilder,
    Select,
    Union,
    cmp_,
    conj,
    connect,
    count_,
    eq,
    lit,
    max_,
    min_,
    prod_,
    relation,
    sum_,
)
from repro.errors import QueryValidationError
from repro.query.ast import Extend


def b(name="R"):
    return QueryBuilder(name)


class TestLowering:
    def test_base_relation(self):
        assert repr(b().build()) == repr(relation("R"))

    def test_where_select(self):
        built = b().where(cmp_("a", "<=", lit(3))).select("a").build()
        manual = Project(
            Select(relation("R"), cmp_("a", "<=", lit(3))), ["a"]
        )
        assert repr(built) == repr(manual)

    def test_where_triples_and_kwargs(self):
        built = b().where(("a", "<=", 3), kind="x").build()
        manual = Select(
            relation("R"),
            conj(cmp_("a", "<=", lit(3)), cmp_("kind", "=", lit("x"))),
        )
        assert repr(built) == repr(manual)

    def test_where_kwargs_are_literals_not_attributes(self):
        # eq("kind", "x") would read "x" as an attribute reference; the
        # builder's keyword form must produce a constant comparison.
        built = b().where(kind="x").build()
        assert repr(built.predicate) == "kind = 'x'"

    def test_empty_where_is_identity(self):
        builder = b()
        assert builder.where() is builder

    def test_group_by_agg(self):
        built = b().group_by("g").agg(total=sum_("a"), n=count_()).build()
        manual = GroupAgg(
            relation("R"),
            ("g",),
            (AggSpec.of("total", "SUM", "a"), AggSpec.of("n", "COUNT")),
        )
        assert repr(built) == repr(manual)

    def test_agg_as_and_default_names(self):
        built = b().agg(min_("a").as_("lo"), max_("a"), prod_("a")).build()
        outputs = [spec.output for spec in built.aggregations]
        assert outputs == ["lo", "max_a", "prod_a"]
        assert built.groupby == ()

    def test_agg_keyword_name_wins_over_as_(self):
        built = b().agg(total=min_("a").as_("ignored")).build()
        assert [spec.output for spec in built.aggregations] == ["total"]

    def test_agg_keyword_name_renames_aggspec(self):
        built = b().agg(total=AggSpec.of("x", "SUM", "a")).build()
        assert [spec.output for spec in built.aggregations] == ["total"]

    def test_group_by_requires_aggregations(self):
        with pytest.raises(QueryValidationError):
            b().group_by("g").agg()

    def test_join_union_product_extend(self):
        joined = b("R").join("S", on=[("a", "b")]).build()
        assert repr(joined) == repr(
            Select(Product(relation("R"), relation("S")), eq("a", "b"))
        )
        unioned = b("R").union(b("S")).build()
        assert repr(unioned) == repr(Union(relation("R"), relation("S")))
        extended = b("R").extend("b", "a").build()
        assert repr(extended) == repr(Extend(relation("R"), "b", "a"))

    def test_coercion_errors(self):
        with pytest.raises(QueryValidationError):
            b().where(42)
        with pytest.raises(QueryValidationError):
            b().agg(42)
        with pytest.raises(QueryValidationError):
            b().union(42)

    def test_builders_are_immutable(self):
        base = b()
        filtered = base.where(("a", "=", 1))
        assert base.build() is not filtered.build()
        assert repr(base.build()) == "R"


class TestBoundBuilders:
    def test_unbound_builder_cannot_run(self):
        with pytest.raises(QueryValidationError):
            b().run()
        with pytest.raises(QueryValidationError):
            b().classify()

    def test_bound_builder_runs_and_classifies(self):
        s = connect()
        t = s.table("R", ["a"])
        t.insert((1,), p=0.4).insert((2,), p=0.5)
        builder = s.table("R").where(("a", "<=", 1)).select("a")
        assert builder.classify().tractable
        result = builder.run(engine="sprout")
        assert result.tuple_probabilities() == {(1,): pytest.approx(0.4)}

    def test_table_handle_reports_rows(self):
        s = connect()
        t = s.table("R", ["a", "p"])
        t.insert_many([((1, 2), 0.5), ((3, 4), 0.25)])
        assert len(t) == 2
        assert "a" in t.pretty()
        assert t.schema.attributes == ("a", "p")
