"""Deterministic relations with semiring-valued multiplicities.

A possible world of a pvc-database is an ordinary relational database in
which every tuple carries a *multiplicity from the concrete semiring*
(Definition 6 and Table 1): a truth value under set semantics (Boolean
semiring) or a natural number under bag semantics.  This module implements
positive relational algebra with aggregation directly on such relations;
it is the substrate of the brute-force possible-worlds engine that serves
as the library's exactness oracle.

The operator semantics mirror Figure 4 with annotations replaced by
concrete multiplicities: joint use multiplies, alternative use adds, and
the ``$`` operator folds ``multiplicity ⊗ value`` contributions in the
aggregation monoid.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.algebra.monoid import CountMonoid, Monoid
from repro.algebra.semiring import Semiring
from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["Relation"]


class Relation:
    """A deterministic relation: tuples with semiring multiplicities."""

    __slots__ = ("schema", "semiring", "_tuples", "_version", "_index_cache", "_column_cache")

    def __init__(
        self,
        schema: Schema,
        semiring: Semiring,
        tuples: Iterable[tuple[tuple, object]] = (),
    ):
        self.schema = schema
        self.semiring = semiring
        self._tuples: dict[tuple, object] = {}
        #: Mutation counter keying the memoised hash-index and column
        #: views.  The row *count* is not a safe key here (unlike
        #: PVCTable, which is append-only): ``add`` can change a
        #: multiplicity — or cancel a tuple — without changing ``len``.
        self._version = 0
        self._index_cache: dict = {}
        self._column_cache: dict = {}
        for values, multiplicity in tuples:
            self.add(values, multiplicity)

    @property
    def epoch(self) -> int:
        """The relation's monotonic mutation counter (cache validity key).

        Same discipline as :attr:`repro.db.pvc_table.PVCTable.epoch`; the
        shared name lets cache layers record mixed epoch vectors.
        """
        return self._version

    def invalidate_caches(self) -> None:
        """Bump the epoch and drop the memoised index/column views."""
        self._version += 1
        self._index_cache.clear()
        self._column_cache.clear()

    def add(self, values: Sequence, multiplicity=None):
        """Add a tuple (alternative use: multiplicities combine additively)."""
        values = tuple(values)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"tuple of arity {len(values)} does not match schema "
                f"{self.schema!r}"
            )
        if multiplicity is None:
            multiplicity = self.semiring.one
        current = self._tuples.get(values, self.semiring.zero)
        combined = self.semiring.add(current, multiplicity)
        self._version += 1
        if combined == self.semiring.zero:
            self._tuples.pop(values, None)
        else:
            self._tuples[values] = combined

    @classmethod
    def from_mapping(
        cls, schema: Schema, semiring: Semiring, tuples: dict
    ) -> "Relation":
        """Adopt an already-merged ``{values: multiplicity}`` mapping.

        The fast constructor of the physical executor: callers guarantee
        the mapping holds no zero multiplicities, so the per-tuple
        :meth:`add` merging is skipped.
        """
        relation = cls(schema, semiring)
        relation._tuples = tuples
        return relation

    def hash_index(self, attributes: Sequence[str]) -> dict:
        """Buckets of ``(values, multiplicity)`` keyed on ``attributes``.

        The build side of a hash equi-join over this relation.  Built
        once per key set and memoised until the relation mutates, so
        repeated executions against the same world (the per-world
        engines, the compiled kernels) never rebuild an index.
        """
        from repro.db.pvc_table import tuple_getter

        key = tuple(attributes)
        cached = self._index_cache.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        key_of = tuple_getter([self.schema.index(a) for a in attributes])
        buckets: dict[tuple, list] = {}
        for values, multiplicity in self._tuples.items():
            bucket_key = key_of(values)
            bucket = buckets.get(bucket_key)
            if bucket is None:
                buckets[bucket_key] = bucket = []
            bucket.append((values, multiplicity))
        self._index_cache[key] = (self._version, buckets)
        return buckets

    def column(self, attribute: str) -> list:
        """The values of one attribute across all tuples, in tuple order.

        Memoised per attribute until the relation mutates — the columnar
        view repeated plans share instead of re-splitting rows.
        """
        cached = self._column_cache.get(attribute)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index = self.schema.index(attribute)
        values = [row[index] for row in self._tuples]
        self._column_cache[attribute] = (self._version, values)
        return values

    def columns(self, attributes: Sequence[str] | None = None) -> list:
        """Columnar view: one list per attribute (all attributes when
        ``attributes`` is None), aligned with :meth:`tuples` order."""
        if attributes is None:
            attributes = self.schema.attributes
        return [self.column(attribute) for attribute in attributes]

    def multiplicity(self, values: Sequence):
        """The multiplicity of a tuple (``0_S`` if absent)."""
        return self._tuples.get(tuple(values), self.semiring.zero)

    def tuples(self):
        """Iterate over ``(values, multiplicity)`` pairs with non-zero mult."""
        return self._tuples.items()

    def support(self) -> set:
        """The set of present tuples (non-zero multiplicity)."""
        return set(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, values) -> bool:
        return tuple(values) in self._tuples

    # -- positive relational algebra ----------------------------------------

    def select(self, predicate: Callable[[dict], bool]) -> "Relation":
        """σ: keep tuples satisfying ``predicate`` (given as attr dict)."""
        result = Relation(self.schema, self.semiring)
        for values, mult in self._tuples.items():
            if predicate(self.row_dict(values)):
                result.add(values, mult)
        return result

    def project(self, attributes: Sequence[str]) -> "Relation":
        """π: multiplicities of merged tuples combine additively."""
        indices = [self.schema.index(a) for a in attributes]
        result = Relation(self.schema.project(attributes), self.semiring)
        for values, mult in self._tuples.items():
            result.add(tuple(values[i] for i in indices), mult)
        return result

    def product(self, other: "Relation") -> "Relation":
        """×: joint use of data multiplies multiplicities."""
        if self.semiring != other.semiring:
            raise SchemaError("cannot combine relations over different semirings")
        result = Relation(self.schema.concat(other.schema), self.semiring)
        for left_values, left_mult in self._tuples.items():
            for right_values, right_mult in other._tuples.items():
                result.add(
                    left_values + right_values,
                    self.semiring.mul(left_mult, right_mult),
                )
        return result

    def union(self, other: "Relation") -> "Relation":
        """∪: alternative use of data adds multiplicities."""
        if self.schema.attributes != other.schema.attributes:
            raise SchemaError(
                f"union of incompatible schemas {self.schema!r} and "
                f"{other.schema!r}"
            )
        result = Relation(self.schema, self.semiring)
        for values, mult in self._tuples.items():
            result.add(values, mult)
        for values, mult in other._tuples.items():
            result.add(values, mult)
        return result

    def extend(self, new_attribute: str, source_attribute: str) -> "Relation":
        """δ: append a copy of ``source_attribute`` named ``new_attribute``."""
        index = self.schema.index(source_attribute)
        result = Relation(self.schema.extend(new_attribute), self.semiring)
        for values, mult in self._tuples.items():
            result.add(values + (values[index],), mult)
        return result

    def group_aggregate(
        self,
        groupby: Sequence[str],
        aggregations: Sequence[tuple[str, Monoid, str | None]],
    ) -> "Relation":
        """$: group by ``groupby``, aggregate ``(out_name, monoid, in_attr)``.

        For COUNT the input attribute may be ``None`` (every present tuple
        contributes 1).  A grouped result tuple exists once per non-empty
        group; with no group-by attributes a single tuple always exists,
        holding the neutral element on empty input (Figure 4).
        """
        group_indices = [self.schema.index(a) for a in groupby]
        agg_indices = [
            None if attr is None else self.schema.index(attr)
            for _, _, attr in aggregations
        ]
        schema = Schema(
            tuple(groupby) + tuple(name for name, _, _ in aggregations),
            aggregation_attributes=[name for name, _, _ in aggregations],
        )
        groups: dict[tuple, list] = {}
        for values, mult in self._tuples.items():
            key = tuple(values[i] for i in group_indices)
            groups.setdefault(key, []).append((values, mult))
        if not groupby and not groups:
            groups[()] = []  # $∅ always produces one tuple.
        result = Relation(schema, self.semiring)
        for key, members in groups.items():
            aggregated = []
            for (name, monoid, attr), index in zip(aggregations, agg_indices):
                acc = monoid.zero
                for values, mult in members:
                    contribution = (
                        1
                        if attr is None or isinstance(monoid, CountMonoid)
                        else values[index]
                    )
                    acc = monoid.add(
                        acc, monoid.act(mult, contribution, self.semiring)
                    )
                aggregated.append(acc)
            result.add(key + tuple(aggregated), self.semiring.one)
        return result

    # -- helpers --------------------------------------------------------------

    def row_dict(self, values: Sequence) -> dict:
        """View a value tuple as an attribute→value dict."""
        return dict(zip(self.schema.attributes, values))

    def __eq__(self, other):
        return (
            isinstance(other, Relation)
            and self.schema.attributes == other.schema.attributes
            and self._tuples == other._tuples
        )

    def __repr__(self):
        return (
            f"Relation({self.schema!r}, {len(self._tuples)} tuples, "
            f"semiring {self.semiring.name})"
        )
