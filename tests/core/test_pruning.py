"""Tests for the conditional-expression pruning rules (Section 5)."""

import pytest

from repro.algebra.conditions import Compare, compare
from repro.algebra.expressions import ONE, SConst, Var
from repro.algebra.monoid import MAX, MIN, PROD, SUM, CappedSumMonoid
from repro.algebra.parser import parse_expr
from repro.algebra.semimodule import MConst, aggsum, module_terms, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.core.compile import Compiler
from repro.core.pruning import prune, prune_comparison
from repro.prob.space import ProbabilitySpace
from repro.prob.variables import VariableRegistry


def min_condition(values, op, c):
    expr = aggsum(
        MIN,
        [tensor(Var(f"x{i}"), MConst(MIN, v)) for i, v in enumerate(values)],
    )
    return compare(expr, op, c)


def max_condition(values, op, c):
    expr = aggsum(
        MAX,
        [tensor(Var(f"x{i}"), MConst(MAX, v)) for i, v in enumerate(values)],
    )
    return compare(expr, op, c)


def kept_values(cond):
    assert isinstance(cond, Compare)
    return sorted(
        term.arg.value for term in module_terms(cond.left)
    )


class TestMinPruning:
    def test_paper_rule_le_drops_large_terms(self):
        # [Σ_MIN Φᵢ⊗mᵢ ≤ m] ≡ [Σ_{mᵢ≤m} Φᵢ⊗mᵢ ≤ m]
        cond = prune(min_condition([10, 20, 30], "<=", 15), BOOLEAN)
        assert kept_values(cond) == [10]

    def test_lt_keeps_strictly_smaller(self):
        cond = prune(min_condition([10, 15, 30], "<", 15), BOOLEAN)
        assert kept_values(cond) == [10]

    def test_ge_keeps_violators_only(self):
        cond = prune(min_condition([10, 20, 30], ">=", 15), BOOLEAN)
        assert kept_values(cond) == [10]

    def test_eq_keeps_up_to_threshold(self):
        cond = prune(min_condition([10, 15, 30], "=", 15), BOOLEAN)
        assert kept_values(cond) == [10, 15]

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=", "!="])
    @pytest.mark.parametrize("c", [5, 15, 25, 35])
    def test_pruning_preserves_distribution(self, op, c):
        reg = VariableRegistry()
        for i in range(4):
            reg.bernoulli(f"x{i}", 0.2 + 0.2 * i)
        cond = min_condition([10, 20, 30, 20], op, c)
        pruned = prune(cond, BOOLEAN)
        space = ProbabilitySpace(reg, BOOLEAN)
        assert space.distribution_of(cond).almost_equals(
            space.distribution_of(pruned)
        )


class TestMaxPruning:
    def test_ge_drops_small_terms(self):
        cond = prune(max_condition([10, 20, 30], ">=", 15), BOOLEAN)
        assert kept_values(cond) == [20, 30]

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=", "!="])
    @pytest.mark.parametrize("c", [5, 20, 35])
    def test_pruning_preserves_distribution(self, op, c):
        reg = VariableRegistry()
        for i in range(4):
            reg.bernoulli(f"x{i}", 0.3 + 0.15 * i)
        cond = max_condition([10, 20, 30, 20], op, c)
        pruned = prune(cond, BOOLEAN)
        space = ProbabilitySpace(reg, BOOLEAN)
        assert space.distribution_of(cond).almost_equals(
            space.distribution_of(pruned)
        )


class TestSumPruning:
    def sum_condition(self, values, op, c):
        expr = aggsum(
            SUM,
            [tensor(Var(f"x{i}"), MConst(SUM, v)) for i, v in enumerate(values)],
        )
        return compare(expr, op, c)

    def test_paper_rule_total_below_bound_folds_to_true(self):
        # [Σ_SUM Φᵢ⊗mᵢ ≤ m] ≡ 1_S if Σmᵢ ≤ m
        assert prune(self.sum_condition([1, 2, 3], "<=", 10), BOOLEAN) == ONE

    def test_unreachable_bound_folds_to_false(self):
        assert prune(self.sum_condition([1, 2, 3], ">", 10), BOOLEAN) == SConst(0)
        assert prune(self.sum_condition([1, 2, 3], "=", 10), BOOLEAN) == SConst(0)

    def test_negative_constant_decided_outright(self):
        assert prune(self.sum_condition([1, 2], "<=", -1), NATURALS) == SConst(0)
        assert prune(self.sum_condition([1, 2], ">=", -1), NATURALS) == ONE

    def test_saturation_rewrites_monoid(self):
        cond = prune(self.sum_condition([5, 10, 20], "<=", 12), BOOLEAN)
        assert isinstance(cond, Compare)
        assert isinstance(cond.left.monoid, CappedSumMonoid)
        assert cond.left.monoid.cap == 13

    def test_saturation_clamps_term_values(self):
        cond = prune(self.sum_condition([5, 100], "<=", 12), BOOLEAN)
        values = kept_values(cond)
        assert max(values) == 13  # 100 clamped to cap

    def test_no_fold_under_naturals_semiring(self):
        # Bag multiplicities can exceed 1, so Σmᵢ is not an upper bound.
        cond = prune(self.sum_condition([1, 2, 3], "<=", 10), NATURALS)
        assert isinstance(cond, Compare)

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=", "!="])
    @pytest.mark.parametrize("c", [0, 7, 14, 40])
    def test_saturation_preserves_distribution_boolean(self, op, c):
        reg = VariableRegistry()
        for i in range(4):
            reg.bernoulli(f"x{i}", 0.25 + 0.15 * i)
        cond = self.sum_condition([5, 10, 15, 10], op, c)
        pruned = prune(cond, BOOLEAN)
        space = ProbabilitySpace(reg, BOOLEAN)
        assert space.distribution_of(cond).almost_equals(
            space.distribution_of(pruned)
        )

    @pytest.mark.parametrize("op", ["<=", ">", "="])
    def test_saturation_preserves_distribution_bag(self, op):
        reg = VariableRegistry()
        reg.integer("x0", {0: 0.3, 1: 0.4, 2: 0.3})
        reg.integer("x1", {0: 0.5, 3: 0.5})
        cond = self.sum_condition([5, 10], op, 17)
        pruned = prune(cond, NATURALS)
        space = ProbabilitySpace(reg, NATURALS)
        assert space.distribution_of(cond).almost_equals(
            space.distribution_of(pruned)
        )


class TestPruningStructure:
    def test_mirrored_constant_side(self):
        # [c θ α] is rewritten to [α θ' c] before pruning.
        alpha = aggsum(
            MIN,
            [tensor(Var("x"), MConst(MIN, 10)), tensor(Var("y"), MConst(MIN, 30))],
        )
        cond = compare(MConst(MIN, 15), ">=", alpha)
        pruned = prune_comparison(cond, BOOLEAN)
        assert kept_values(pruned) == [10]

    def test_prod_monoid_left_untouched(self):
        expr = aggsum(PROD, [tensor(Var("x"), MConst(PROD, 3))])
        cond = compare(expr, "<=", MConst(PROD, 10))
        assert prune(cond, BOOLEAN) == cond

    def test_prune_recurses_into_products(self):
        inner = compare(
            aggsum(SUM, [tensor(Var("x"), MConst(SUM, 2))]), "<=", 5
        )
        expr = inner * Var("w")
        pruned = prune(expr, BOOLEAN)
        assert pruned == Var("w")  # inner folds to 1 and disappears

    def test_two_sided_module_comparison_untouched(self):
        left = aggsum(MIN, [tensor(Var("x"), MConst(MIN, 1))])
        right = aggsum(MIN, [tensor(Var("y"), MConst(MIN, 2))])
        cond = compare(left, "<=", right)
        assert prune(cond, BOOLEAN) == cond


class TestPruningEndToEnd:
    def test_pruned_compilation_is_much_smaller(self):
        reg = VariableRegistry()
        values = [5 * i for i in range(1, 13)]
        for i in range(len(values)):
            reg.bernoulli(f"x{i}", 0.5)
        cond = min_condition(values, "<=", 7)
        pruned_compiler = Compiler(reg, BOOLEAN, pruning=True)
        raw_compiler = Compiler(reg, BOOLEAN, pruning=False)
        assert (
            pruned_compiler.compile(cond).dag_size()
            < raw_compiler.compile(cond).dag_size()
        )
        assert pruned_compiler.distribution(cond).almost_equals(
            raw_compiler.distribution(cond)
        )
