"""Unit tests for the aggregation monoids (Definition 2)."""

import math

import pytest

from repro.algebra.monoid import (
    COUNT,
    MAX,
    MIN,
    PROD,
    SUM,
    CappedSumMonoid,
    monoid_by_name,
)
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.errors import AlgebraError


class TestBasicOperations:
    def test_sum_add(self):
        assert SUM.add(3, 4) == 7

    def test_sum_zero_is_neutral(self):
        assert SUM.add(SUM.zero, 42) == 42

    def test_min_add(self):
        assert MIN.add(3, 7) == 3

    def test_min_zero_is_positive_infinity(self):
        assert MIN.zero == math.inf
        assert MIN.add(MIN.zero, 5) == 5

    def test_max_add(self):
        assert MAX.add(3, 7) == 7

    def test_max_zero_is_negative_infinity(self):
        assert MAX.zero == -math.inf
        assert MAX.add(MAX.zero, -100) == -100

    def test_prod_add_is_multiplication(self):
        assert PROD.add(3, 4) == 12

    def test_prod_zero_is_one(self):
        assert PROD.add(PROD.zero, 9) == 9

    def test_count_behaves_like_sum(self):
        assert COUNT.add(2, 3) == 5
        assert COUNT.zero == 0


class TestFold:
    def test_fold_empty_returns_neutral(self):
        assert SUM.fold([]) == 0
        assert MIN.fold([]) == math.inf

    def test_fold_min_of_column(self):
        # The MIN example from Section 2.2.
        assert MIN.fold([4, 8, 7, 6]) == 4

    def test_fold_sum(self):
        assert SUM.fold([4, 8, 7, 6]) == 25

    def test_fold_prod(self):
        assert PROD.fold([2, 3, 4]) == 24


class TestScalarActions:
    """The semimodule actions of Definition 4."""

    def test_bool_action_true(self):
        assert SUM.act_bool(True, 10) == 10
        assert MIN.act_bool(True, 10) == 10

    def test_bool_action_false_gives_neutral(self):
        assert SUM.act_bool(False, 10) == 0
        assert MIN.act_bool(False, 10) == math.inf
        assert MAX.act_bool(False, 10) == -math.inf
        assert PROD.act_bool(False, 10) == 1

    def test_nat_action_sum_multiplies(self):
        # n ⊗ m = m + m + ... (n times)
        assert SUM.act_nat(3, 10) == 30

    def test_nat_action_min_max_presence(self):
        assert MIN.act_nat(5, 10) == 10
        assert MIN.act_nat(0, 10) == math.inf
        assert MAX.act_nat(2, 7) == 7
        assert MAX.act_nat(0, 7) == -math.inf

    def test_nat_action_prod_exponentiates(self):
        assert PROD.act_nat(3, 2) == 8
        assert PROD.act_nat(0, 2) == 1

    def test_act_dispatches_by_semiring(self):
        assert SUM.act(True, 5, BOOLEAN) == 5
        assert SUM.act(3, 5, NATURALS) == 15


class TestCappedSum:
    """Saturating SUM used by the pruning rules (Proposition 3)."""

    def test_addition_saturates(self):
        capped = CappedSumMonoid(10)
        assert capped.add(6, 7) == 10
        assert capped.add(3, 4) == 7

    def test_saturation_is_associative(self):
        capped = CappedSumMonoid(10)
        a, b, c = 4, 5, 8
        assert capped.add(capped.add(a, b), c) == capped.add(a, capped.add(b, c))

    def test_nat_action_saturates(self):
        capped = CappedSumMonoid(10)
        assert capped.act_nat(5, 7) == 10

    def test_clamp(self):
        assert CappedSumMonoid(10).clamp(25) == 10
        assert CappedSumMonoid(10).clamp(5) == 5

    def test_negative_cap_rejected(self):
        with pytest.raises(AlgebraError):
            CappedSumMonoid(-1)

    def test_distinct_caps_are_distinct_monoids(self):
        assert CappedSumMonoid(5) != CappedSumMonoid(6)
        assert CappedSumMonoid(5) == CappedSumMonoid(5)


class TestLookupAndEquality:
    def test_lookup_by_name(self):
        assert monoid_by_name("sum") is SUM
        assert monoid_by_name("MIN") is MIN

    def test_unknown_name_raises(self):
        with pytest.raises(AlgebraError, match="unknown aggregation monoid"):
            monoid_by_name("AVG")

    def test_equality_by_name(self):
        assert SUM == SUM
        assert SUM != MIN
        assert COUNT != SUM  # COUNT is a distinct monoid tag

    def test_hashable(self):
        assert len({SUM, MIN, MAX, PROD, COUNT}) == 5

    def test_repr(self):
        assert "SUM" in repr(SUM)
