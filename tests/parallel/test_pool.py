"""Pool lifecycle: pooled execution, inline execution, degradation."""

import pickle

import pytest

from repro.parallel import pool
from repro.parallel.reducer import merge_counts, merge_stat_sums


def _double(context, payload):
    return context * payload


def _identify(context, payload):
    import multiprocessing
    import os

    return payload, os.getpid(), multiprocessing.parent_process() is not None


def _explode(context, payload):
    raise ValueError(f"bad payload {payload}")


class TestExecute:
    def test_inline_when_serial(self):
        results, info = pool.execute(_double, 3, [1, 2, 3], workers=1)
        assert results == [3, 6, 9]
        assert info == {"workers": 1}

    def test_inline_when_single_payload(self):
        results, info = pool.execute(_double, 3, [5], workers=4)
        assert results == [15]
        assert info == {"workers": 1}

    def test_pooled_preserves_payload_order(self):
        results, info = pool.execute(_double, 2, list(range(20)), workers=2)
        assert results == [2 * i for i in range(20)]
        assert info["workers"] == 2
        assert "parallel_fallback" not in info

    def test_pooled_runs_in_child_processes(self):
        if not pool.fork_available():
            pytest.skip("no fork on this platform")
        results, _ = pool.execute(_identify, None, [0, 1, 2, 3], workers=2)
        assert all(in_child for _, _, in_child in results)

    def test_worker_count_capped_by_payloads(self):
        _, info = pool.execute(_double, 1, [1, 2], workers=16)
        assert info["workers"] == 2


class TestDegradation:
    def test_worker_crash_falls_back_to_inline(self):
        """A worker dying mid-task breaks the pool; the rerun is inline
        (where the crash helper answers instead of dying) and the reason
        is recorded."""
        if not pool.fork_available():
            pytest.skip("no fork on this platform")
        results, info = pool.execute(
            pool._crash_worker, None, ["a", "b", "c"], workers=2
        )
        assert results == [("inline", "a"), ("inline", "b"), ("inline", "c")]
        assert info["workers"] == 1
        assert info["parallel_fallback"] == "worker_crash"

    def test_unpicklable_payload_falls_back_to_inline(self):
        if not pool.fork_available():
            pytest.skip("no fork on this platform")
        payloads = [2, lambda: 3]  # the lambda cannot enter the call queue
        results, info = pool.execute(
            lambda_tolerant_worker, 10, payloads, workers=2
        )
        assert results == [20, 30]
        assert info["parallel_fallback"] == "pickle_error"

    def test_no_fork_falls_back_to_inline(self, monkeypatch):
        monkeypatch.setattr(pool, "fork_available", lambda: False)
        results, info = pool.execute(_double, 2, [1, 2, 3], workers=4)
        assert results == [2, 4, 6]
        assert info == {"workers": 1, "parallel_fallback": "no_fork"}

    def test_deterministic_worker_error_reraises_serially(self):
        """An exception raised *by the worker* is not swallowed: the
        serial rerun reproduces it with its original type."""
        if not pool.fork_available():
            pytest.skip("no fork on this platform")
        with pytest.raises(ValueError, match="bad payload"):
            pool.execute(_explode, None, [1, 2], workers=2)

    def test_parallel_unavailable_reason_tags(self):
        err = pool.ParallelUnavailable("worker_crash", "boom")
        assert err.reason == "worker_crash"
        assert "boom" in str(err)


def lambda_tolerant_worker(context, payload):
    value = payload() if callable(payload) else payload
    return context * value


class TestReducers:
    def test_merge_counts_sums_in_shard_order(self):
        merged = merge_counts([{"a": 1, "b": 2}, {"b": 3, "c": 4}, {}])
        assert merged == {"a": 1, "b": 5, "c": 4}
        assert list(merged) == ["a", "b", "c"]  # first-seen order

    def test_merge_counts_is_order_deterministic(self):
        shards = [{("x",): 1}, {("y",): 2}, {("x",): 3}]
        assert list(merge_counts(shards)) == [("x",), ("y",)]

    def test_merge_stat_sums(self):
        infos = [{"expansions": 3, "rows": 1}, {"expansions": 5}]
        assert merge_stat_sums(infos, ("expansions", "rows")) == {
            "expansions": 8,
            "rows": 1,
        }


class TestPicklabilityOfCorePayloads:
    """The payload types the engines actually ship must round-trip."""

    def test_expressions_pickle(self):
        from repro.algebra.expressions import Var, sprod, ssum

        expr = sprod([ssum([Var("x"), Var("y")]), Var("z")])
        clone = pickle.loads(pickle.dumps(expr))
        assert clone == expr
        assert clone.variables == expr.variables

    def test_distributions_pickle(self):
        from repro.prob.distribution import Distribution

        dist = Distribution({True: 0.3, False: 0.7})
        clone = pickle.loads(pickle.dumps(dist))
        assert clone.almost_equals(dist)

    def test_probability_bounds_pickle(self):
        from repro.core.approx import ProbabilityBounds

        bounds = ProbabilityBounds(0.25, 0.75)
        clone = pickle.loads(pickle.dumps(bounds))
        assert (clone.low, clone.high) == (0.25, 0.75)

    def test_database_pickles(self):
        from tests.conftest import build_figure1_database

        db = build_figure1_database(small=True)
        clone = pickle.loads(pickle.dumps(db))
        assert set(clone.tables) == set(db.tables)
        assert len(clone.tables["S"]) == len(db.tables["S"])
