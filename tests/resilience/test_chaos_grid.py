"""The chaos conformance grid.

Under every injected fault the stack must *degrade*, never corrupt: a
faulted run's answer fingerprint (values, interval endpoints, engine,
deterministic stats) must be bit-identical to the fault-free baseline
of the same ``(engine, workers)`` configuration.  Worker-only faults
(crash/hang/pickle) break the pool mid-round; the parent's serial
rerun of the same pure payloads then reproduces the exact answer.
"""

import pytest

from repro.parallel import pool
from repro.resilience import FaultPlan, fault_plan
from repro.resilience.faults import clear_plan
from repro.server.bootstrap import demo_session
from repro.server.codec import fingerprint

JOIN_QUERY = "SELECT label FROM R, T WHERE kind = rkind"

#: (fault point, kind, options) legs of the grid.  Every kind of the
#: catalogue that can fire during engine evaluation is represented.
FAULTS = {
    "worker-crash": ("pool.worker", "crash", {"times": 1}),
    "worker-pickle": ("pool.worker", "pickle", {"times": 1}),
    "slow-round": ("engine.approx.round", "slow",
                   {"delay": 0.001, "times": 2}),
    "slow-row": ("engine.sprout.row", "slow", {"delay": 0.001, "times": 2}),
}

ENGINES = {
    "sprout": dict(engine="sprout"),
    "approx": dict(engine="approx", mode="approx", epsilon=0.01),
    "montecarlo": dict(
        engine="montecarlo", mode="sample", epsilon=0.05, delta=0.05,
        budget=2000,
    ),
}


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def run_once(engine_key, workers):
    options = dict(ENGINES[engine_key])
    if workers is not None:
        options["workers"] = workers
    session = demo_session(scale=2)
    return fingerprint(session.sql(JOIN_QUERY, **options))


@pytest.mark.parametrize("engine_key", sorted(ENGINES))
@pytest.mark.parametrize("fault_key", sorted(FAULTS))
@pytest.mark.parametrize("workers", [1, 2, "auto"])
def test_faulted_answers_match_fault_free_baseline(
    engine_key, fault_key, workers
):
    baseline = run_once(engine_key, workers)
    point, kind, options = FAULTS[fault_key]
    plan = FaultPlan(seed=11).add(point, kind, **options)
    with fault_plan(plan):
        chaotic = run_once(engine_key, workers)
    assert chaotic == baseline


@pytest.mark.parametrize("engine_key", ["sprout", "montecarlo"])
def test_hung_worker_degrades_without_changing_answers(
    engine_key, monkeypatch
):
    """A wedged worker is the nastiest leg: only the watchdog can catch
    it.  With a short process-wide task timeout the round is abandoned,
    the pool killed, and the inline rerun must still be bit-identical."""
    monkeypatch.setattr(pool, "DEFAULT_TASK_TIMEOUT", 1.0)
    baseline = run_once(engine_key, 2)
    plan = FaultPlan().add("pool.worker", "hang", delay=30.0, times=1)
    with fault_plan(plan):
        chaotic = run_once(engine_key, 2)
    assert chaotic == baseline


def test_serial_runs_ignore_pool_faults():
    """workers=None never touches the pool: a pool.worker fault plan
    must not fire at all."""
    plan = FaultPlan().add("pool.worker", "crash", times=None)
    baseline = run_once("sprout", None)
    with fault_plan(plan):
        chaotic = run_once("sprout", None)
    assert chaotic == baseline
    assert plan.fires == {}
