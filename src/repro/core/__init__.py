"""The paper's core contribution: knowledge compilation into d-trees.

Implements Section 5: decomposition trees (Definition 7), the compilation
procedure of Algorithm 1 with the four independence rules, read-once
factorisation and Shannon expansion, bottom-up probability computation by
convolution (Theorem 2), the pruning rules for conditional expressions,
joint distributions by mutex decomposition, and budgeted approximation.
"""

from repro.core.approx import (
    ApproximateCompiler,
    ProbabilityBounds,
    approximate_probability,
)
from repro.core.compile import HEURISTICS, Compiler, compile_expression
from repro.core.export import to_dot
from repro.core.dtree import (
    CompareNode,
    CompileContext,
    ConstLeaf,
    DTree,
    MPlusNode,
    MutexNode,
    PlusNode,
    TensorNode,
    TimesNode,
    VarLeaf,
)
from repro.core.joint import JointCompiler, joint_distribution
from repro.core.pruning import prune, prune_comparison
from repro.core.stats import DTreeStats, collect_stats

__all__ = [
    "Compiler",
    "compile_expression",
    "HEURISTICS",
    "CompileContext",
    "DTree",
    "ConstLeaf",
    "VarLeaf",
    "PlusNode",
    "TimesNode",
    "MPlusNode",
    "TensorNode",
    "CompareNode",
    "MutexNode",
    "JointCompiler",
    "joint_distribution",
    "prune",
    "prune_comparison",
    "DTreeStats",
    "collect_stats",
    "ApproximateCompiler",
    "ProbabilityBounds",
    "approximate_probability",
    "to_dot",
]
