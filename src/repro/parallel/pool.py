"""Process-pool lifecycle with graceful degradation to serial execution.

One entry point, :func:`execute`, runs ``worker(context, payload)`` for a
list of payloads and returns the results in payload order plus an info
dict.  The contract engines rely on:

* **Purity** — workers must be deterministic functions of
  ``(context, payload)``.  Under that contract, running inline and
  running on a pool produce identical results, which is what lets every
  failure mode degrade to serial without changing any answer.
* **Fork-based pools** — worker processes are forked, so the (potentially
  large) shared ``context`` is inherited by the children instead of being
  pickled per task; only the per-task payloads and results travel through
  the pickled call queue.
* **Graceful degradation** — a worker crash (``BrokenProcessPool``), a
  payload/result that fails to pickle, a platform without ``fork``, or
  any other pool-layer failure falls back to in-process execution, and
  the returned info carries ``parallel_fallback`` with the reason.  A
  *deterministic* exception raised by the worker itself also lands here:
  the serial rerun re-raises it with its original type and traceback.
* **The watchdog** — a wedged worker (deadlocked, stuck in a syscall,
  or fault-injected) must not hang the parent forever: when a per-task
  timeout is configured (explicitly, via :data:`DEFAULT_TASK_TIMEOUT`,
  or implicitly from the ambient :mod:`repro.resilience` deadline) the
  round is abandoned with reason ``"worker_hang"``, the stuck processes
  are killed, the payloads rerun inline, and — because a single hang
  may be transient — the *next* round gets one fresh pool before the
  handle degrades to permanent inline execution.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.resilience.deadline import current_deadline
from repro.resilience.faults import fault_point

__all__ = [
    "DEFAULT_TASK_TIMEOUT",
    "ParallelUnavailable",
    "SharedPool",
    "execute",
    "fork_available",
]

#: Process-wide default per-task watchdog timeout (seconds), used when a
#: pool has no explicit ``task_timeout``.  ``None`` disables the
#: watchdog (the pre-watchdog behavior) — except under an ambient
#: resilience deadline, which always bounds pooled rounds.
DEFAULT_TASK_TIMEOUT: float | None = None

#: Grace added on top of an active deadline's remaining time before the
#: watchdog declares a round hung: legitimate work slightly past the
#: deadline still gets collected (and the engine degrades cooperatively);
#: only a genuinely wedged worker trips the kill path.
_DEADLINE_GRACE = 2.0


class ParallelUnavailable(RuntimeError):
    """The pool could not run the tasks; callers fall back to serial.

    ``reason`` is a short machine-readable tag (``"no_fork"``,
    ``"worker_crash"``, ``"pickle_error"``, ``"worker_error"``,
    ``"worker_hang"``) that engines surface as
    ``stats["parallel_fallback"]``.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)


def fork_available() -> bool:
    """True when fork-based process pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


#: Shared state installed in each forked worker by the pool initializer.
#: With the fork start method the initializer arguments are inherited
#: through the fork (no pickling), so arbitrarily large contexts ship to
#: the workers for free.
_WORKER_STATE: tuple | None = None


def _install_worker_state(state: tuple) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _invoke(payload):
    """Run the installed worker on one payload, fencing its exceptions.

    Worker-raised exceptions are returned as an ``(False, summary)``
    sentinel instead of propagating: a raw exception through the result
    queue is indistinguishable from pool breakage in the parent, while
    the sentinel lets the parent classify it as a *deterministic* error
    that the serial rerun will reproduce with full fidelity.

    The ``pool.worker`` fault point sits *outside* the fence: injected
    pool-layer faults (crash/hang/pickle) must look like infrastructure
    failures — classified by reason in the parent — not like
    deterministic worker errors.
    """
    worker, context = _WORKER_STATE
    fault_point("pool.worker")
    try:
        return True, worker(context, payload)
    except BaseException as exc:  # noqa: BLE001 - fence everything
        return False, f"{type(exc).__name__}: {exc}"


def _classify(exc: BaseException) -> ParallelUnavailable:
    """Map a pool-layer exception to a fallback reason."""
    if isinstance(exc, BrokenProcessPool):
        return ParallelUnavailable("worker_crash", str(exc))
    if isinstance(exc, pickle.PicklingError) or "pickle" in str(exc).lower():
        return ParallelUnavailable("pickle_error", str(exc))
    return ParallelUnavailable("worker_error", f"{type(exc).__name__}: {exc}")


def _gather(executor, payloads, timeout: float | None = None) -> list:
    """Submit the payloads and collect results in order; raise
    ParallelUnavailable on any pool-layer failure.

    ``timeout`` bounds the *round*: every result must arrive within
    ``timeout`` seconds of submission or the round is declared hung
    (reason ``"worker_hang"``) — the caller owns killing the pool.

    Module-level so tests can monkeypatch the single seam through which
    every pooled round runs.
    """
    results = [None] * len(payloads)
    try:
        futures = [executor.submit(_invoke, payload) for payload in payloads]
        expires = None if timeout is None else time.monotonic() + timeout
        for index, future in enumerate(futures):
            if expires is None:
                ok, value = future.result()
            else:
                try:
                    ok, value = future.result(
                        timeout=max(expires - time.monotonic(), 0.0)
                    )
                except concurrent.futures.TimeoutError:
                    raise ParallelUnavailable(
                        "worker_hang",
                        f"pool task still running after {timeout:g}s",
                    ) from None
            if not ok:
                raise ParallelUnavailable("worker_error", value)
            results[index] = value
    except ParallelUnavailable:
        raise
    except BaseException as exc:  # noqa: BLE001 - degrade, never crash
        raise _classify(exc) from exc
    return results


class SharedPool:
    """A reusable fork pool bound to one ``(worker, context)`` pair.

    Iterative engines (sequential-stopping Monte-Carlo, approx
    refinement) run many rounds against the *same* shared context; this
    handle forks the worker pool once, on the first round that actually
    needs it, and reuses it until :meth:`close`.  Each :meth:`run` has
    the same contract as :func:`execute`: results in payload order, an
    info dict with the worker count used, and graceful degradation to
    inline execution — once degraded, later rounds stay inline with the
    same recorded reason.

    ``task_timeout`` arms the hung-worker watchdog for every round (see
    :meth:`_watchdog_timeout` for how it combines with the ambient
    deadline).  A hang kills the stuck pool and reruns the round inline,
    but — unlike every other failure — allows *one* fresh pool on the
    next round; a second hang degrades the handle permanently.
    """

    #: Lifecycle state may be poked from more than one thread (the query
    #: server drives engines from an executor pool while ``stop()`` paths
    #: close pools); ``_state_lock`` owns every mutation.  Enforced
    #: statically by the ``locks`` checker of ``repro.analysis``.
    _shared_state_ = {
        "_state_lock": ("_executor", "_fallback_reason", "_hangs"),
    }

    def __init__(self, worker, context, workers, task_timeout: float | None = None):
        self.worker = worker
        self.context = context
        self.workers = workers
        self.task_timeout = task_timeout
        self._executor = None
        self._fallback_reason: str | None = None
        self._hangs = 0
        self._state_lock = threading.Lock()

    def _inline(self, payloads) -> list:
        return [self.worker(self.context, payload) for payload in payloads]

    def _ensure_executor(self):
        with self._state_lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_install_worker_state,
                    initargs=((self.worker, self.context),),
                )
            return self._executor

    def _watchdog_timeout(self) -> float | None:
        """The effective per-round watchdog timeout.

        The explicit ``task_timeout`` (or the module default) combines
        with the ambient resilience deadline: under a deadline a round
        may take at most ``remaining + grace`` seconds, so a request
        with ``time_limit=T`` is bounded even when a worker wedges —
        the end-to-end deadline contract across the process boundary,
        where cooperative checkpoints cannot reach.
        """
        timeout = (
            self.task_timeout
            if self.task_timeout is not None
            else DEFAULT_TASK_TIMEOUT
        )
        deadline = current_deadline()
        if deadline is not None:
            bound = max(deadline.remaining(), 0.0) + _DEADLINE_GRACE
            timeout = bound if timeout is None else min(timeout, bound)
        return timeout

    def run(self, payloads) -> tuple[list, dict]:
        """One round: ``worker(context, payload)`` per payload."""
        payloads = list(payloads)
        if (
            self.workers is None
            or self.workers <= 1
            or len(payloads) <= 1
        ):
            return self._inline(payloads), {"workers": 1}
        if self._fallback_reason is not None:
            return self._inline(payloads), {
                "workers": 1,
                "parallel_fallback": self._fallback_reason,
            }
        if not fork_available():
            with self._state_lock:
                self._fallback_reason = "no_fork"
            return self._inline(payloads), {
                "workers": 1,
                "parallel_fallback": "no_fork",
            }
        timeout = self._watchdog_timeout()
        try:
            # Two-arg call when unarmed: _gather is a documented
            # monkeypatch seam and most callers never arm the watchdog.
            if timeout is None:
                results = _gather(self._ensure_executor(), payloads)
            else:
                results = _gather(self._ensure_executor(), payloads, timeout)
        except ParallelUnavailable as unavailable:
            if unavailable.reason == "worker_hang":
                # The workers are wedged: close() would join them and
                # hang the parent too — kill hard instead.  One rebuild
                # is allowed (a hang can be transient); a second hang
                # degrades the handle permanently like other failures.
                self._kill()
                with self._state_lock:
                    self._hangs += 1
                    if self._hangs >= 2:
                        self._fallback_reason = "worker_hang"
            else:
                with self._state_lock:
                    self._fallback_reason = unavailable.reason
                self.close()
            return self._inline(payloads), {
                "workers": 1,
                "parallel_fallback": unavailable.reason,
            }
        return results, {"workers": min(self.workers, len(payloads))}

    def _kill(self) -> None:
        """Hard-stop a pool with hung workers without joining them."""
        with self._state_lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
        # wait=False: the killed processes cannot be joined synchronously
        # here; the executor's management thread reaps them.
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down; the handle stays usable (inline or by
        forking a fresh pool on the next :meth:`run`).

        Plain ``shutdown(wait=True)``: every submitted future has
        already completed (or had its exception set) by the time
        :meth:`run` returns, and ``cancel_futures`` has a shutdown race
        against the queue-feeder after a payload pickling failure.
        Hung pools never reach here — :meth:`run` already replaced them
        via :meth:`_kill`.
        """
        with self._state_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SharedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def execute(
    worker, context, payloads, workers, task_timeout: float | None = None
) -> tuple[list, dict]:
    """Run ``worker(context, payload)`` per payload, pooled when possible.

    One-shot wrapper over :class:`SharedPool` (engines with a single
    fan-out use this; iterative engines hold a :class:`SharedPool` open
    across rounds).  Returns ``(results, info)`` with results in payload
    order.  ``info`` always carries ``"workers"`` (the worker count
    actually used) and, when the pool could not run,
    ``"parallel_fallback"`` with the reason.

    Serial execution is chosen outright when ``workers`` is None/1 or
    there are fewer than two payloads; it is *fallen back to* when the
    platform lacks ``fork`` or the pool fails mid-flight.  Because
    workers are pure, the fallback rerun returns exactly what the pool
    would have — including re-raising deterministic worker exceptions
    with their original type.
    """
    with SharedPool(worker, context, workers, task_timeout=task_timeout) as pool:
        return pool.run(payloads)


def _crash_worker(context, payload):
    """Test helper: dies hard inside a pool, answers politely inline.

    Crashing only when a parent process exists makes the degradation path
    end-to-end testable: the pool run breaks with ``BrokenProcessPool``
    and the serial rerun still returns a correct result.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return ("inline", payload)
