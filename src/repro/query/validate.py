"""Well-formedness validation for ``Q`` queries (Definition 5).

The constraints of Definition 5 keep the Figure-4 rewriting simple by
guaranteeing that projection, union and grouping never see semimodule
expressions:

1. in ``π_{A̅}(Q)`` and ``$_{A̅; ...}(Q)`` the attributes ``A̅`` are not
   aggregation attributes — and neither are the aggregated inputs ``Bᵢ``;
2. in ``Q₁ ∪ Q₂`` no attribute of the operands is an aggregation
   attribute.

Selection predicates may freely compare aggregation attributes with
constants or other attributes (``α θ c``, ``α θ β``, ``α θ A``); those are
the θ-comparisons of Section 6 and Example 3 (``σ_{B=γ}``).
"""

from __future__ import annotations

from typing import Mapping

from repro.db.schema import Schema
from repro.errors import QueryValidationError
from repro.query.ast import GroupAgg, Project, Query, Union

__all__ = ["validate_query"]


def validate_query(query: Query, catalog: Mapping[str, Schema]) -> Schema:
    """Check Definition-5 constraints; returns the query's output schema.

    Raises :class:`~repro.errors.QueryValidationError` on violation.
    """
    for node in query.walk():
        if isinstance(node, Project):
            _check_projection(node, catalog)
        elif isinstance(node, Union):
            _check_union(node, catalog)
        elif isinstance(node, GroupAgg):
            _check_group_agg(node, catalog)
    return query.schema(catalog)


def _check_projection(node: Project, catalog):
    child_schema = node.child.schema(catalog)
    offending = [
        a for a in node.attributes if child_schema.is_aggregation(a)
    ]
    if offending:
        raise QueryValidationError(
            f"projection onto aggregation attributes {offending} violates "
            f"Definition 5 (constraint 1)"
        )


def _check_union(node: Union, catalog):
    for side, name in ((node.left, "left"), (node.right, "right")):
        schema = side.schema(catalog)
        if schema.aggregation_attributes:
            raise QueryValidationError(
                f"union {name} operand exposes aggregation attributes "
                f"{sorted(schema.aggregation_attributes)}; violates "
                f"Definition 5 (constraint 2)"
            )


def _check_group_agg(node: GroupAgg, catalog):
    child_schema = node.child.schema(catalog)
    offending = [a for a in node.groupby if child_schema.is_aggregation(a)]
    if offending:
        raise QueryValidationError(
            f"grouping by aggregation attributes {offending} violates "
            f"Definition 5 (constraint 1)"
        )
    for spec in node.aggregations:
        if spec.attribute is not None and child_schema.is_aggregation(
            spec.attribute
        ):
            raise QueryValidationError(
                f"aggregating over the aggregation attribute "
                f"{spec.attribute!r} is not supported (nested semimodule "
                f"expressions)"
            )
