"""pvc-tables: probabilistic value-conditioned tables (Section 3, Def. 6).

A pvc-table is a relation with an annotation column ``Φ`` holding semiring
expressions over the random variables, in which tuple *values* may be
either constants or semimodule expressions.  A pvc-database is a set of
pvc-tables over the same induced probability space.

pvc-tables are a complete representation system (Theorem 1): any finite
probability distribution over relational databases is representable, and —
unlike pc-tables — results of aggregate queries stay polynomial in size
because annotations and aggregated values can be intertwined in semimodule
expressions.
"""

from __future__ import annotations

import operator
import weakref
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, SemiringExpr, Var, ssum
from repro.algebra.semimodule import ModuleExpr
from repro.algebra.semiring import BOOLEAN, Semiring
from repro.algebra.valuation import Valuation
from repro.db.mutations import Delta, DeltaLog
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import DistributionError, QueryValidationError, SchemaError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

__all__ = ["PVCRow", "PVCTable", "PVCDatabase", "merge_annotated_rows", "tuple_getter"]


def tuple_getter(indices):
    """``values -> tuple(values[i] for i in indices)`` without a genexpr.

    ``operator.itemgetter`` builds the tuple in C; the empty and
    single-index cases (where itemgetter is unusable or returns a scalar)
    are wrapped to stay tuples.  Shared by the physical executor's
    project/join/group key paths and the table hash indexes.
    """
    if not indices:
        return lambda values: ()  # π_∅ and $_∅ keys
    if len(indices) == 1:
        index = indices[0]
        return lambda values: (values[index],)
    return operator.itemgetter(*indices)


def merge_annotated_rows(rows) -> list:
    """Group identical value tuples, summing their annotations in ``K``.

    ``rows`` is an iterable of ``(values, annotation)`` pairs; the result
    is the merged set-of-tuples view (Definition 6) with zero-annotated
    rows dropped, preserving first-occurrence order.  The single merge
    implementation behind base-table scans and the executor's π/∪.
    """
    merged: dict[tuple, SemiringExpr] = {}
    duplicates: dict[tuple, list] = {}
    for values, annotation in rows:
        if annotation.is_zero():
            continue
        if values not in merged:
            merged[values] = annotation
        else:
            bucket = duplicates.get(values)
            if bucket is None:
                duplicates[values] = bucket = [merged[values]]
            bucket.append(annotation)
    if duplicates:
        for values, annotations in duplicates.items():
            merged[values] = ssum(annotations)
    return list(merged.items())


@dataclass(frozen=True)
class PVCRow:
    """One tuple of a pvc-table: values plus the annotation ``Φ``."""

    values: tuple
    annotation: SemiringExpr

    def value_dict(self, schema: Schema) -> dict:
        return dict(zip(schema.attributes, self.values))

    def module_values(self, schema: Schema) -> dict:
        """The semimodule-valued (aggregation) entries of this row."""
        return {
            name: value
            for name, value in zip(schema.attributes, self.values)
            if isinstance(value, ModuleExpr)
        }


class PVCTable:
    """A pvc-table: schema, rows, annotations.

    >>> from repro.algebra import Var
    >>> table = PVCTable(Schema(["sid", "shop"]))
    >>> table.add((1, "M&S"), Var("x1"))
    >>> len(table)
    1
    """

    __slots__ = (
        "schema",
        "rows",
        "_version",
        "_scan_cache",
        "_index_cache",
        "_column_cache",
    )

    def __init__(self, schema: Schema, rows: Iterable[PVCRow] = ()):
        self.schema = schema
        self.rows: list[PVCRow] = list(rows)
        #: Monotonic epoch (the :class:`~repro.db.relation.Relation`
        #: ``_version`` discipline): bumped by every mutation, and the
        #: validity key of every cache below.  The row *count* is not a
        #: safe key — an equal-size in-place update leaves it unchanged
        #: while changing the data, which used to serve stale scans.
        self._version = 0
        #: Caches for the physical executor, keyed on the epoch: the
        #: merged set-of-tuples scan (plus a values→position map for
        #: incremental patching), per-key-set hash indexes, and the
        #: columnar (per-column + annotation) views.  Mutate rows through
        #: :meth:`add`/:meth:`update_rows`/:meth:`delete_rows`, which
        #: bump the epoch and patch or drop the caches; any other
        #: in-place edit of ``rows`` must call :meth:`invalidate_caches`
        #: (statically enforced by the ``cache-epoch`` checker of
        #: :mod:`repro.analysis`).
        self._scan_cache = None
        self._index_cache: dict = {}
        self._column_cache: dict = {}

    @property
    def epoch(self) -> int:
        """The table's monotonic mutation counter."""
        return self._version

    def invalidate_caches(self) -> None:
        """Bump the epoch and drop every cached scan/index/column view."""
        self._version += 1
        self._scan_cache = None
        self._index_cache.clear()
        self._column_cache.clear()

    def add(self, values: Sequence, annotation: SemiringExpr = ONE):
        """Append a row; the default annotation ``1_K`` means "certain"."""
        values = tuple(values)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"tuple of arity {len(values)} does not match schema "
                f"{self.schema!r}"
            )
        row = PVCRow(values, annotation)
        self.rows.append(row)
        previous = self._version
        self._version += 1
        self._patch_append(previous, row)

    def _patch_append(self, previous: int, row: PVCRow) -> None:
        """Carry current caches across an append without a rebuild.

        An appended row merges into the scan at its existing entry (the
        first-occurrence position is unchanged) or lands at the end —
        exactly where a from-scratch :func:`merge_annotated_rows` would
        put it, because the new row is last in row order.  ``ssum``
        flattens nested sums and canonicalises child order, so the
        incrementally merged annotation is structurally identical to the
        rebuilt one.  Stale caches (``version != previous``) are left
        behind; the epoch guard rejects them lazily.
        """
        cached = self._scan_cache
        if cached is None or cached[0] != previous:
            return
        scan, positions = cached[1], cached[2]
        if row.annotation.is_zero():
            # The merged view is unchanged; re-stamp everything current.
            self._scan_cache = (self._version, scan, positions)
            for key_indices, entry in list(self._index_cache.items()):
                if entry[0] == previous:
                    self._index_cache[key_indices] = (self._version, entry[1])
                else:
                    del self._index_cache[key_indices]
            for name, entry in list(self._column_cache.items()):
                if entry[0] == previous:
                    self._column_cache[name] = (self._version, entry[1])
                else:
                    del self._column_cache[name]
            return
        position = positions.get(row.values)
        if position is None:
            entry = (row.values, row.annotation)
            positions[row.values] = len(scan)
            scan.append(entry)
        else:
            entry = (row.values, ssum([scan[position][1], row.annotation]))
            scan[position] = entry
        self._scan_cache = (self._version, scan, positions)
        for key_indices, cached_index in list(self._index_cache.items()):
            if cached_index[0] != previous:
                del self._index_cache[key_indices]
                continue
            buckets = cached_index[1]
            key = tuple_getter(key_indices)(row.values)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
            elif position is None:
                bucket.append(entry)
            else:
                for i, existing in enumerate(bucket):
                    if existing[0] == row.values:
                        bucket[i] = entry
                        break
            self._index_cache[key_indices] = (self._version, buckets)
        values_entry = self._column_cache.get("values")
        if values_entry is not None and values_entry[0] == previous:
            columns = values_entry[1]
            for i, value in enumerate(row.values):
                columns[i].append(value)
            self._column_cache["values"] = (self._version, columns)
        annotations_entry = self._column_cache.get("annotations")
        if annotations_entry is not None and annotations_entry[0] == previous:
            column = annotations_entry[1]
            column.append(row.annotation)
            self._column_cache["annotations"] = (self._version, column)

    def update_rows(self, predicate, rewrite) -> dict:
        """Rewrite every row matching ``predicate`` via ``rewrite(row)``.

        ``rewrite`` returns the replacement :class:`PVCRow`.  The rows
        list is rebuilt and swapped atomically (concurrent readers keep a
        consistent pre-mutation snapshot), the epoch is bumped, and the
        cached scan and hash indexes are *patched*: only the merged
        entries and index buckets whose key tuples were touched are
        rebuilt, the rest survive by reference.  Returns mutation info
        (``rows`` matched, ``changed``, touched ``variables``, and
        cache-patch counters).
        """
        rows = self.rows
        new_rows: list[PVCRow] = []
        touched: set[tuple] = set()
        variables: frozenset = frozenset()
        matched = 0
        changed = 0
        for row in rows:
            if predicate(row):
                matched += 1
                new_row = rewrite(row)
                if (
                    new_row.values != row.values
                    or new_row.annotation is not row.annotation
                ):
                    touched.add(row.values)
                    touched.add(new_row.values)
                    variables |= row.annotation.variables
                    variables |= new_row.annotation.variables
                    changed += 1
                    row = new_row
                else:
                    variables |= row.annotation.variables
            new_rows.append(row)
        info = {"rows": matched, "changed": changed, "variables": variables}
        if not changed:
            return info
        previous = self._version
        self.rows = new_rows
        self._version += 1
        info.update(self._refresh_caches(previous, touched))
        return info

    def delete_rows(self, predicate) -> dict:
        """Remove every row matching ``predicate``; patch the caches.

        Deletion never reorders the survivors, so the merged scan keeps
        its first-occurrence order and only the index buckets containing
        a removed key tuple are rebuilt.  Returns mutation info like
        :meth:`update_rows`.
        """
        rows = self.rows
        kept: list[PVCRow] = []
        touched: set[tuple] = set()
        variables: frozenset = frozenset()
        for row in rows:
            if predicate(row):
                touched.add(row.values)
                variables |= row.annotation.variables
            else:
                kept.append(row)
        removed = len(rows) - len(kept)
        info = {"rows": removed, "variables": variables}
        if not removed:
            return info
        previous = self._version
        self.rows = kept
        self._version += 1
        info.update(self._refresh_caches(previous, touched))
        return info

    def _refresh_caches(self, previous: int, touched: set) -> dict:
        """Re-merge the scan and patch index buckets after a mutation.

        ``touched`` is the set of value tuples whose merged entry may
        have changed.  The merged scan is rebuilt from the current rows
        (first-occurrence order must match a from-scratch session
        bit-for-bit, and update/delete can move an entry's position);
        hash indexes are patched copy-on-write — only buckets whose key
        contains a touched value tuple are rebuilt, untouched bucket
        lists are carried over by reference.  Columnar views realign
        wholesale and are simply dropped.
        """
        self._column_cache.clear()
        cached = self._scan_cache
        if cached is None or cached[0] != previous:
            self._scan_cache = None
            self._index_cache.clear()
            return {"buckets_patched": 0, "caches_dropped": True}
        old_scan, old_positions = cached[1], cached[2]
        new_scan = merge_annotated_rows(
            (row.values, row.annotation) for row in self.rows
        )
        new_positions = {values: i for i, (values, _) in enumerate(new_scan)}
        self._scan_cache = (self._version, new_scan, new_positions)
        # Narrow ``touched`` to the keys whose merged entry really
        # differs (an update may touch a value tuple whose merged
        # annotation ends up unchanged).
        changed_keys = set()
        for values in touched:
            old_index = old_positions.get(values)
            new_index = new_positions.get(values)
            if (old_index is None) != (new_index is None):
                changed_keys.add(values)
            elif old_index is not None and (
                old_scan[old_index][1] != new_scan[new_index][1]
            ):
                changed_keys.add(values)
        buckets_patched = 0
        for key_indices, cached_index in list(self._index_cache.items()):
            if cached_index[0] != previous:
                del self._index_cache[key_indices]
                continue
            key_of = tuple_getter(key_indices)
            touched_keys = {key_of(values) for values in changed_keys}
            buckets = dict(cached_index[1])
            for key in touched_keys:
                buckets.pop(key, None)
            for entry in new_scan:
                key = key_of(entry[0])
                if key in touched_keys:
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(entry)
            buckets_patched += len(touched_keys)
            self._index_cache[key_indices] = (self._version, buckets)
        return {"buckets_patched": buckets_patched, "caches_dropped": False}

    def add_block(
        self,
        alternatives: Sequence[tuple],
        registry: VariableRegistry,
        name: str,
    ) -> None:
        """Append mutually exclusive row alternatives driven by variable
        ``name`` (the BID encoding shared by :func:`bid_table` and
        :meth:`PVCDatabase.insert_block`).

        ``alternatives`` is a sequence of ``(values, probability)`` pairs
        summing to at most 1; the remainder is the probability that no
        alternative is chosen.  Alternative ``i`` gets the conditional
        annotation ``[name = i+1]`` over one integer block variable.
        """
        alternatives = list(alternatives)
        total = sum(probability for _, probability in alternatives)
        if total > 1.0 + 1e-9:
            raise DistributionError(
                f"block {name!r} probabilities sum to {total} > 1"
            )
        support = {
            i + 1: probability
            for i, (_, probability) in enumerate(alternatives)
            if probability > 0
        }
        remainder = 1.0 - total
        if remainder > 1e-12:
            support[0] = remainder
        registry.declare(name, Distribution(support))
        for i, (values, probability) in enumerate(alternatives):
            if probability <= 0:
                continue
            self.add(tuple(values), compare(Var(name), "=", i + 1))

    def scan_rows(self) -> list:
        """The merged set-of-tuples view as ``(values, annotation)`` pairs.

        A pvc-table represents a *set* of tuples (Definition 6): rows
        stored with identical values are alternatives for one tuple and
        merge by annotation summation; zero-annotated rows are dropped.
        The result is cached (keyed on the epoch, which every mutator
        bumps) and shared — callers must not mutate it.
        """
        cached = self._scan_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        scan = merge_annotated_rows(
            (row.values, row.annotation) for row in self.rows
        )
        positions = {values: i for i, (values, _) in enumerate(scan)}
        self._scan_cache = (self._version, scan, positions)
        self._index_cache.clear()
        return scan

    def hash_index(self, key_indices: tuple) -> dict:
        """Buckets of :meth:`scan_rows` keyed on the given value positions.

        Built once per key set and cached alongside the scan; the physical
        executor uses it so repeated hash joins against a base table never
        rebuild the table's hash index.
        """
        cached = self._index_cache.get(key_indices)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        key_of = tuple_getter(key_indices)
        buckets: dict[tuple, list] = {}
        for row in self.scan_rows():
            key = key_of(row[0])
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
            bucket.append(row)
        self._index_cache[key_indices] = (self._version, buckets)
        return buckets

    def value_columns(self) -> list:
        """Columnar view of the raw rows: one list per attribute, aligned
        with ``rows`` order (semimodule values appear unevaluated).

        Memoised like the scan/hash-index caches (keyed on the epoch),
        so repeated plan bindings — the codegen per-world layout in
        particular — never re-split rows into columns.
        """
        cached = self._column_cache.get("values")
        if cached is not None and cached[0] == self._version:
            return cached[1]
        columns = [
            [row.values[i] for row in self.rows]
            for i in range(len(self.schema))
        ]
        self._column_cache["values"] = (self._version, columns)
        return columns

    def annotation_column(self) -> list:
        """The annotation column ``Φ`` of the raw rows, memoised like
        :meth:`value_columns`."""
        cached = self._column_cache.get("annotations")
        if cached is not None and cached[0] == self._version:
            return cached[1]
        column = [row.annotation for row in self.rows]
        self._column_cache["annotations"] = (self._version, column)
        return column

    def __iter__(self) -> Iterator[PVCRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def variables(self) -> frozenset:
        """All variables mentioned by annotations or semimodule values."""
        names: frozenset = frozenset()
        for row in self.rows:
            names |= row.annotation.variables
            for value in row.values:
                if isinstance(value, ModuleExpr):
                    names |= value.variables
        return names

    def instantiate(self, valuation: Valuation, semiring: Semiring) -> Relation:
        """The possible world of this table under ``valuation`` (Def. 6).

        Annotations become multiplicities; semimodule values evaluate to
        monoid values; constants stay as they are.
        """
        world = Relation(self.schema, semiring)
        for row in self.rows:
            multiplicity = valuation(row.annotation)
            if multiplicity == semiring.zero:
                continue
            values = tuple(
                valuation(v) if isinstance(v, ModuleExpr) else v
                for v in row.values
            )
            world.add(values, multiplicity)
        return world

    def pretty(self, max_rows: int = 20) -> str:
        """A plain-text rendering in the style of the paper's figures."""
        header = list(self.schema.attributes) + ["Φ"]
        body = [
            [str(v) for v in row.values] + [repr(row.annotation)]
            for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body), 1)
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(name.ljust(widths[i]) for i, name in enumerate(header))
        ]
        for line in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"PVCTable({self.schema!r}, {len(self.rows)} rows)"


class PVCDatabase:
    """A set of pvc-tables over one induced probability space (Def. 6)."""

    def __init__(
        self,
        tables: Mapping[str, PVCTable] | None = None,
        registry: VariableRegistry | None = None,
        semiring: Semiring = BOOLEAN,
    ):
        self.tables: dict[str, PVCTable] = dict(tables or {})
        self.registry = registry if registry is not None else VariableRegistry()
        self.semiring = semiring
        self._variable_counters: dict[str, int] = {}
        #: Bounded log of recent mutations (diagnostics; see
        #: :class:`~repro.db.mutations.DeltaLog`).
        self.deltas = DeltaLog()
        #: Weakly-held mutation listeners (``listener(delta)``): caches
        #: subscribe themselves and vanish with their owners, so a
        #: discarded session can never leak a subscription.
        self._listeners: list = []

    @property
    def generation(self) -> int:
        """Monotonic database generation: any mutation increases it.

        Derived from the table epochs plus the registry epoch, so it
        moves for row changes *and* for probability reassignments (which
        leave every table untouched), including mutations applied
        directly on a :class:`PVCTable`.
        """
        generation = self.registry.epoch
        for table in self.tables.values():
            generation += table.epoch
        return generation

    def epochs(self) -> tuple:
        """The epoch vector ``((table, epoch), ...)`` plus the registry.

        Cache entries that read table data record this vector; a cache
        hit requires it to match exactly, so no entry built before a
        mutation can ever serve a post-mutation read.
        """
        return tuple(
            sorted((name, table.epoch) for name, table in self.tables.items())
        ) + (("$registry", self.registry.epoch),)

    def subscribe(self, listener) -> None:
        """Register a weakly-held mutation listener (idempotent)."""
        for ref in self._listeners:
            if ref() == listener:
                return
        try:
            ref = weakref.WeakMethod(listener)
        except TypeError:
            ref = weakref.ref(listener)
        self._listeners.append(ref)

    def _notify(self, delta: Delta) -> None:
        self.deltas.append(delta)
        if not self._listeners:
            return
        alive = []
        for ref in self._listeners:
            listener = ref()
            if listener is not None:
                alive.append(ref)
                listener(delta)
        self._listeners[:] = alive

    def __getitem__(self, name: str) -> PVCTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r} in the database") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def add_table(self, name: str, table: PVCTable) -> PVCTable:
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        self.tables[name] = table
        return table

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        aggregation_attributes: Iterable[str] = (),
    ) -> PVCTable:
        """Create and register an empty pvc-table."""
        return self.add_table(
            name, PVCTable(Schema(attributes, aggregation_attributes))
        )

    def catalog(self) -> dict[str, Schema]:
        """Mapping of table names to schemas (for validation/planning)."""
        return {name: table.schema for name, table in self.tables.items()}

    def cardinalities(self) -> dict[str, int]:
        """Row counts per table — the planner's base-table statistics."""
        return {name: len(table) for name, table in self.tables.items()}

    def _coerce_values(self, table: PVCTable, values) -> tuple:
        """Accept positional tuples or attribute dictionaries."""
        if isinstance(values, Mapping):
            missing = set(table.schema.attributes) - set(values)
            extra = set(values) - set(table.schema.attributes)
            if missing or extra:
                raise SchemaError(
                    f"row keys {sorted(values)} do not match schema "
                    f"{table.schema!r}"
                )
            return tuple(values[name] for name in table.schema.attributes)
        return tuple(values)

    def fresh_variable(self, stem: str) -> str:
        """Mint a variable name ``{stem}{i}`` unused by the registry."""
        index = self._variable_counters.get(stem, 0)
        while f"{stem}{index}" in self.registry:
            index += 1
        self._variable_counters[stem] = index + 1
        return f"{stem}{index}"

    def insert(
        self,
        table_name: str,
        values,
        p: float | None = None,
        annotation: SemiringExpr | None = None,
        var: str | None = None,
    ) -> SemiringExpr:
        """Insert one row, auto-minting a Bernoulli variable for ``p``.

        * ``p=None`` (default) inserts a certain row (annotation ``1_K``);
        * ``0 <= p < 1`` declares a fresh Boolean variable with
          ``P[⊤] = p`` (named ``var`` if given, else ``{table}_{i}``) and
          annotates the row with it; ``p = 1`` is treated as certain —
          unless ``var`` is given, which forces the named variable to be
          declared (with ``P[⊤] = 1``) so later rows can reference it;
        * an explicit ``annotation`` bypasses variable minting entirely.

        Returns the row's annotation, so callers can correlate further
        rows with the same event.
        """
        table = self[table_name]
        values = self._coerce_values(table, values)
        if annotation is not None:
            if p is not None or var is not None:
                raise DistributionError(
                    "an explicit annotation cannot be combined with p= or var="
                )
            expr = annotation
        elif p is None:
            if var is not None:
                raise DistributionError(
                    f"naming variable {var!r} requires a probability p"
                )
            expr = ONE
        elif not 0.0 <= p <= 1.0:
            raise DistributionError(f"probability {p} is not in [0, 1]")
        elif p >= 1.0 and var is None:
            expr = ONE  # certain row: no variable to mint
        else:
            name = var if var is not None else self.fresh_variable(f"{table_name}_")
            self.registry.bernoulli(name, p)
            expr = Var(name)
        table.add(values, expr)
        self._notify(Delta(
            table=table_name,
            kind="insert",
            rows=1,
            variables=expr.variables,
            cardinality_changed=True,
            epoch=table.epoch,
            generation=self.generation,
        ))
        return expr

    def insert_block(
        self,
        table_name: str,
        alternatives: Sequence[tuple],
        var: str | None = None,
    ) -> str:
        """Insert a block of mutually exclusive row alternatives (BID).

        ``alternatives`` is a sequence of ``(values, probability)`` pairs
        whose probabilities sum to at most 1 (the remainder is "no row").
        One integer block variable drives the block, and alternative ``i``
        is annotated ``[x_b = i]`` — which requires the **naturals**
        semiring, as with :func:`repro.db.tuple_independent.bid_table`.

        Returns the name of the block variable.
        """
        table = self[table_name]
        alternatives = [
            (self._coerce_values(table, values), probability)
            for values, probability in alternatives
        ]
        name = var if var is not None else self.fresh_variable(f"{table_name}_blk")
        table.add_block(alternatives, self.registry, name)
        self._notify(Delta(
            table=table_name,
            kind="insert",
            rows=len(alternatives),
            variables=frozenset({name}),
            cardinality_changed=True,
            epoch=table.epoch,
            generation=self.generation,
        ))
        return name

    def _row_predicate(self, table: PVCTable, where):
        """Compile ``where`` into a row predicate.

        ``where`` is either a mapping of attribute → value (conjunctive
        equality) or a callable over the row's attribute dictionary.
        """
        if callable(where):
            schema = table.schema
            return lambda row: bool(where(row.value_dict(schema)))
        if isinstance(where, Mapping):
            attributes = list(table.schema.attributes)
            unknown = set(where) - set(attributes)
            if unknown:
                raise SchemaError(
                    f"where-clause attributes {sorted(unknown)} are not in "
                    f"schema {table.schema!r}"
                )
            tests = [
                (attributes.index(name), value) for name, value in where.items()
            ]
            return lambda row: all(
                row.values[index] == value for index, value in tests
            )
        raise QueryValidationError(
            f"cannot use {where!r} as a where-clause; expected an "
            f"attribute mapping or a callable over a row dict"
        )

    def update(
        self,
        table_name: str,
        where,
        set_values=None,
        p: float | None = None,
    ) -> int:
        """Update rows in place: new attribute values and/or probability.

        ``where`` selects rows (mapping = conjunctive equality, or a
        callable over the attribute dict).  ``set_values`` is a mapping
        of attribute → new value, or a callable over the attribute dict
        returning such a mapping.  ``p`` reassigns the Bernoulli
        probability of the matched rows' annotation variables — each
        matched row must be annotated with a single variable (the
        tuple-independent encoding); the reassignment flows through the
        lineage index so exactly the dependent compiled distributions
        recompile.  Returns the number of matched rows.
        """
        table = self[table_name]
        if set_values is None and p is None:
            raise QueryValidationError(
                "update() needs set_values= and/or p="
            )
        predicate = self._row_predicate(table, where)
        changed_names: frozenset = frozenset()
        if p is not None:
            # Resolve the annotation variables against the *pre-update*
            # rows: a set_values that rewrites the matched attributes
            # must not make the probability reassignment miss them.
            if not 0.0 <= p <= 1.0:
                raise DistributionError(f"probability {p} is not in [0, 1]")
            names = set()
            for row in table.rows:
                if predicate(row):
                    if not isinstance(row.annotation, Var):
                        raise DistributionError(
                            f"p= updates require rows annotated with a "
                            f"single variable, got {row.annotation!r}"
                        )
                    names.add(row.annotation.name)
            changed_names = frozenset(names)
        info = {"rows": 0, "variables": frozenset()}
        if set_values is not None:
            attributes = list(table.schema.attributes)
            if not callable(set_values):
                unknown = set(set_values) - set(attributes)
                if unknown:
                    raise SchemaError(
                        f"update attributes {sorted(unknown)} are not in "
                        f"schema {table.schema!r}"
                    )
            schema = table.schema

            def rewrite(row: PVCRow) -> PVCRow:
                changes = (
                    set_values(row.value_dict(schema))
                    if callable(set_values)
                    else set_values
                )
                unknown = set(changes) - set(attributes)
                if unknown:
                    raise SchemaError(
                        f"update attributes {sorted(unknown)} are not in "
                        f"schema {schema!r}"
                    )
                values = list(row.values)
                for name, value in changes.items():
                    values[attributes.index(name)] = value
                return PVCRow(tuple(values), row.annotation)

            info = table.update_rows(predicate, rewrite)
            matched = info["rows"]
        else:
            matched_rows = [row for row in table.rows if predicate(row)]
            matched = len(matched_rows)
            info = {
                "rows": matched,
                "variables": frozenset().union(
                    *(row.annotation.variables for row in matched_rows),
                    frozenset(),
                ),
            }
        if p is not None and matched:
            for name in sorted(changed_names):
                self.registry.reassign(name, Distribution.bernoulli(p))
        else:
            changed_names = frozenset()
        if matched:
            self._notify(Delta(
                table=table_name,
                kind="update",
                rows=matched,
                variables=info["variables"] | changed_names,
                changed_variables=changed_names,
                cardinality_changed=False,
                epoch=table.epoch,
                generation=self.generation,
                info={
                    key: value
                    for key, value in info.items()
                    if key in ("buckets_patched", "caches_dropped", "changed")
                },
            ))
        return matched

    def delete(self, table_name: str, where) -> int:
        """Delete rows matching ``where``; returns the number removed.

        Removing rows never changes any compiled distribution (lineage
        is untouched), so only the table's own scan/index caches are
        patched and plans re-key on the new cardinality.
        """
        table = self[table_name]
        predicate = self._row_predicate(table, where)
        info = table.delete_rows(predicate)
        removed = info["rows"]
        if removed:
            self._notify(Delta(
                table=table_name,
                kind="delete",
                rows=removed,
                variables=info["variables"],
                cardinality_changed=True,
                epoch=table.epoch,
                generation=self.generation,
                info={
                    key: value
                    for key, value in info.items()
                    if key in ("buckets_patched", "caches_dropped")
                },
            ))
        return removed

    @property
    def variables(self) -> frozenset:
        names: frozenset = frozenset()
        for table in self.tables.values():
            names |= table.variables
        return names

    def __repr__(self):
        inner = ", ".join(
            f"{name}({len(table)})" for name, table in sorted(self.tables.items())
        )
        return f"PVCDatabase[{self.semiring.name}]({inner})"
