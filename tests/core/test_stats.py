"""Tests for d-tree statistics collection."""

import pytest

from repro.algebra.parser import parse_expr
from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.core.stats import collect_stats
from repro.prob.variables import VariableRegistry


def compiler_for(names, p=0.5):
    reg = VariableRegistry()
    for name in names:
        reg.bernoulli(name, p)
    return Compiler(reg, BOOLEAN)


class TestCollectStats:
    def test_leaf_counts(self):
        compiler = compiler_for("ab")
        tree = compiler.compile(parse_expr("a*b"))
        stats = collect_stats(tree)
        assert stats.var_leaves == 2
        assert stats.times_nodes == 1
        assert stats.dag_size == 3

    def test_read_once_has_no_mutex(self):
        compiler = compiler_for("abcd")
        tree = compiler.compile(parse_expr("a*b + c*d"))
        stats = collect_stats(tree)
        assert stats.mutex_nodes == 0
        assert stats.plus_nodes == 1
        assert stats.decomposition_nodes >= 3

    def test_mutex_counted(self):
        compiler = compiler_for("abc")
        tree = compiler.compile(parse_expr("(a+b)*(a+c)"))
        stats = collect_stats(tree)
        assert stats.mutex_nodes >= 1
        assert stats.mutex_branches >= 2

    def test_distribution_sizes_recorded_with_context(self):
        compiler = compiler_for("ab")
        tree = compiler.compile(parse_expr("a+b"))
        stats = collect_stats(tree, compiler.context)
        assert stats.max_distribution_size == 2
        assert stats.distribution_cost() >= 3 * 2  # three nodes, binary dists

    def test_without_context_no_distribution_info(self):
        compiler = compiler_for("ab")
        tree = compiler.compile(parse_expr("a+b"))
        stats = collect_stats(tree)
        assert stats.max_distribution_size is None
        assert stats.node_distribution_sizes == []

    def test_depth_matches_tree(self):
        compiler = compiler_for("abcd")
        tree = compiler.compile(parse_expr("a*b + c*d"))
        stats = collect_stats(tree)
        assert stats.depth == tree.depth() == 3
