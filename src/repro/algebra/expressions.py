"""Symbolic semiring expressions — elements of the free semiring ``K``.

The annotations of pvc-table tuples are elements of the semiring *generated*
by a set ``X`` of random variables (Section 2.2): syntactic expressions
built from variables, constants, ``+`` and ``·``, identified up to the
semiring laws.  This module implements that free semiring as an immutable
AST with four node types:

* :class:`Var` — a variable symbol ``x ∈ X``;
* :class:`SConst` — a constant from the target semiring (``0_K``/``1_K``
  and friends), stored canonically as a non-negative integer;
* :class:`Sum` — an n-ary sum ``Φ₁ + ... + Φₙ``;
* :class:`Prod` — an n-ary product ``Φ₁ · ... · Φₙ``.

Conditional expressions ``[Φ θ Ψ]`` (which are also semiring expressions,
see Figure 2) live in :mod:`repro.algebra.conditions` to avoid a circular
dependency with semimodule expressions.

Design notes
------------
* Sums and products are **n-ary and order-canonical**: the smart
  constructors :func:`ssum` and :func:`sprod` flatten nested nodes and sort
  children by a deterministic key.  This bakes associativity and
  commutativity — which Remark 2 of the paper identifies as essential for
  structural decomposition — into the representation itself.
* Every node caches its variable set, so the independence checks performed
  by the compiler are cheap set operations.
* Only *semiring-agnostic* simplifications happen in the constructors
  (dropping neutral elements, annihilation by zero).  Semiring-*specific*
  rewrites such as Boolean absorption live in
  :mod:`repro.algebra.simplify`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import AlgebraError

__all__ = [
    "Expr",
    "SemiringExpr",
    "Var",
    "SConst",
    "Sum",
    "Prod",
    "ZERO",
    "ONE",
    "ssum",
    "sprod",
    "variables_of",
    "count_occurrences",
]


class Expr:
    """Base class of all (semiring and semimodule) expressions.

    Expressions are immutable; equality and hashing are structural via a
    canonical key.  Key, hash and variable set are computed **eagerly** by
    :meth:`_finalize` at construction time: every composite expression
    sorts its children by key anyway, and expressions spend their lives as
    dictionary keys in the compiler's memo tables, so laziness would only
    add per-access property overhead on the hottest paths in the library.
    """

    __slots__ = ("_key", "_vars", "_hash")

    #: Child expressions, for generic tree walks.
    children: tuple = ()

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    def _compute_vars(self) -> frozenset:
        raise NotImplementedError

    def _finalize(self):
        """Populate the structural caches; call last in every ``__init__``."""
        self._key = self._compute_key()
        self._vars = self._compute_vars()
        self._hash = self._compute_hash()

    def _compute_hash(self) -> int:
        """Structural hash built from the *cached* child hashes.

        Hashing the nested key tuple directly would re-walk the whole
        subtree on every construction (tuples do not cache their hash);
        combining the children's cached hashes is O(#children) and still
        consistent with key equality.
        """
        raise NotImplementedError

    @property
    def key(self) -> tuple:
        """Canonical sort/equality key of this expression."""
        return self._key

    @property
    def variables(self) -> frozenset:
        """The set of variable names occurring in this expression."""
        return self._vars

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return this expression with variables replaced per ``mapping``.

        Unmapped variables are left untouched.  The result is rebuilt
        through the smart constructors, so neutral elements introduced by
        the substitution are simplified away.
        """
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and, recursively, all descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def size(self) -> int:
        """Number of AST nodes in this expression."""
        return sum(1 for _ in self.walk())

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, Expr) and self._key == other._key

    def __hash__(self):
        return self._hash


class SemiringExpr(Expr):
    """An element of the free semiring ``K`` over the variables."""

    __slots__ = ()

    def __add__(self, other) -> "SemiringExpr":
        return ssum([self, _coerce(other)])

    def __radd__(self, other) -> "SemiringExpr":
        return ssum([_coerce(other), self])

    def __mul__(self, other) -> "SemiringExpr":
        return sprod([self, _coerce(other)])

    def __rmul__(self, other) -> "SemiringExpr":
        return sprod([_coerce(other), self])

    def is_zero(self) -> bool:
        """True if this is the canonical additive neutral ``0_K``."""
        return isinstance(self, SConst) and self.value == 0

    def is_one(self) -> bool:
        """True if this is the canonical multiplicative neutral ``1_K``."""
        return isinstance(self, SConst) and self.value == 1


def _coerce(value) -> SemiringExpr:
    """Coerce a raw Python value into a semiring expression."""
    if isinstance(value, SemiringExpr):
        return value
    if isinstance(value, Expr):
        raise AlgebraError(
            f"expected a semiring expression, got the semimodule "
            f"expression {value!r}"
        )
    if isinstance(value, bool):
        return SConst(int(value))
    if isinstance(value, int):
        return SConst(value)
    raise AlgebraError(f"cannot interpret {value!r} as a semiring expression")


class Var(SemiringExpr):
    """A variable symbol ``x ∈ X``; itself an element of ``K``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise AlgebraError(f"variable name must be a non-empty string, got {name!r}")
        self.name = name
        self._finalize()

    def _compute_key(self):
        return ("v", self.name)

    def _compute_hash(self):
        return hash(("v", self.name))

    def _compute_vars(self):
        return frozenset((self.name,))

    def substitute(self, mapping):
        return mapping.get(self.name, self)

    def __repr__(self):
        return self.name


class SConst(SemiringExpr):
    """A constant from the semiring carrier, canonicalised to an integer.

    Boolean constants are stored as 0/1; the concrete semiring coerces them
    back (``0 ↦ ⊥``, ``1 ↦ ⊤``) at evaluation time, so one constant
    representation serves both set and bag semantics.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int) or value < 0:
            raise AlgebraError(
                f"semiring constants must be non-negative integers "
                f"(or booleans), got {value!r}"
            )
        self.value = value
        self._finalize()

    def _compute_key(self):
        return ("c", self.value)

    def _compute_hash(self):
        return hash(("c", self.value))

    def _compute_vars(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def __repr__(self):
        return str(self.value)


#: The additive neutral element ``0_K`` of the free semiring.
ZERO = SConst(0)

#: The multiplicative neutral element ``1_K`` of the free semiring.
ONE = SConst(1)


class Sum(SemiringExpr):
    """An n-ary semiring sum; use :func:`ssum` to construct."""

    __slots__ = ("children",)

    def __init__(self, children: tuple):
        self.children = children
        self._finalize()

    def _compute_key(self):
        return ("+",) + tuple(c.key for c in self.children)

    def _compute_hash(self):
        return hash(("+",) + tuple(c._hash for c in self.children))

    def _compute_vars(self):
        return frozenset().union(*(c.variables for c in self.children))

    def substitute(self, mapping):
        variables = self.variables
        if all(name not in variables for name in mapping):
            return self
        return ssum([c.substitute(mapping) for c in self.children])

    def __repr__(self):
        return "(" + " + ".join(map(repr, self.children)) + ")"


class Prod(SemiringExpr):
    """An n-ary semiring product; use :func:`sprod` to construct."""

    __slots__ = ("children",)

    def __init__(self, children: tuple):
        self.children = children
        self._finalize()

    def _compute_key(self):
        return ("*",) + tuple(c.key for c in self.children)

    def _compute_hash(self):
        return hash(("*",) + tuple(c._hash for c in self.children))

    def _compute_vars(self):
        return frozenset().union(*(c.variables for c in self.children))

    def substitute(self, mapping):
        variables = self.variables
        if all(name not in variables for name in mapping):
            return self
        return sprod([c.substitute(mapping) for c in self.children])

    def __repr__(self):
        parts = []
        for child in self.children:
            if isinstance(child, Sum):
                parts.append(f"({child!r})")
            else:
                parts.append(repr(child))
        return "*".join(parts)


def _key_of(expr: Expr):
    """Canonical-sort key extractor shared by every smart constructor
    (module-level function: avoids a fresh lambda per sort call)."""
    return expr._key


def _sorted_canonical(children: Iterable[SemiringExpr]) -> tuple:
    return tuple(sorted(children, key=_key_of))


def ssum(terms: Iterable) -> SemiringExpr:
    """Smart constructor for semiring sums.

    Flattens nested sums, drops ``0_K`` summands, canonicalises the child
    order, and collapses singleton/empty sums.  Constants are *not* folded
    together here because their sum depends on the target semiring
    (``1 + 1`` is ``1`` in B but ``2`` in N); see
    :func:`repro.algebra.simplify.normalize`.
    """
    flat: list[SemiringExpr] = []
    for term in terms:
        term = _coerce(term)
        if isinstance(term, Sum):
            flat.extend(term.children)
        elif not term.is_zero():
            flat.append(term)
    if not flat:
        return ZERO
    if len(flat) == 1:
        return flat[0]
    return Sum(_sorted_canonical(flat))


def sprod(factors: Iterable) -> SemiringExpr:
    """Smart constructor for semiring products.

    Flattens nested products, drops ``1_K`` factors, annihilates on a
    ``0_K`` factor, canonicalises the child order, and collapses
    singleton/empty products.
    """
    flat: list[SemiringExpr] = []
    for factor in factors:
        factor = _coerce(factor)
        if factor.is_zero():
            return ZERO
        if isinstance(factor, Prod):
            flat.extend(factor.children)
        elif not factor.is_one():
            flat.append(factor)
    if not flat:
        return ONE
    if len(flat) == 1:
        return flat[0]
    return Prod(_sorted_canonical(flat))


def variables_of(exprs: Iterable[Expr]) -> frozenset:
    """Union of the variable sets of several expressions."""
    result: frozenset = frozenset()
    for expr in exprs:
        result |= expr.variables
    return result


def count_occurrences(expr: Expr) -> dict[str, int]:
    """Count how many times each variable symbol occurs in ``expr``.

    Used by the compiler's Shannon-expansion heuristic, which eliminates
    a variable with the most occurrences (Section 5).  Variable-free
    subtrees (constants, folded aggregation values) are not descended
    into — their cached variable sets are empty.
    """
    counts: dict[str, int] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if type(node) is Var:
            name = node.name
            counts[name] = counts.get(name, 0) + 1
        else:
            for child in node.children:
                if child.variables:
                    stack.append(child)
    return counts
