"""Unit tests for valuations and homomorphic evaluation (Section 3)."""

import math

import pytest

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, ZERO, SConst, Var
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.valuation import Valuation, evaluate
from repro.errors import AlgebraError


class TestSemiringEvaluation:
    def test_boolean_sum_product(self):
        nu = Valuation({"x": True, "y": False}, BOOLEAN)
        assert nu(Var("x") + Var("y")) is True
        assert nu(Var("x") * Var("y")) is False

    def test_naturals_sum_product(self):
        nu = Valuation({"x": 2, "y": 3}, NATURALS)
        assert nu(Var("x") + Var("y")) == 5
        assert nu(Var("x") * Var("y")) == 6

    def test_constants_coerced(self):
        nu = Valuation({}, BOOLEAN)
        assert nu(ONE) is True
        assert nu(ZERO) is False
        assert Valuation({}, NATURALS)(SConst(7)) == 7

    def test_missing_variable_raises(self):
        with pytest.raises(AlgebraError, match="does not assign"):
            Valuation({}, BOOLEAN)(Var("x"))

    def test_distributivity_under_evaluation(self):
        # x(y+z) and xy+xz evaluate identically (semiring law).
        nu = Valuation({"x": 2, "y": 3, "z": 4}, NATURALS)
        lhs = Var("x") * (Var("y") + Var("z"))
        rhs = Var("x") * Var("y") + Var("x") * Var("z")
        assert nu(lhs) == nu(rhs) == 14


class TestExample6:
    """Example 6 of the paper, verbatim."""

    def test_min_semimodule_evaluation(self):
        alpha = aggsum(
            MIN,
            [
                tensor(Var("x") * Var("y"), MConst(MIN, 5)),
                tensor(Var("x") + Var("z"), MConst(MIN, 10)),
            ],
        )
        nu = Valuation({"x": 2, "y": 3, "z": 0}, NATURALS)
        assert nu(alpha) == 5

    def test_all_zero_valuation_gives_monoid_neutral(self):
        alpha = aggsum(
            MIN,
            [
                tensor(Var("x") * Var("y"), MConst(MIN, 5)),
                tensor(Var("x") + Var("z"), MConst(MIN, 10)),
            ],
        )
        nu = Valuation({"x": 0, "y": 0, "z": 0}, NATURALS)
        assert nu(alpha) == math.inf


class TestExample5Variants:
    """Example 5/6: α = z1⊗4 + z2⊗8 + z3⊗7 + z4⊗6 under different targets."""

    def _alpha(self, monoid):
        weights = {"z1": 4, "z2": 8, "z3": 7, "z4": 6}
        return aggsum(
            monoid,
            [tensor(Var(n), MConst(monoid, w)) for n, w in weights.items()],
        )

    def test_sum_aggregation_bag(self):
        nu = Valuation({"z1": 2, "z2": 2, "z3": 0, "z4": 0}, NATURALS)
        assert nu(self._alpha(SUM)) == 24

    def test_min_aggregation_boolean(self):
        nu = Valuation(
            {"z1": False, "z2": True, "z3": True, "z4": True}, BOOLEAN
        )
        assert nu(self._alpha(MIN)) == 6


class TestConditionalEvaluation:
    def test_comparison_to_semiring_values(self):
        cond = compare(
            aggsum(
                MIN,
                [
                    tensor(Var("x"), MConst(MIN, 10)),
                    tensor(Var("y"), MConst(MIN, 20)),
                ],
            ),
            "<=",
            15,
        )
        assert Valuation({"x": True, "y": True}, BOOLEAN)(cond) is True
        assert Valuation({"x": False, "y": True}, BOOLEAN)(cond) is False

    def test_semiring_comparison(self):
        guard = compare(Var("x") + Var("y"), "!=", ZERO)
        assert Valuation({"x": False, "y": False}, BOOLEAN)(guard) is False
        assert Valuation({"x": True, "y": False}, BOOLEAN)(guard) is True

    def test_naturals_conditional_gives_multiplicity(self):
        guard = compare(Var("x"), ">=", SConst(2))
        assert Valuation({"x": 3}, NATURALS)(guard) == 1
        assert Valuation({"x": 1}, NATURALS)(guard) == 0


class TestIntroductionExample:
    """The ν₁ valuation of Example 1 (the M&S annotation of Q2)."""

    def test_ms_annotation_is_satisfied(self):
        x = {f"x{i}": Var(f"x{i}") for i in (1, 2, 3)}
        y = {k: Var(k) for k in ("y11", "y12", "y21", "y22", "y33", "y34")}
        z = {k: Var(k) for k in ("z1", "z2", "z3", "z4", "z5")}
        terms = [
            (x["x1"] * y["y11"] * (z["z1"] + z["z5"]), 10),
            (x["x1"] * y["y12"] * z["z2"], 50),
            (x["x2"] * y["y21"] * (z["z1"] + z["z5"]), 11),
            (x["x2"] * y["y22"] * z["z2"], 60),
            (x["x3"] * y["y33"] * z["z3"], 60),
            (x["x3"] * y["y34"] * z["z4"], 15),
        ]
        alpha = aggsum(MAX, [tensor(phi, MConst(MAX, v)) for phi, v in terms])
        psi1 = compare(ssum_of(terms), "!=", ZERO)
        phi = compare(alpha, "<=", 50) * psi1

        true_vars = {"x1", "x2", "y11", "y21", "z1", "z2", "z5"}
        assignment = {
            name: (name in true_vars)
            for name in phi.variables
        }
        assert Valuation(assignment, BOOLEAN)(phi) is True


def ssum_of(terms):
    from repro.algebra.expressions import ssum

    return ssum([phi for phi, _ in terms])
