"""Experiment E (Figure 10): two-sided aggregation comparisons.

Paper parameters: #v=25, #cl=2, #l=2, maxv=200, c=100, θ is ≤, #runs=10;
pairs MIN/MAX, MIN/COUNT, MAX/SUM; (a) R=150 and L ∈ [0, 2000],
(b) L=150 and R ∈ [0, 2000].

Scaled parameters: #v=10, maxv=50, fixed side 20, swept side ∈ [5, 80].
Expected asymmetry (the paper's ``Σ_MAX ≤ Σ_SUM`` analysis): growing the
left/MAX side makes the comparison harder (the maximum more often exceeds
the right side, so more terms must be compiled), while growing the
right/SUM side makes it easier (a few mutex steps already push the sum
beyond the maximum).  The latter effect relies on the bound-based early
folding of two-sided comparisons in :mod:`repro.algebra.bounds`.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, average_time, print_series, run_point
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    variables=10,
    clauses=2,
    literals=2,
    max_value=50,
    constant=25,
    theta="<=",
)

PAIRS = [("MIN", "MAX"), ("MIN", "COUNT"), ("MAX", "SUM")]
SWEEP = [5, 10, 20, 40, 80]
FIXED = 20
RUNS = 2


def _params(pair, left_terms, right_terms) -> ExprParams:
    agg_left, agg_right = pair
    return BASE.with_(
        agg_left=agg_left,
        agg_right=agg_right,
        left_terms=left_terms,
        right_terms=right_terms,
    )


@pytest.mark.parametrize("pair", PAIRS, ids=["-".join(p) for p in PAIRS])
@pytest.mark.parametrize("left_terms", SWEEP)
def bench_left_sweep(benchmark, pair, left_terms):
    benchmark.pedantic(
        average_time,
        args=(_params(pair, left_terms, FIXED), RUNS),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("pair", PAIRS, ids=["-".join(p) for p in PAIRS])
@pytest.mark.parametrize("right_terms", SWEEP)
def bench_right_sweep(benchmark, pair, right_terms):
    benchmark.pedantic(
        average_time,
        args=(_params(pair, FIXED, right_terms), RUNS),
        rounds=1,
        iterations=1,
    )


def main():
    report = BenchReport("exp_e")
    rows = []
    for pair in PAIRS:
        for left_terms in SWEEP:
            mean, stdev = run_point(
                _params(pair, left_terms, FIXED), runs=RUNS, seed=left_terms
            )
            rows.append(
                ("/".join(pair), left_terms, FIXED,
                 f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}")
            )
            report.add("/".join(pair), {"L": left_terms, "R": FIXED, "runs": RUNS},
                       mean=mean, stdev=stdev)
    print_series(
        "Experiment E(a) — varying L, R fixed (Figure 10a)",
        ["pair", "L", "R", "mean", "stdev"],
        rows,
    )
    rows = []
    for pair in PAIRS:
        for right_terms in SWEEP:
            mean, stdev = run_point(
                _params(pair, FIXED, right_terms), runs=RUNS, seed=right_terms
            )
            rows.append(
                ("/".join(pair), FIXED, right_terms,
                 f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}")
            )
            report.add("/".join(pair), {"L": FIXED, "R": right_terms, "runs": RUNS},
                       mean=mean, stdev=stdev)
    print_series(
        "Experiment E(b) — varying R, L fixed (Figure 10b)",
        ["pair", "L", "R", "mean", "stdev"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
