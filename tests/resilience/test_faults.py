"""The fault-injection harness itself: determinism, scoping, guards."""

import pytest

from repro.errors import QueryValidationError
from repro.resilience import FaultPlan, FaultSpec, fault_plan, fault_point
from repro.resilience.faults import active_plan, clear_plan, install_plan


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with no installed plan."""
    clear_plan()
    yield
    clear_plan()


class TestFaultSpec:
    def test_kind_validation(self):
        with pytest.raises(QueryValidationError):
            FaultSpec("meteor")

    def test_option_validation(self):
        with pytest.raises(QueryValidationError):
            FaultSpec("io", times=0)
        with pytest.raises(QueryValidationError):
            FaultSpec("io", rate=0.0)
        with pytest.raises(QueryValidationError):
            FaultSpec("io", rate=1.5)
        with pytest.raises(QueryValidationError):
            FaultSpec("slow", delay=-1.0)
        with pytest.raises(QueryValidationError):
            FaultSpec("io", after=-1)


class TestFaultPoint:
    def test_noop_without_plan(self):
        assert active_plan() is None
        for _ in range(1000):
            fault_point("pool.worker")  # must be a strict no-op

    def test_noop_for_unbound_points(self):
        with fault_plan(FaultPlan().add("server.http.request", "io")):
            fault_point("pool.worker")  # bound elsewhere: no-op
            assert active_plan().hits == {}

    def test_io_fault_fires_times_then_heals(self):
        plan = FaultPlan().add("server.http.request", "io", times=2)
        with fault_plan(plan):
            for _ in range(2):
                with pytest.raises(ConnectionError):
                    fault_point("server.http.request")
            fault_point("server.http.request")  # healed
        assert plan.fires == {"server.http.request": 2}
        assert plan.hits == {"server.http.request": 3}
        assert plan.fired == [("server.http.request", "io")] * 2

    def test_after_skips_leading_hits(self):
        plan = FaultPlan().add("server.tcp.line", "io", times=1, after=2)
        with fault_plan(plan):
            fault_point("server.tcp.line")
            fault_point("server.tcp.line")
            with pytest.raises(ConnectionError):
                fault_point("server.tcp.line")

    def test_slow_fault_sleeps(self):
        import time

        plan = FaultPlan().add("engine.approx.round", "slow", delay=0.02)
        with fault_plan(plan):
            start = time.perf_counter()
            fault_point("engine.approx.round")
            assert time.perf_counter() - start >= 0.02

    def test_worker_only_guard_covers_crash_hang_pickle(self):
        plan = (
            FaultPlan()
            .add("a", "crash")
            .add("b", "hang")
            .add("c", "pickle")
        )
        with fault_plan(plan):
            # None of these may fire in the parent process — a crash
            # here would kill the test runner outright.
            fault_point("a")
            fault_point("b")
            fault_point("c")
        assert plan.fires == {}

    def test_guard_does_not_consume_the_times_budget(self):
        # Parent-side hits at a worker-only fault must leave the budget
        # intact for the actual workers (which fork later).
        plan = FaultPlan().add("pool.worker", "crash", times=1)
        with fault_plan(plan):
            for _ in range(5):
                fault_point("pool.worker")
        assert plan.hits == {"pool.worker": 5}
        assert plan.fires == {}


class TestDeterminism:
    def _fired_pattern(self, seed):
        plan = FaultPlan(seed=seed).add(
            "server.http.request", "io", rate=0.5, times=None
        )
        pattern = []
        with fault_plan(plan):
            for _ in range(64):
                try:
                    fault_point("server.http.request")
                    pattern.append(0)
                except ConnectionError:
                    pattern.append(1)
        return pattern

    def test_rate_faults_are_seed_deterministic(self):
        first = self._fired_pattern(seed=42)
        second = self._fired_pattern(seed=42)
        assert first == second
        assert 0 < sum(first) < 64  # actually probabilistic

    def test_different_seeds_differ(self):
        assert self._fired_pattern(seed=1) != self._fired_pattern(seed=2)


class TestInstallation:
    def test_context_manager_clears_on_exit(self):
        plan = FaultPlan()
        with fault_plan(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_context_manager_clears_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_plan(FaultPlan()):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_install_and_clear(self):
        plan = install_plan(FaultPlan())
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None
