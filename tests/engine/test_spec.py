"""EvalSpec and ProbInterval — the unified answer surface."""

import json

import pytest

from repro.engine.spec import EVAL_MODES, EvalSpec, ProbInterval
from repro.errors import QueryValidationError


class TestProbInterval:
    def test_is_a_float_at_the_midpoint(self):
        interval = ProbInterval(0.2, 0.4)
        assert isinstance(interval, float)
        assert float(interval) == pytest.approx(0.3)
        assert interval + 0.1 == pytest.approx(0.4)
        assert f"{interval:.2f}" == "0.30"
        assert json.loads(json.dumps({"p": interval}))["p"] == pytest.approx(0.3)

    def test_point_intervals_behave_like_plain_probabilities(self):
        p = ProbInterval.point(0.7)
        assert p == pytest.approx(0.7)
        assert p.width == 0.0
        assert p.is_point
        assert p.value == pytest.approx(0.7)
        assert p.low == p.high == 0.7

    def test_wide_interval_has_no_point_value(self):
        interval = ProbInterval(0.2, 0.6)
        assert not interval.is_point
        with pytest.raises(QueryValidationError, match="width"):
            interval.value

    def test_validation_rejects_bad_intervals(self):
        with pytest.raises(QueryValidationError):
            ProbInterval(0.7, 0.3)
        with pytest.raises(QueryValidationError):
            ProbInterval(-0.5, 0.5)
        with pytest.raises(QueryValidationError):
            ProbInterval(0.5, 1.5)
        with pytest.raises(QueryValidationError):
            ProbInterval(float("nan"), 0.5)

    def test_numeric_noise_is_clamped(self):
        interval = ProbInterval(-1e-12, 1.0 + 1e-12)
        assert interval.low == 0.0
        assert interval.high == 1.0

    def test_immutable(self):
        interval = ProbInterval(0.2, 0.4)
        with pytest.raises(AttributeError):
            interval.low = 0.0

    def test_contains_and_unknown(self):
        assert ProbInterval.unknown().contains(0.0)
        assert ProbInterval.unknown().contains(1.0)
        assert ProbInterval(0.2, 0.4).contains(0.3)
        assert not ProbInterval(0.2, 0.4).contains(0.5)

    def test_intersect_tightens(self):
        a = ProbInterval(0.1, 0.5)
        b = ProbInterval(0.3, 0.9)
        merged = a.intersect(b)
        assert (merged.low, merged.high) == (0.3, 0.5)

    def test_intersect_inconsistent_keeps_tighter(self):
        a = ProbInterval(0.1, 0.2)
        b = ProbInterval(0.5, 0.9)
        assert a.intersect(b) is a

    def test_definitely_above(self):
        assert ProbInterval(0.6, 0.8).definitely_above(ProbInterval(0.1, 0.5))
        assert not ProbInterval(0.4, 0.8).definitely_above(ProbInterval(0.1, 0.5))

    def test_repr(self):
        assert repr(ProbInterval.point(0.25)) == "ProbInterval(0.25)"
        assert repr(ProbInterval(0.25, 0.5)) == "ProbInterval(0.25, 0.5)"


class TestEvalSpec:
    def test_defaults_are_exact(self):
        spec = EvalSpec()
        assert spec.mode == "exact"
        assert spec.is_exact
        assert spec.budget is None and spec.time_limit is None

    def test_modes(self):
        assert EVAL_MODES == ("exact", "approx", "sample")
        for mode in EVAL_MODES:
            assert EvalSpec(mode=mode).mode == mode
        with pytest.raises(QueryValidationError, match="quantum"):
            EvalSpec(mode="quantum")

    def test_validation(self):
        with pytest.raises(QueryValidationError):
            EvalSpec(epsilon=-0.1)
        with pytest.raises(QueryValidationError):
            EvalSpec(delta=0.0)
        with pytest.raises(QueryValidationError):
            EvalSpec(delta=1.0)
        with pytest.raises(QueryValidationError):
            EvalSpec(budget=0)
        with pytest.raises(QueryValidationError):
            EvalSpec(time_limit=0.0)

    def test_make_coerces_strings_and_overrides(self):
        spec = EvalSpec.make("approx", epsilon=0.01)
        assert spec.mode == "approx"
        assert spec.epsilon == 0.01
        same = EvalSpec.make(spec)
        assert same == spec
        tightened = EvalSpec.make(spec, epsilon=0.001)
        assert tightened.epsilon == 0.001
        assert tightened.mode == "approx"

    def test_make_rejects_junk(self):
        with pytest.raises(QueryValidationError):
            EvalSpec.make(42)

    def test_frozen(self):
        spec = EvalSpec()
        with pytest.raises(AttributeError):
            spec.mode = "approx"

    def test_workers_field(self):
        assert EvalSpec().workers is None
        assert EvalSpec(workers=4).workers == 4
        assert EvalSpec(workers="auto").workers == "auto"
        for bad in (0, -1, 2.5, "many", True):
            with pytest.raises(QueryValidationError, match="workers"):
                EvalSpec(workers=bad)

    def test_make_overrides_workers(self):
        spec = EvalSpec.make("sample", workers=2)
        assert spec.mode == "sample"
        assert spec.workers == 2

    def test_execution_only(self):
        assert EvalSpec().execution_only
        assert EvalSpec(workers=8).execution_only
        assert not EvalSpec(mode="approx", workers=8).execution_only
        assert not EvalSpec(epsilon=0.01).execution_only
        assert not EvalSpec(budget=100, workers=2).execution_only


class TestProbIntervalSerialization:
    """Regression suite for the float-subclass round-trip.

    Plain ``float`` pickling reconstructs from the single float value,
    which would silently drop ``.low``/``.high``; ``__reduce__`` must
    rebuild from the real constructor arguments.  Process pools pickle
    intervals inside arbitrarily nested payloads, so the containers the
    engines actually ship are covered too.
    """

    def test_pickle_roundtrip(self):
        import pickle

        interval = ProbInterval(0.2, 0.6)
        clone = pickle.loads(pickle.dumps(interval))
        assert (clone.low, clone.high) == (0.2, 0.6)
        assert isinstance(clone, ProbInterval)

    def test_pickle_preserves_every_protocol(self):
        import pickle

        interval = ProbInterval(0.125, 0.875)
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(interval, protocol))
            assert type(clone) is ProbInterval
            assert (clone.low, clone.high) == (0.125, 0.875)
            assert float(clone) == float(interval)

    def test_pickle_nested_in_interval_dicts(self):
        """The shape the sharded Monte-Carlo estimator returns."""
        import pickle

        payload = {
            ("a", 1): ProbInterval(0.1, 0.3),
            ("b", 2): ProbInterval.point(0.5),
        }
        clone = pickle.loads(pickle.dumps(payload))
        assert clone[("a", 1)].width == pytest.approx(0.2)
        assert clone[("b", 2)].is_point

    def test_deepcopy(self):
        import copy

        interval = ProbInterval.point(0.3)
        clone = copy.deepcopy(interval)
        assert clone.low == clone.high == 0.3

    def test_deepcopy_wide_interval_keeps_subclass_and_bounds(self):
        import copy

        interval = ProbInterval(0.25, 0.75)
        clone = copy.deepcopy([{"p": interval}])[0]["p"]
        assert type(clone) is ProbInterval
        assert (clone.low, clone.high) == (0.25, 0.75)

    def test_pickle_roundtrip_survives_comparisons(self):
        import pickle

        a = pickle.loads(pickle.dumps(ProbInterval(0.6, 0.8)))
        b = pickle.loads(pickle.dumps(ProbInterval(0.1, 0.5)))
        assert a.definitely_above(b)
        assert a.intersect(ProbInterval(0.7, 0.9)).low == 0.7
