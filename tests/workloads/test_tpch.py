"""Tests for the TPC-H data generator and queries."""

import pytest

from repro.engine.sprout import SproutEngine
from repro.query.tractability import tuple_independent_relations
from repro.query.validate import validate_query
from repro.workloads.tpch import (
    TPCH_SCHEMAS,
    TPCHConfig,
    generate_tpch,
    prepare_q2_aliases,
    table_cardinalities,
    tpch_q1,
    tpch_q2,
)
from repro.workloads.tpch.queries import q2_candidate


@pytest.fixture(scope="module")
def tiny_db():
    db = generate_tpch(TPCHConfig(scale_factor=0.02, seed=5))
    prepare_q2_aliases(db)
    return db


class TestDataGenerator:
    def test_cardinality_ratios(self):
        counts = table_cardinalities(1.0)
        assert counts["partsupp"] == 4 * counts["part"]
        assert counts["lineitem"] == 4 * counts["orders"]
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_scaling_is_monotone(self):
        small = table_cardinalities(0.1)
        large = table_cardinalities(1.0)
        for name in small:
            assert small[name] <= large[name]

    def test_all_tables_generated(self, tiny_db):
        for name in TPCH_SCHEMAS:
            assert name in tiny_db
            assert len(tiny_db[name]) > 0

    def test_tables_are_tuple_independent(self):
        # A freshly generated database (without the Q2 aliases, which
        # intentionally share variables) is fully tuple-independent.
        db = generate_tpch(TPCHConfig(scale_factor=0.02, seed=6))
        independent = tuple_independent_relations(db)
        assert set(TPCH_SCHEMAS) <= independent

    def test_foreign_keys_resolve(self, tiny_db):
        supplier_keys = {row.values[0] for row in tiny_db["supplier"]}
        part_keys = {row.values[0] for row in tiny_db["part"]}
        for row in tiny_db["partsupp"]:
            part_key, supp_key, cost = row.values
            assert part_key in part_keys
            assert supp_key in supplier_keys
            assert 100 <= cost <= 1000

    def test_seed_reproducibility(self):
        db1 = generate_tpch(TPCHConfig(scale_factor=0.02, seed=5))
        db2 = generate_tpch(TPCHConfig(scale_factor=0.02, seed=5))
        rows1 = [row.values for row in db1["lineitem"]]
        rows2 = [row.values for row in db2["lineitem"]]
        assert rows1 == rows2

    def test_probability_range_respected(self):
        config = TPCHConfig(scale_factor=0.02, seed=1,
                            min_probability=0.8, max_probability=0.9)
        db = generate_tpch(config)
        for row in db["supplier"]:
            p = db.registry[row.annotation.name][True]
            assert 0.8 <= p <= 0.9


class TestQ1:
    def test_validates_and_runs(self, tiny_db):
        catalog = {n: t.schema for n, t in tiny_db.tables.items()}
        query = tpch_q1()
        validate_query(query, catalog)
        result = SproutEngine(tiny_db).run(query)
        assert 1 <= len(result) <= 6  # returnflag × linestatus combinations

    def test_count_distribution_total_mass(self, tiny_db):
        result = SproutEngine(tiny_db).run(tpch_q1())
        row = result.rows[0]
        dist = row.value_distribution("order_count")
        assert dist.total() == pytest.approx(1.0)

    def test_cutoff_filters(self, tiny_db):
        all_rows = SproutEngine(tiny_db).rewrite(tpch_q1(cutoff=10**6))
        some_rows = SproutEngine(tiny_db).rewrite(tpch_q1(cutoff=100))
        total_terms = sum(
            len(row.values[2].children) if hasattr(row.values[2], "children") else 1
            for row in all_rows
        )
        few_terms = sum(
            len(row.values[2].children) if hasattr(row.values[2], "children") else 1
            for row in some_rows
        )
        assert few_terms <= total_terms


class TestQ2:
    def test_aliases_share_variables(self, tiny_db):
        base = tiny_db["partsupp"]
        alias = tiny_db["i_partsupp"]
        assert [r.annotation for r in base] == [r.annotation for r in alias]
        assert alias.schema.attributes[0] == "i_ps_partkey"

    def test_candidate_yields_answers(self, tiny_db):
        part_key, region = q2_candidate(tiny_db)
        result = SproutEngine(tiny_db).run(tpch_q2(part_key, region))
        assert len(result) >= 1
        for row in result:
            assert 0 < row.probability() <= 1

    def test_q2_probabilities_sum_below_one_plus_slack(self, tiny_db):
        # The minimum-cost supplier is unique per world (cost ties aside),
        # so presence probabilities of distinct suppliers are sub-additive
        # up to tie worlds.
        part_key, region = q2_candidate(tiny_db)
        result = SproutEngine(tiny_db).run(tpch_q2(part_key, region))
        assert len(result) <= 4  # at most 4 suppliers per part

    def test_query_is_repeating(self, tiny_db):
        # Q2 references partsupp & co twice (via aliases); with aliases it
        # is formally non-repeating at the AST level but correlated through
        # shared variables — the generic compiler handles it.
        part_key, region = q2_candidate(tiny_db)
        query = tpch_q2(part_key, region)
        names = query.base_relations()
        assert "partsupp" in names and "i_partsupp" in names
