"""The paper's running example (Figure 1): suppliers, products, prices.

Reconstructs the pvc-database of Figure 1 — uncertain suppliers S,
uncertain price listings PS, and two uncertain product tables P1/P2 —
through the session facade, then evaluates

* Q1 = π_{shop, price}[S ⋈ PS ⋈ (P1 ∪ P2)]  (Figure 1d), and
* Q2 = π_shop σ_{P≤50} $_{shop; P←MAX(price)}[Q1]  (Figure 1e),

printing the symbolic pvc-tables and the exact answer probabilities, and
finally the decomposition tree of the ⟨Gap⟩ annotation (Figure 6).

Run with::

    python examples/retail_pricing.py
"""

from repro import BOOLEAN, Compiler, cmp_, connect, eq, max_


def build_session():
    s = connect(engine="sprout")

    suppliers = s.table("S", ["sid", "shop"])
    for sid, shop in [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")]:
        suppliers.insert((sid, shop), p=0.5, var=f"x{sid}")

    listings = s.table("PS", ["psid", "pid", "price"])
    for sid, pid, price in [
        (1, 1, 10), (1, 2, 50), (2, 1, 11), (2, 2, 60), (3, 3, 15),
        (3, 4, 40), (4, 1, 15), (4, 3, 60), (5, 1, 10),
    ]:
        listings.insert((sid, pid, price), p=0.6, var=f"y{sid}{pid}")

    products1 = s.table("P1", ["ppid", "weight"])
    for pid, weight in [(1, 4), (2, 8), (3, 7), (4, 6)]:
        products1.insert((pid, weight), p=0.7, var=f"z{pid}")

    s.table("P2", ["ppid", "weight"]).insert((1, 5), p=0.5, var="z5")
    return s


def q1(s):
    """Q1 = π_{shop,price}[S ⋈ PS ⋈ (P1 ∪ P2)]."""
    products = s.table("P1").union(s.table("P2"))
    return (
        s.table("S")
        .product(s.table("PS"))
        .product(products)
        .where(eq("sid", "psid"), eq("pid", "ppid"))
        .select("shop", "price")
    )


def q2(s, limit: int = 50):
    """Q2 = π_shop σ_{P≤limit} $_{shop; P←MAX(price)}[Q1]."""
    return (
        q1(s)
        .group_by("shop")
        .agg(P=max_("price"))
        .where(cmp_("P", "<=", limit))
        .select("shop")
    )


def main():
    s = build_session()

    print("Q1 — prices of products available in shops (Figure 1d):")
    print(s.rewrite(q1(s)).pretty())

    print("\nQ1 answer probabilities:")
    for row in q1(s).run():
        print(f"  {row.values}:  P = {row.probability():.4f}")

    print("\nQ2 — shops whose maximal price is ≤ 50 (Figure 1e):")
    for row in q2(s).run():
        print(f"  {row.values[0]:<5} P = {row.probability():.4f}")
        print(f"        Φ = {row.annotation!r}")

    # The distribution of MAX(price) per shop, conditioned on existence.
    grouped = q1(s).group_by("shop").agg(P=max_("price"))
    print("\nDistribution of MAX(price) per shop:")
    for row in grouped.run():
        shop = row.values[0]
        print(f"  {shop}:")
        for value, probability in sorted(
            row.value_distribution("P").items(), key=lambda kv: float(kv[0])
        ):
            print(f"    max = {value:>4}:  {probability:.4f}")

    # Figure 6: the d-tree of the Gap group's semimodule expression
    # (a fresh compiler, so the node/expansion counts are this tree's own).
    gap_row = next(r for r in s.rewrite(grouped) if r.values[0] == "Gap")
    compiler = Compiler(s.registry, BOOLEAN)
    tree = compiler.compile(gap_row.values[1])
    print("\nDecomposition tree of the ⟨Gap⟩ aggregation value (Figure 6):")
    print(tree.pretty("  "))
    print(f"\n(d-tree: {tree.dag_size()} nodes, "
          f"{compiler.mutex_nodes_created} Shannon expansions)")


if __name__ == "__main__":
    main()
