"""Property tests: approximation bounds always bracket the exact value.

Three layers, matching the anytime-answers redesign:

* expression level — budgeted bounds on random Boolean expressions;
* semimodule level — bounds on random aggregation comparisons
  ``[Σ Φᵢ ⊗ mᵢ θ c]`` (the new conditional path through
  ``algebra/bounds.value_bounds``);
* engine level — every ``ProbInterval`` the approx engine reports for a
  random query under *any* budget contains the brute-force oracle
  probability, widths meet ε whenever the engine claims convergence, and
  anytime snapshots nest monotonically; plus seeded coverage of the
  (ε, δ) Monte-Carlo intervals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semiring import BOOLEAN
from repro.core.approx import ApproximateCompiler
from repro.core.compile import Compiler
from repro.engine.base import NaiveAdapter, create_engine
from repro.engine.spec import EvalSpec
from repro.prob.space import ProbabilitySpace

from tests.property.strategies import (
    boolean_registries,
    conditions,
    queries,
    query_databases,
    semiring_exprs,
)

SETTINGS = settings(max_examples=50, deadline=None)
ENGINE_SETTINGS = settings(max_examples=25, deadline=None)


class TestBoundsBracketExact:
    @SETTINGS
    @given(
        boolean_registries(),
        semiring_exprs(depth=3),
        st.integers(min_value=0, max_value=16),
    )
    def test_bounds_contain_exact_probability(self, registry, expr, budget):
        exact = Compiler(registry, BOOLEAN).probability(expr)
        bounds = ApproximateCompiler(registry, budget).bounds(expr)
        assert bounds.contains(exact, tol=1e-7)

    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=3))
    def test_bounds_monotone_in_budget(self, registry, expr):
        widths = []
        for budget in (0, 2, 8, 64):
            bounds = ApproximateCompiler(registry, budget).bounds(expr)
            widths.append(bounds.width)
        # Widths never increase as the budget grows.
        assert all(a >= b - 1e-9 for a, b in zip(widths, widths[1:]))

    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=2))
    def test_large_budget_is_exact(self, registry, expr):
        bounds = ApproximateCompiler(registry, 1 << 12).bounds(expr)
        exact = ProbabilitySpace(registry, BOOLEAN).probability(expr)
        assert bounds.width < 1e-9
        assert abs(bounds.low - exact) < 1e-7


class TestSemimoduleComparisons:
    """The conditional path: ``[Σ Φᵢ ⊗ mᵢ θ c]`` annotations."""

    @SETTINGS
    @given(
        boolean_registries(),
        conditions(),
        st.integers(min_value=0, max_value=16),
    )
    def test_condition_bounds_contain_exact(self, registry, condition, budget):
        exact = ProbabilitySpace(registry, BOOLEAN).probability(condition)
        bounds = ApproximateCompiler(registry, budget).bounds(condition)
        assert bounds.contains(exact, tol=1e-7)

    @SETTINGS
    @given(boolean_registries(), conditions())
    def test_condition_bounds_monotone_in_budget(self, registry, condition):
        widths = []
        for budget in (0, 1, 4, 32, 256):
            bounds = ApproximateCompiler(registry, budget).bounds(condition)
            widths.append(bounds.width)
        assert all(a >= b - 1e-9 for a, b in zip(widths, widths[1:]))

    @SETTINGS
    @given(boolean_registries(), conditions())
    def test_condition_large_budget_is_exact(self, registry, condition):
        bounds = ApproximateCompiler(registry, 1 << 12).bounds(condition)
        exact = ProbabilitySpace(registry, BOOLEAN).probability(condition)
        assert bounds.width < 1e-9
        assert abs(bounds.low - exact) < 1e-7

    @SETTINGS
    @given(
        boolean_registries(),
        st.lists(conditions(), min_size=2, max_size=3),
        st.integers(min_value=0, max_value=8),
    )
    def test_products_of_conditions(self, registry, conds, budget):
        """Annotations multiply guards into products; still bracketed."""
        from repro.algebra.expressions import sprod

        expr = sprod(conds)
        exact = ProbabilitySpace(registry, BOOLEAN).probability(expr)
        bounds = ApproximateCompiler(registry, budget).bounds(expr)
        assert bounds.contains(exact, tol=1e-7)


class TestEngineSoundness:
    """Acceptance criterion: reported intervals contain the oracle."""

    @ENGINE_SETTINGS
    @given(
        query_databases(),
        queries(),
        st.integers(min_value=1, max_value=64),
    )
    def test_any_budget_intervals_contain_oracle(self, db, query, budget):
        oracle = NaiveAdapter(db).run(query).tuple_probabilities()
        adapter = create_engine("approx", db)
        result = adapter.run(
            query, spec=EvalSpec(mode="approx", epsilon=0.0, budget=budget)
        )
        assert result.stats["expansions"] <= budget
        for row in result:
            interval = row.probability()
            # Rows are symbolic; compare on the presence probability of
            # the row's concrete-tuple mass (oracle sums per tuple).
            total = sum(
                p for values, p in oracle.items()
                if values == row.values
            )
            if row.values in oracle:
                assert interval.low - 1e-7 <= total <= interval.high + 1e-7

    @ENGINE_SETTINGS
    @given(query_databases(), queries())
    def test_converged_widths_meet_epsilon(self, db, query):
        adapter = create_engine("approx", db)
        result = adapter.run(query, spec=EvalSpec(mode="approx", epsilon=0.05))
        if result.stats["converged"]:
            for row in result:
                assert row.probability().width <= 0.05 + 1e-9

    @ENGINE_SETTINGS
    @given(query_databases(), queries())
    def test_snapshots_nest_and_final_contains_oracle(self, db, query):
        oracle = NaiveAdapter(db).run(query).tuple_probabilities()
        adapter = create_engine("approx", db)
        previous = None
        for snapshot in adapter.run_iter(
            query, spec=EvalSpec(mode="approx", epsilon=1e-9, budget=256)
        ):
            current = {}
            for row in snapshot:
                interval = row.probability()
                current.setdefault(row.values, []).append(interval)
                if previous is not None and row.values in previous:
                    prior = previous[row.values][len(current[row.values]) - 1]
                    assert interval.low >= prior.low - 1e-12
                    assert interval.high <= prior.high + 1e-12
            previous = current
        for values, p in oracle.items():
            if values in previous and len(previous[values]) == 1:
                interval = previous[values][0]
                assert interval.low - 1e-7 <= p <= interval.high + 1e-7


class TestMonteCarloCoverage:
    """Seeded (ε, δ) intervals cover the truth at the configured rate."""

    def test_coverage_rate(self):
        from repro.algebra.expressions import Var
        from repro.db.pvc_table import PVCDatabase
        from repro.engine.montecarlo import MonteCarloEngine
        from repro.engine.naive import NaiveEngine
        from repro.prob.variables import VariableRegistry
        from repro.query.ast import relation

        registry = VariableRegistry()
        db = PVCDatabase(registry=registry, semiring=BOOLEAN)
        table = db.create_table("R", ["a"])
        for i, p in enumerate([0.5, 0.2, 0.85]):
            registry.bernoulli(f"r{i}", p)
            table.add((i,), Var(f"r{i}"))
        query = relation("R")
        exact = NaiveEngine(db).tuple_probabilities(query)

        epsilon, delta = 0.12, 0.1
        runs, misses = 40, 0
        for seed in range(runs):
            intervals, info = MonteCarloEngine(db, seed=seed).estimate_intervals(
                query, epsilon=epsilon, delta=delta
            )
            assert info["converged"]
            assert all(i.width <= epsilon + 1e-9 for i in intervals.values())
            if any(
                not intervals[key].contains(p)
                for key, p in exact.items()
                if key in intervals
            ):
                misses += 1
        # Per-interval failure probability is ≤ δ; across 3 tuples a run
        # misses with probability ≤ 3δ.  The bound is very conservative
        # (Hoeffding ∩ Wilson with round-wise δ-splitting), so observed
        # misses are far rarer; allow the nominal rate plus slack.
        assert misses / runs <= 3 * delta + 0.05
