"""The approximate engine: anytime answers with deterministic bounds.

Drives :class:`repro.core.approx.ApproximateCompiler` in an
iterative-deepening loop over the rows of the step-I symbolic result:
every row's presence probability is bracketed by a
:class:`~repro.engine.spec.ProbInterval` that *certainly* contains the
true value (unlike Monte-Carlo confidence intervals, these bounds are
deterministic), and the Shannon budget doubles per round until

* every interval width is ≤ ``spec.epsilon`` (converged),
* the total expansion ``spec.budget`` is exhausted,
* the ``spec.time_limit`` trips, or
* refinement would cost more than exact compilation, at which point the
  remaining rows are compiled exactly (only when neither a budget nor a
  time limit was requested — a capped run never silently exceeds its cap).

Intervals nest monotonically across rounds (each refinement is
intersected with the previous bracket), which is what makes
:meth:`ApproxAdapter.run_iter` a true anytime iterator: consumers can
stop at any snapshot and still hold sound, ever-tighter answers — e.g.
stop as soon as ``QueryResult.top_k(k).stats["top_k_decided"]`` flips.
"""

from __future__ import annotations

import time

from repro.algebra.simplify import Normalizer
from repro.core.approx import ApproximateCompiler, bounds_task
from repro.core.compile import Compiler
from repro.db.pvc_table import PVCDatabase
from repro.engine.spec import EvalSpec, ProbInterval
from repro.engine.sprout import QueryResult, ResultRow, SproutEngine
from repro.errors import QueryTimeoutError, QueryValidationError
from repro.parallel import pool as parallel_pool
from repro.parallel.shards import resolve_workers
from repro.query.ast import Query
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.faults import fault_point

__all__ = ["ApproxAdapter"]

#: Past this per-row Shannon allowance exact compilation is typically
#: cheaper than further refinement (matches ``approximate_probability``).
_MAX_ROW_BUDGET = 1 << 20

#: First-round per-row Shannon allowance.
_INITIAL_ROW_BUDGET = 8


class ApproxAdapter:
    """Budgeted d-tree approximation behind the ``Engine`` protocol."""

    name = "approx"

    def __init__(
        self,
        db: PVCDatabase,
        distribution_source=None,
        plan_source=None,
        **compiler_options,
    ):
        self.db = db
        #: Step I (symbolic rewriting) is shared with the exact engine —
        #: including its prepared-plan cache.
        self.engine = SproutEngine(
            db,
            distribution_source=distribution_source,
            plan_source=plan_source,
            **compiler_options,
        )
        self.distribution_source = distribution_source
        self.compiler_options = compiler_options

    def _row_compiler(self):
        """Distribution source for the result rows' exact accessors."""
        if self.distribution_source is not None:
            return self.distribution_source
        return Compiler(
            self.db.registry, self.db.semiring, **self.compiler_options
        )

    def run(self, query: Query, spec: EvalSpec | None = None, **options) -> QueryResult:
        """Refine until the spec is satisfied; return the final snapshot."""
        spec = EvalSpec.make(spec)
        result = None
        for result in self.run_iter(query, spec=spec, **options):
            pass
        if result.stats.get("deadline_hit") and spec.on_timeout == "raise":
            raise QueryTimeoutError(
                f"approximate refinement exceeded time_limit="
                f"{spec.time_limit:g}s (max interval width "
                f"{result.stats.get('max_width', 1.0):.3g})",
                partial=result,
                elapsed=result.stats.get("wall_seconds"),
            )
        return result

    def run_iter(self, query: Query, spec: EvalSpec | None = None, **options):
        """Yield progressively refined :class:`QueryResult` snapshots.

        Every snapshot is a fully usable result (sound intervals on every
        row); the final one carries ``stats["converged"]``.  Snapshots
        hold their own row objects, so earlier snapshots are not mutated
        by later refinement.
        """
        if options:
            raise QueryValidationError(
                f"approx engine takes no run options beyond spec, got "
                f"{sorted(options)}"
            )
        spec = EvalSpec.make(spec)
        if spec.mode == "sample":
            raise QueryValidationError(
                "spec mode 'sample' is Monte-Carlo; use engine='montecarlo'"
            )
        # mode "exact" refines all the way down (ε = 0 ends in the exact
        # fallback); mode "approx" stops at the requested width.
        epsilon = spec.epsilon if spec.mode == "approx" else 0.0

        #: One deadline for the whole run (rewriting included), threaded
        #: into the ApproximateCompiler's Shannon loop (mid-row expiry
        #: degrades to unknown bounds, the same soundness as budget
        #: exhaustion) and into the pool watchdog around fan-out rounds.
        deadline = Deadline.after(spec.time_limit)
        start = time.perf_counter()
        table = self.engine.rewrite(query)
        rewrite_seconds = time.perf_counter() - start

        registry = self.db.registry
        semiring = self.db.semiring
        row_compiler = self._row_compiler()
        annotations = [row.annotation for row in table]
        intervals: list[ProbInterval | None] = [None] * len(annotations)
        pending = set(range(len(annotations)))
        #: Shared across rows *and* rounds: the fused restrict cache (pure)
        #: and, per row, the sub-bounds an earlier round proved exact.
        normalizer = Normalizer(semiring)
        seeds: list[dict | None] = [None] * len(annotations)

        row_budget = _INITIAL_ROW_BUDGET
        expansions = 0
        rounds = 0
        exhausted = False
        timed_out = False
        #: Per-row refinement is independent within a round, so rounds
        #: fan out across a process pool — except under a global
        #: expansion budget, where each row's allowance depends on what
        #: earlier rows actually spent and the accounting must stay
        #: sequential to remain deterministic.
        effective_workers = resolve_workers(spec.workers)
        fan_out = (
            effective_workers is not None
            and effective_workers > 1
            and spec.budget is None
        )
        #: One pool for all refinement rounds (forked lazily on the
        #: first round that dispatches more than one task).
        shared = (
            parallel_pool.SharedPool(
                bounds_task,
                (registry, semiring, tuple(annotations)),
                effective_workers,
            )
            if fan_out
            else None
        )
        parallel_stats: dict = {}

        def snapshot(converged: bool) -> QueryResult:
            rows = [
                ResultRow(
                    table.schema,
                    pvc_row.values,
                    pvc_row.annotation,
                    row_compiler,
                    _probability=(
                        intervals[i]
                        if intervals[i] is not None
                        else ProbInterval.unknown()
                    ),
                )
                for i, pvc_row in enumerate(table)
            ]
            wall = time.perf_counter() - start
            widths = [
                interval.width if interval is not None else 1.0
                for interval in intervals
            ]
            timings = {
                "rewrite_seconds": rewrite_seconds,
                "probability_seconds": wall - rewrite_seconds,
            }
            stats = {
                "wall_seconds": wall,
                "rows": len(rows),
                "rounds": rounds,
                "expansions": expansions,
                "converged": converged,
                "max_width": max(widths, default=0.0),
                "epsilon": epsilon,
                "db_generation": self.db.generation,
            }
            if timed_out:
                stats["deadline_hit"] = True
            stats.update(parallel_stats)
            return QueryResult(
                table.schema, rows, timings, engine=self.name, stats=stats
            )

        def out_of_time() -> bool:
            nonlocal timed_out
            if deadline is not None and deadline.expired():
                timed_out = True
                return True
            return False

        def refine(index: int, low: float, high: float) -> None:
            refined = ProbInterval(low, high)
            previous = intervals[index]
            if previous is not None:
                refined = previous.intersect(refined)
            intervals[index] = refined
            if refined.width <= epsilon:
                pending.discard(index)

        try:
            while pending and not exhausted:
                rounds += 1
                fault_point("engine.approx.round")
                if fan_out and len(pending) > 1 and not out_of_time():
                    # Every pending row gets the same allowance, so the round
                    # is a pure fan-out; results merge in row order and are
                    # bit-identical to the serial loop (the shared normalizer
                    # below is only a cache).  Pool failures degrade to the
                    # serial path inside SharedPool.run, recorded in stats.
                    indices = sorted(pending)
                    payloads = [(i, row_budget, seeds[i]) for i in indices]
                    # The scope covers only this (yield-free) block: it
                    # hands the deadline to the pool watchdog so a hung
                    # round cannot outlive the time budget by more than
                    # the watchdog grace period.
                    with deadline_scope(deadline):
                        results, info = shared.run(payloads)
                    parallel_stats["workers"] = info["workers"]
                    if "parallel_fallback" in info:
                        parallel_stats["parallel_fallback"] = info[
                            "parallel_fallback"
                        ]
                    for index, (low, high, spent, exact) in zip(indices, results):
                        seeds[index] = exact
                        expansions += spent
                        refine(index, low, high)
                    if out_of_time():
                        exhausted = True
                else:
                    for index in sorted(pending):
                        if spec.budget is not None and expansions >= spec.budget:
                            exhausted = True
                            break
                        if out_of_time():
                            exhausted = True
                            break
                        allowance = row_budget
                        if spec.budget is not None:
                            allowance = min(allowance, spec.budget - expansions)
                        approximator = ApproximateCompiler(
                            registry,
                            allowance,
                            semiring,
                            normalizer=normalizer,
                            seed_bounds=seeds[index],
                            deadline=deadline,
                        )
                        bounds = approximator.bounds(annotations[index])
                        seeds[index] = approximator.exact_bounds()
                        expansions += approximator.expansions
                        refine(
                            index, bounds.low, bounds.high
                        )
                if not pending or exhausted:
                    break
                yield snapshot(converged=False)
                row_budget *= 2
                if row_budget > _MAX_ROW_BUDGET:
                    if spec.budget is None and spec.time_limit is None:
                        # Unbounded spec: finish the stragglers exactly.
                        for index in sorted(pending):
                            exact = 1.0 - row_compiler.distribution(
                                annotations[index]
                            )[semiring.zero]
                            intervals[index] = ProbInterval.point(exact)
                        pending.clear()
                    exhausted = True

            yield snapshot(converged=not pending)
        finally:
            if shared is not None:
                shared.close()
