"""End-to-end tests driving the engine through the SQL front-end."""

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import parse_sql


@pytest.fixture
def shop_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    products = db.create_table("products", ["pid", "category", "price"])
    rows = [
        (1, "printer", 100, 0.8),
        (2, "printer", 250, 0.5),
        (3, "laptop", 900, 0.6),
        (4, "laptop", 1400, 0.3),
    ]
    for pid, category, price, probability in rows:
        reg.bernoulli(f"p{pid}", probability)
        products.add((pid, category, price), Var(f"p{pid}"))

    stock = db.create_table("stock", ["sid", "quantity"])
    for sid, quantity, probability in [(1, 5, 0.9), (3, 2, 0.7)]:
        reg.bernoulli(f"s{sid}", probability)
        stock.add((sid, quantity), Var(f"s{sid}"))
    return db


def assert_sql_matches_oracle(db, sql):
    query = parse_sql(sql)
    compiled = SproutEngine(db).run(query).tuple_probabilities()
    brute = NaiveEngine(db).tuple_probabilities(query)
    assert set(compiled) == set(brute), (sql, compiled, brute)
    for key in brute:
        assert compiled[key] == pytest.approx(brute[key]), (sql, key)


class TestSqlQueries:
    def test_projection(self, shop_db):
        assert_sql_matches_oracle(shop_db, "SELECT category FROM products")

    def test_selection(self, shop_db):
        assert_sql_matches_oracle(
            shop_db, "SELECT pid FROM products WHERE price <= 300"
        )

    def test_string_predicate(self, shop_db):
        assert_sql_matches_oracle(
            shop_db, "SELECT pid FROM products WHERE category = 'laptop'"
        )

    def test_join(self, shop_db):
        assert_sql_matches_oracle(
            shop_db,
            "SELECT category, quantity FROM products, stock WHERE pid = sid",
        )

    def test_grouped_count(self, shop_db):
        assert_sql_matches_oracle(
            shop_db,
            "SELECT category, COUNT(*) AS n FROM products GROUP BY category",
        )

    def test_grouped_min(self, shop_db):
        assert_sql_matches_oracle(
            shop_db,
            "SELECT category, MIN(price) AS cheapest FROM products "
            "GROUP BY category",
        )

    def test_global_sum(self, shop_db):
        assert_sql_matches_oracle(
            shop_db, "SELECT SUM(price) AS total FROM products"
        )

    def test_scalar_subquery_example_3(self, shop_db):
        assert_sql_matches_oracle(
            shop_db,
            "SELECT pid FROM products "
            "WHERE price = (SELECT MIN(price) FROM products)"
            if False
            else "SELECT sid FROM stock "
            "WHERE quantity >= (SELECT MIN(price) FROM products)",
        )

    def test_subquery_against_attribute(self, shop_db):
        # Example 3's shape: σ_{B=γ}(R × $_{∅;γ←MIN(C)}(S)).
        assert_sql_matches_oracle(
            shop_db,
            "SELECT pid FROM products "
            "WHERE price <= (SELECT MAX(quantity) FROM stock)",
        )


class TestSqlAnswers:
    def test_min_price_probabilities(self, shop_db):
        query = parse_sql(
            "SELECT category, MIN(price) AS cheapest FROM products "
            "GROUP BY category"
        )
        result = SproutEngine(shop_db).run(query)
        printers = next(r for r in result if r.values[0] == "printer")
        dist = printers.conditional_value_distribution("cheapest")
        # given the printer group is non-empty: min is 100 unless only
        # product 2 is present
        p1, p2 = 0.8, 0.5
        present = 1 - (1 - p1) * (1 - p2)
        assert dist[100] == pytest.approx(p1 / present)
        assert dist[250] == pytest.approx((1 - p1) * p2 / present)
