"""Anytime answers: interval-valued results, EvalSpec, and fast top-k.

A risk register with correlated events — outside the tractable query
classes, so exact compilation is not guaranteed cheap.  Instead of one
all-or-nothing answer we ask for *guaranteed approximations*:

1. ``engine="auto"`` degrades the hard query to deterministic ε-bounds
   (every reported ``ProbInterval`` certainly contains the truth);
2. an explicit ``EvalSpec`` trades accuracy for latency — compare
   ``mode="approx"`` (deterministic bounds) with ``mode="sample"``
   ((ε, δ) Monte-Carlo confidence intervals);
3. ``Session.run_iter()`` streams progressively refined snapshots, and
   ``top_k`` stops the refinement as soon as interval separation already
   decides the ranking — long before the intervals collapse.

Run with::

    python examples/anytime_topk.py
"""

from repro import EvalSpec, Var, connect


def build_session():
    s = connect(seed=13)
    # Shared root causes make the rows *correlated*: each incident fires
    # when any of its contributing causes does.
    causes = {
        "power": 0.35, "network": 0.45, "ops": 0.25, "vendor": 0.5,
        "weather": 0.3, "staff": 0.4, "disk": 0.3, "dns": 0.55,
        "capacity": 0.35, "deploy": 0.45,
    }
    for name, p in causes.items():
        s.registry.bernoulli(name, p)
    (power, network, ops, vendor, weather,
     staff, disk, dns, capacity, deploy) = (Var(n) for n in causes)

    incidents = s.table("incidents", ["incident"])
    # Each incident fires when every listed failure *combination* has at
    # least one active cause — products of overlapping 3-cause clauses,
    # the CNF-like shape whose compilation cost is the paper's hard case.
    rows = {
        "datacenter outage": (
            (power + weather + disk) * (power + vendor + capacity)
            * (staff + disk + power) * (weather + capacity + dns)
            * (disk + staff + vendor) * (power + dns + staff)
            * (capacity + vendor + weather)
        ),
        "pipeline stall": (
            (network + ops + deploy) * (network + vendor + capacity)
            * (ops + power + dns) * (deploy + network + staff)
            * (capacity + deploy + ops) * (dns + vendor + network)
            * (power + staff + deploy)
        ),
        "billing backlog": (
            (vendor + ops + dns) * (vendor + network + staff)
            * (staff + deploy + ops) * (dns + capacity + vendor)
            * (deploy + network + capacity)
        ),
        "sensor blackout": (
            (weather + network + disk) * (weather + power + dns)
            * (dns + disk + capacity) * (network + capacity + weather)
            * (disk + power + network)
        ),
    }
    for incident, annotation in rows.items():
        s.db.insert("incidents", (incident,), annotation=annotation)
    return s


def main():
    s = build_session()
    q = s.table("incidents").select("incident")
    print("Tractable?", s.classify(q).tractable)

    # 1. auto: the hard query degrades to guaranteed ε-approximation.
    result = s.run(q)  # no warning, no unqualified estimate
    print(f"\nengine=auto -> {result.engine} "
          f"(converged={result.stats['converged']}, "
          f"expansions={result.stats['expansions']})")
    for row in result:
        interval = row.probability()
        print(f"  P[{row.values[0]}] ∈ [{interval.low:.4f}, {interval.high:.4f}]")

    # 2. The same spec vocabulary across engines.
    approx = s.run(q, spec=EvalSpec(mode="approx", epsilon=0.001))
    sampled = s.run(q, spec=EvalSpec(mode="sample", epsilon=0.05, delta=0.01))
    print(f"\nmode=approx ε=0.001: max width "
          f"{max(r.probability().width for r in approx):.5f} "
          f"({approx.stats['expansions']} expansions)")
    print(f"mode=sample (ε, δ)=(0.05, 0.01): max width "
          f"{max(r.probability().width for r in sampled):.5f} "
          f"({sampled.stats['samples']} worlds)")

    # 3. Anytime top-k: stop refining once the ranking is decided.
    print("\nAnytime top-2 (stop on interval separation):")
    for snapshot in s.run_iter(q, mode="approx", epsilon=1e-9):
        top = snapshot.top_k(2)
        widest = max(r.probability().width for r in snapshot)
        print(f"  round {snapshot.stats['rounds']}: widest interval "
              f"{widest:.4f}, decided={top.stats['top_k_decided']}")
        if top.stats["top_k_decided"]:
            break
    print("Top-2 incidents:",
          ", ".join(row.values[0] for row in top.rows))


if __name__ == "__main__":
    main()
