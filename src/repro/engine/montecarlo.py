"""Monte-Carlo sampling baseline (in the spirit of MCDB [10]).

The related work the paper contrasts with relies on sampling possible
worlds and estimating answer probabilities from frequencies.  This engine
implements that baseline: it samples valuations of the random variables,
evaluates the query deterministically in each sampled world, and reports
empirical tuple frequencies.  It converges at the usual ``O(1/√n)``
Monte-Carlo rate and — unlike the compiled engine — provides no exactness
guarantee, which is the paper's core argument for exact computation via
knowledge compilation.
"""

from __future__ import annotations

import random
from repro.algebra.valuation import Valuation
from repro.db.pvc_table import PVCDatabase
from repro.engine.naive import evaluate_deterministic
from repro.query.ast import Query
from repro.query.validate import validate_query

__all__ = ["MonteCarloEngine"]


class MonteCarloEngine:
    """Approximate query answering by sampling possible worlds."""

    def __init__(self, db: PVCDatabase, seed: int | None = None):
        self.db = db
        self.random = random.Random(seed)

    def sample_valuation(self) -> Valuation:
        """Draw one valuation of all registered variables."""
        assignment = {}
        for name, dist in self.db.registry.items():
            values, weights = zip(*dist.items())
            assignment[name] = self.random.choices(values, weights=weights)[0]
        return Valuation(assignment, self.db.semiring)

    def tuple_probabilities(
        self, query: Query, samples: int = 1000
    ) -> dict[tuple, float]:
        """Empirical estimate of ``P[t ∈ answer]`` from ``samples`` worlds."""
        if samples <= 0:
            raise ValueError("need at least one sample")
        catalog = self.db.catalog()
        validate_query(query, catalog)
        counts: dict[tuple, int] = {}
        for _ in range(samples):
            valuation = self.sample_valuation()
            world = {
                name: table.instantiate(valuation, self.db.semiring)
                for name, table in self.db.tables.items()
            }
            result = evaluate_deterministic(query, world)
            for values in result.support():
                counts[values] = counts.get(values, 0) + 1
        return {values: count / samples for values, count in counts.items()}

    def estimate_probability(
        self, query: Query, values: tuple, samples: int = 1000
    ) -> float:
        """Estimate the probability of one specific answer tuple."""
        estimates = self.tuple_probabilities(query, samples)
        return estimates.get(tuple(values), 0.0)
