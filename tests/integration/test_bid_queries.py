"""Integration tests: BID databases through the full query pipeline.

Block-independent-disjoint tables exercise the conditional-annotation
(``[x_b = i]``) and bag-semantics code paths end to end; the compiled
engine must agree with the possible-worlds oracle on them too.
"""

import pytest

from repro.algebra import NATURALS
from repro.db import PVCDatabase, bid_table, tuple_independent_table
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    cmp_,
    conj,
    eq,
    relation,
)


@pytest.fixture
def bid_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=NATURALS)
    # Two blocks of mutually exclusive candidate readings.
    readings = bid_table(
        ["room", "temp"],
        [
            [((1, 20), 0.4), ((1, 30), 0.4)],  # 20% no reading
            [((2, 25), 0.7), ((2, 35), 0.3)],
        ],
        reg,
        prefix="b",
    )
    db.add_table("readings", readings)
    rooms = tuple_independent_table(
        ["rid", "wing"],
        [((1, "north"), 0.9), ((2, "south"), 0.8)],
        reg,
        prefix="r",
    )
    db.add_table("rooms", rooms)
    return db


def assert_engines_agree(db, query):
    compiled = SproutEngine(db).run(query).tuple_probabilities()
    brute = NaiveEngine(db).tuple_probabilities(query)
    assert set(compiled) == set(brute), (compiled, brute)
    for key in brute:
        assert compiled[key] == pytest.approx(brute[key]), key


class TestBidThroughQueries:
    def test_base_relation(self, bid_db):
        assert_engines_agree(bid_db, relation("readings"))

    def test_alternatives_are_exclusive(self, bid_db):
        probs = SproutEngine(bid_db).run(relation("readings")).tuple_probabilities()
        # P[(1,20)] + P[(1,30)] ≤ 1 and equals the block mass 0.8.
        assert probs[(1, 20)] + probs[(1, 30)] == pytest.approx(0.8)

    def test_selection(self, bid_db):
        query = Select(relation("readings"), cmp_("temp", ">=", 30))
        assert_engines_agree(bid_db, query)

    def test_join_with_ti_table(self, bid_db):
        query = Project(
            Select(
                Product(relation("readings"), relation("rooms")),
                eq("room", "rid"),
            ),
            ["wing", "temp"],
        )
        assert_engines_agree(bid_db, query)

    def test_max_aggregation_over_blocks(self, bid_db):
        query = GroupAgg(
            relation("readings"), ["room"], [AggSpec.of("hot", "MAX", "temp")]
        )
        assert_engines_agree(bid_db, query)

    def test_global_count_over_blocks(self, bid_db):
        query = GroupAgg(relation("readings"), [], [AggSpec.of("n", "COUNT")])
        result = SproutEngine(bid_db).run(query)
        dist = result.rows[0].value_distribution("n")
        # Each block contributes at most one reading.
        assert set(dist.support()) <= {0, 1, 2}
        assert dist[2] == pytest.approx(0.8 * 1.0)  # block1 present · block2 present
        assert_engines_agree(bid_db, query)

    def test_having_over_blocks(self, bid_db):
        agg = GroupAgg(
            relation("readings"), ["room"], [AggSpec.of("hot", "MAX", "temp")]
        )
        query = Project(Select(agg, cmp_("hot", ">", 28)), ["room"])
        assert_engines_agree(bid_db, query)
