"""Tests for the convolution equations (4)-(10) of the paper."""

import math

import pytest

from repro.algebra.conditions import COMPARISON_OPS
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.prob import convolution
from repro.prob.distribution import Distribution


class TestExample2:
    """P(Φ ∨ Ψ) = 1 - (1-p)(1-q) as a convolution special case."""

    def test_disjunction_formula(self):
        p, q = 0.3, 0.6
        d_phi = Distribution.bernoulli(p)
        d_psi = Distribution.bernoulli(q)
        result = convolution.semiring_add(d_phi, d_psi, BOOLEAN)
        assert result[True] == pytest.approx(1 - (1 - p) * (1 - q))

    def test_conjunction_formula(self):
        p, q = 0.3, 0.6
        result = convolution.semiring_mul(
            Distribution.bernoulli(p), Distribution.bernoulli(q), BOOLEAN
        )
        assert result[True] == pytest.approx(p * q)


class TestSemiringConvolutions:
    def test_naturals_addition(self):
        d1 = Distribution({0: 0.5, 1: 0.5})
        d2 = Distribution({0: 0.5, 2: 0.5})
        result = convolution.semiring_add(d1, d2, NATURALS)
        assert result[0] == pytest.approx(0.25)
        assert result[3] == pytest.approx(0.25)

    def test_naturals_multiplication(self):
        d1 = Distribution({1: 0.5, 2: 0.5})
        d2 = Distribution({3: 1.0})
        result = convolution.semiring_mul(d1, d2, NATURALS)
        assert result.support() == {3, 6}


class TestMonoidConvolutions:
    def test_min_addition(self):
        d1 = Distribution({5: 0.5, math.inf: 0.5})
        d2 = Distribution({3: 0.5, math.inf: 0.5})
        result = convolution.monoid_add(d1, d2, MIN)
        assert result[3] == pytest.approx(0.5)
        assert result[5] == pytest.approx(0.25)
        assert result[math.inf] == pytest.approx(0.25)

    def test_max_addition(self):
        d1 = Distribution({5: 1.0})
        d2 = Distribution({3: 0.5, 7: 0.5})
        result = convolution.monoid_add(d1, d2, MAX)
        assert result[5] == pytest.approx(0.5)
        assert result[7] == pytest.approx(0.5)

    def test_sum_addition_support_grows(self):
        d1 = Distribution({0: 0.5, 1: 0.5})
        d2 = Distribution({0: 0.5, 2: 0.5})
        result = convolution.monoid_add(d1, d2, SUM)
        assert result.support() == {0, 1, 2, 3}


class TestExample11:
    """Example 11 of the paper, verbatim."""

    def setup_method(self):
        self.px = Distribution({0: 0.3, 1: 0.3, 2: 0.4})
        py = Distribution({1: 0.4, 2: 0.4, 3: 0.2})
        self.palpha = py.map(lambda v: v * 5)  # α = y ⊗ 5

    def test_alpha_distribution(self):
        assert self.palpha[5] == pytest.approx(0.4)
        assert self.palpha[10] == pytest.approx(0.4)
        assert self.palpha[15] == pytest.approx(0.2)

    def test_scalar_action_naturals(self):
        result = convolution.scalar_action(self.px, self.palpha, SUM, NATURALS)
        # P[10] = Px[1]·Pα[10] + Px[2]·Pα[5]
        assert result[10] == pytest.approx(0.3 * 0.4 + 0.4 * 0.4)
        # "Further possible outcomes for Φ ⊗ α are 0, 5, 15, 20, 30."
        assert result.support() == {0, 5, 10, 15, 20, 30}

    def test_scalar_action_boolean(self):
        px = Distribution.bernoulli(0.6)
        palpha = Distribution.point(5)
        result = convolution.scalar_action(px, palpha, SUM, BOOLEAN)
        assert result[5] == pytest.approx(0.6)
        assert result[0] == pytest.approx(0.4)


class TestComparisonConvolution:
    def test_module_comparison(self):
        d_left = Distribution({10: 0.5, 20: 0.5})
        d_right = Distribution({15: 1.0})
        result = convolution.comparison(
            d_left, d_right, COMPARISON_OPS["<="], BOOLEAN
        )
        assert result[True] == pytest.approx(0.5)

    def test_comparison_into_naturals(self):
        result = convolution.comparison(
            Distribution({1: 0.3, 5: 0.7}),
            Distribution.point(2),
            COMPARISON_OPS[">"],
            NATURALS,
        )
        assert result[1] == pytest.approx(0.7)
        assert result[0] == pytest.approx(0.3)


class TestMutexMixture:
    def test_equation_10(self):
        # P_Φ = Σ_s P_x[s] · P_{Φ|x←s}
        branches = [
            (0.3, Distribution({True: 1.0})),
            (0.7, Distribution({True: 0.5, False: 0.5})),
        ]
        result = convolution.mutex_mixture(branches)
        assert result[True] == pytest.approx(0.3 + 0.35)
