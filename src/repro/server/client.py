"""The async client of the query server.

Built directly on asyncio streams (no HTTP library in the container);
speaks both wire protocols:

* :meth:`ServerClient.query`, :meth:`ServerClient.stats`,
  :meth:`ServerClient.healthz` — JSON over HTTP on one keep-alive
  connection (reconnecting once if the server closed it);
* :meth:`ServerClient.stream` — the TCP line protocol's anytime path:
  an async iterator of progressively tightening
  :class:`~repro.server.codec.RemoteResult` snapshots;
* :meth:`ServerClient.tcp_query` — a one-shot query over the TCP
  protocol (used by tests to exercise both stacks);
* :meth:`ServerClient.mutate` — ``POST /mutate``: insert, update or
  delete rows of the server's shared database (never retried — writes
  are not idempotent).

`query` mirrors :meth:`Session.run`'s keyword surface (``engine=``,
``samples=``, ``spec=``, and the inline ``mode``/``epsilon``/…
overrides) and returns a :class:`~repro.server.codec.RemoteResult`
whose ``degraded``/``statement_cache_hit`` flags expose the server-side
envelope.  Server-reported failures raise :class:`ServerError` (or
:class:`ServerOverloaded`, carrying ``retry_after``, when admission
control shed the request).

Pass ``retry=RetryPolicy(...)`` to make the idempotent operations
(``query``/``tcp_query``/``stats``/``healthz``) survive transient
failures — shedding, dropped connections, server-side infrastructure
errors — with capped exponential backoff, seeded jitter, and respect
for the server's ``Retry-After``.  Streams never retry.

Usage::

    async with ServerClient("127.0.0.1", 8642) as client:
        result = await client.query("SELECT kind FROM R", tenant="alice")
        for row in result:
            print(row.values, row.probability.low, row.probability.high)
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass

from repro.engine.spec import EvalSpec
from repro.errors import QueryValidationError, ReproError
from repro.server.codec import RemoteResult, result_from_json, spec_payload

__all__ = ["ServerClient", "ServerError", "ServerOverloaded", "RetryPolicy"]

#: Server-reported error types worth a retry: infrastructure failures
#: that a healthy server would not reproduce on the next attempt.
#: Protocol and query-validation errors are deterministic — retrying
#: them can only waste the budget — so they are deliberately absent.
_RETRYABLE_ERROR_TYPES = frozenset({
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "ConnectionClosed",
    "TimeoutError",
    "OSError",
})


class ServerError(ReproError):
    """The server reported a structured error for this request."""

    def __init__(self, error: dict):
        message = error.get("message", "server error")
        super().__init__(f"{error.get('type', 'ServerError')}: {message}")
        self.error = dict(error)


class ServerOverloaded(ServerError):
    """The server shed this request; retry after ``retry_after``."""

    def __init__(self, error: dict, retry_after: float):
        super().__init__(error)
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for idempotent requests.

    Attempt ``n`` (0-based) backs off ``base_delay * multiplier**n``
    capped at ``max_delay``, stretched by up to ``jitter * 100`` percent
    of seeded randomness (deterministic per policy instance, so tests
    and reproductions see the same schedule).  When the server sheds a
    request with ``Retry-After``, the client honours it: the actual
    sleep is ``max(backoff, retry_after)``.  ``max_attempts`` and
    ``max_elapsed`` bound the total budget — whichever trips first ends
    the retry loop and re-raises the last failure.

    Only idempotent operations retry (``query``/``tcp_query``/
    ``stats``/``healthz``; every query is a read over an immutable
    database).  Streams never retry: a re-sent stream would restart
    refinement from scratch mid-consumption.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_elapsed: float = 30.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise QueryValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise QueryValidationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise QueryValidationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.jitter < 0:
            raise QueryValidationError(
                f"jitter must be >= 0, got {self.jitter!r}"
            )
        if self.max_elapsed <= 0:
            raise QueryValidationError(
                f"max_elapsed must be positive, got {self.max_elapsed!r}"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The base sleep before retry number ``attempt + 1``."""
        delay = min(
            self.base_delay * self.multiplier ** attempt, self.max_delay
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


def _raise_for_error(error: dict):
    retry_after = error.get("retry_after")
    if retry_after is not None or error.get("type") == "ServerOverloadedError":
        raise ServerOverloaded(error, float(retry_after or 0.0))
    raise ServerError(error)


class ServerClient:
    """An asyncio client for one query server (HTTP + TCP endpoints)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        tcp_port: int | None = None,
        tenant: str = "default",
        retry: RetryPolicy | None = None,
    ):
        self.host = host
        self.port = port
        self.tcp_port = tcp_port if tcp_port is not None else port + 1
        self.tenant = tenant
        self.retry = retry
        self._retry_rng = (
            random.Random(retry.seed) if retry is not None else None
        )
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        # One in-flight HTTP request at a time per client (the keep-alive
        # connection is a pipe); concurrency tests use many clients.
        self._lock = asyncio.Lock()

    async def _with_retry(self, attempt_once):
        """Run ``attempt_once`` under the client's retry policy.

        Retries transient failures only: admission-control shedding
        (honouring the server's ``Retry-After``), dropped or refused
        connections, and server-reported infrastructure errors
        (:data:`_RETRYABLE_ERROR_TYPES`).  Deterministic failures —
        protocol violations, bad SQL, bad spec values — raise
        immediately.
        """
        policy = self.retry
        if policy is None:
            return await attempt_once()
        start = time.monotonic()
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            try:
                return await attempt_once()
            except ServerOverloaded as exc:
                last = exc
                delay = max(
                    policy.backoff(attempt, self._retry_rng), exc.retry_after
                )
            except ServerError as exc:
                if exc.error.get("type") not in _RETRYABLE_ERROR_TYPES:
                    raise
                last = exc
                delay = policy.backoff(attempt, self._retry_rng)
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                last = exc
                delay = policy.backoff(attempt, self._retry_rng)
            if attempt + 1 >= policy.max_attempts:
                break
            if time.monotonic() - start + delay > policy.max_elapsed:
                break
            await asyncio.sleep(delay)
        raise last

    # -- HTTP ------------------------------------------------------------------

    async def _connect_http(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def _http(self, method: str, path: str, payload: dict | None = None):
        """One HTTP round-trip; reconnects once on a dropped keep-alive."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        async with self._lock:
            for attempt in (0, 1):
                if self._writer is None:
                    await self._connect_http()
                try:
                    self._writer.write(request)
                    await self._writer.drain()
                    return await self._read_http_response()
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    BrokenPipeError,
                ):
                    await self._close_http()
                    if attempt:
                        raise

    async def _read_http_response(self):
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self._close_http()
        payload = json.loads(body.decode("utf-8")) if body else {}
        return status, headers, payload

    async def _close_http(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    # -- public API ------------------------------------------------------------

    async def query(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        samples: int | None = None,
        spec: EvalSpec | str | dict | None = None,
        mode: str | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
        budget: int | None = None,
        time_limit: float | None = None,
        workers: int | str | None = None,
        on_timeout: str | None = None,
    ) -> RemoteResult:
        """Run ``sql`` on the server; mirrors :meth:`Session.run`."""
        payload = {
            "sql": sql,
            "tenant": tenant if tenant is not None else self.tenant,
        }
        if engine is not None:
            payload["engine"] = engine
        if samples is not None:
            payload["samples"] = samples
        wire_spec = spec_payload(
            spec,
            mode=mode,
            epsilon=epsilon,
            delta=delta,
            budget=budget,
            time_limit=time_limit,
            workers=workers,
            on_timeout=on_timeout,
        )
        if wire_spec is not None:
            payload["spec"] = wire_spec

        async def attempt_once():
            status, _, response = await self._http("POST", "/query", payload)
            if status != 200:
                _raise_for_error(
                    response.get("error", {"message": f"HTTP {status}"})
                )
            return result_from_json(
                response["result"],
                degraded=response.get("degraded", False),
                statement_cache_hit=response.get(
                    "statement_cache_hit", False
                ),
            )

        return await self._with_retry(attempt_once)

    async def mutate(
        self,
        table: str,
        action: str,
        *,
        tenant: str | None = None,
        values=None,
        where: dict | None = None,
        set_values: dict | None = None,
        p: float | None = None,
    ) -> dict:
        """Apply one mutation on the server (``POST /mutate``).

        ``action`` is ``"insert"`` (with ``values`` and optional ``p``),
        ``"update"`` (with ``where`` and ``set_values`` and/or ``p``) or
        ``"delete"`` (with ``where``).  Returns the server's mutation
        summary (``rows`` affected, new ``db_generation``).  Mutations
        are **not idempotent**, so they never retry — a transient
        failure raises immediately and the caller decides whether the
        write landed (compare ``db_generation`` via :meth:`stats`).
        """
        payload: dict = {
            "table": table,
            "action": action,
            "tenant": tenant if tenant is not None else self.tenant,
        }
        if values is not None:
            payload["values"] = (
                list(values) if isinstance(values, tuple) else values
            )
        if where is not None:
            payload["where"] = where
        if set_values is not None:
            payload["set"] = set_values
        if p is not None:
            payload["p"] = p
        status, _, response = await self._http("POST", "/mutate", payload)
        if status != 200:
            _raise_for_error(
                response.get("error", {"message": f"HTTP {status}"})
            )
        return response

    async def stats(self) -> dict:
        return await self._with_retry(lambda: self._get_json("/stats"))

    async def healthz(self) -> dict:
        return await self._with_retry(lambda: self._get_json("/healthz"))

    async def _get_json(self, path: str) -> dict:
        status, _, response = await self._http("GET", path)
        if status != 200:
            _raise_for_error(response.get("error", {"message": f"HTTP {status}"}))
        return response

    # -- TCP -------------------------------------------------------------------

    async def _tcp_round_trip(self, request: dict, collect_stream: bool):
        reader, writer = await asyncio.open_connection(self.host, self.tcp_port)
        try:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ServerError(
                        {"type": "ConnectionClosed",
                         "message": "server closed the stream"}
                    )
                response = json.loads(line.decode("utf-8"))
                if not response.get("ok", False):
                    _raise_for_error(response.get("error", {}))
                if collect_stream:
                    if response.get("done"):
                        return
                    yield response
                else:
                    yield response
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _tcp_payload(self, op, sql, tenant, engine, spec, **overrides) -> dict:
        payload = {
            "op": op,
            "sql": sql,
            "tenant": tenant if tenant is not None else self.tenant,
        }
        if engine is not None:
            payload["engine"] = engine
        wire_spec = spec_payload(spec, **overrides)
        if wire_spec is not None:
            payload["spec"] = wire_spec
        return payload

    async def tcp_query(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        spec: EvalSpec | str | dict | None = None,
        **overrides,
    ) -> RemoteResult:
        """One-shot query over the TCP line protocol."""
        payload = self._tcp_payload("query", sql, tenant, engine, spec, **overrides)

        async def attempt_once():
            async for response in self._tcp_round_trip(
                payload, collect_stream=False
            ):
                return result_from_json(
                    response["result"],
                    degraded=response.get("degraded", False),
                    statement_cache_hit=response.get(
                        "statement_cache_hit", False
                    ),
                )

        return await self._with_retry(attempt_once)

    async def stream(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        spec: EvalSpec | str | dict | None = None,
        **overrides,
    ):
        """Async iterator of anytime snapshots (``Session.run_iter``).

        Each yielded :class:`RemoteResult` carries sound, monotonically
        tightening intervals; stop consuming whenever the current widths
        are good enough (each stream uses its own TCP connection, so
        abandoning it cannot desynchronise other requests).
        """
        payload = self._tcp_payload("stream", sql, tenant, engine, spec, **overrides)
        async for response in self._tcp_round_trip(payload, collect_stream=True):
            yield result_from_json(
                response["snapshot"],
                degraded=response.get("degraded", False),
                statement_cache_hit=response.get("statement_cache_hit", False),
            )

    # -- lifecycle -------------------------------------------------------------

    async def close(self) -> None:
        await self._close_http()

    async def __aenter__(self) -> "ServerClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    def __repr__(self):
        return (
            f"ServerClient(http={self.host}:{self.port}, "
            f"tcp={self.host}:{self.tcp_port}, tenant={self.tenant!r})"
        )
