"""Approximate answers: exact vs ε-approx vs (ε, δ)-Monte-Carlo.

An Experiment-A-style sweep over Eq.-11 aggregation conditions comparing
the three answer modes of the unified ``EvalSpec`` on the same random
conditions:

* **EXACT** — full d-tree compilation (``Compiler.probability``);
* **APPROX** — iterative-deepening budgeted compilation
  (``approximate_probability``) stopping at interval width ≤ ε;
* **MC** — sequential-stopping sampling with (ε, δ) confidence
  intervals (Hoeffding ∩ Wilson, the same construction the
  ``montecarlo`` engine uses under spec mode ``"sample"``).

The sweep mixes the hard center of the Experiment-A COUNT bell with
selective-threshold (HAVING-style) shapes, where bounds decide most
Shannon branches long before the full aggregate distribution is known —
the shapes where guaranteed approximation beats exact compilation.
Each point records wall time plus the achieved interval width (and, for
MC, the signed error against the exact probability), so the JSON report
doubles as an accuracy/latency trade-off table.

Flags match the other benches: ``--smoke`` (trimmed sweep for CI),
``--json PATH``, ``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import random
import statistics
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro.algebra.semiring import BOOLEAN
from repro.algebra.valuation import evaluate
from repro.core.approx import approximate_probability
from repro.core.compile import Compiler
from repro.engine.montecarlo import MonteCarloEngine
from repro.workloads.random_expr import ExprParams, generate_condition

EPSILON = 0.05
DELTA = 0.05

#: (label, agg, θ, c, #v, L) — Experiment-A-style one-sided conditions.
#: The first two sit at the hard center of the Figure-7 sweep; the rest
#: are selective thresholds (tail probabilities) of increasing size.
SHAPES = [
    ("count-center", "COUNT", "=", 15, 10, 30),
    ("sum-center", "SUM", "=", 375, 10, 30),
    ("count-having", "COUNT", "<=", 3, 12, 40),
    ("sum-low-tail", "SUM", "<=", 600, 14, 50),
    ("sum-high-tail", "SUM", ">=", 1100, 14, 50),
]

#: --smoke keeps CI fast: one small shape, one run.
SMOKE_SHAPES = [("count-having", "COUNT", "<=", 3, 12, 40)]

RUNS = 3
#: Sample ceiling of the MC column (worlds are evaluated in Python here,
#: unlike the engine's vectorized path, so the bench caps the budget).
MC_MAX_SAMPLES = 4096


def _params(agg, theta, c, variables, terms) -> ExprParams:
    return ExprParams(
        left_terms=terms,
        right_terms=0,
        variables=variables,
        clauses=3,
        literals=3,
        max_value=50,
        constant=c,
        theta=theta,
        agg_left=agg,
    )


def _mc_probability_interval(
    expr, registry, epsilon, delta, seed, max_samples=MC_MAX_SAMPLES
):
    """Sequential-stopping estimate of ``P[expr ≠ 0]`` for one condition.

    Same statistics as ``MonteCarloEngine.estimate_intervals`` (doubling
    rounds, δ/(k(k+1)) splitting, Hoeffding ∩ Wilson), applied to a bare
    expression: worlds are sampled valuations of its variables, memoised
    per distinct assignment.
    """
    rng = random.Random(seed)
    names = sorted(expr.variables)
    weights = [registry[name][True] for name in names]
    world_cache: dict[tuple, bool] = {}
    count = 0
    drawn = 0
    round_no = 0
    batch = 256
    while True:
        round_no += 1
        batch = min(batch, max_samples - drawn)
        for _ in range(batch):
            world = tuple(rng.random() < w for w in weights)
            outcome = world_cache.get(world)
            if outcome is None:
                assignment = dict(zip(names, world))
                outcome = evaluate(expr, assignment, BOOLEAN) != BOOLEAN.zero
                world_cache[world] = outcome
            count += outcome
        drawn += batch
        level = delta / (round_no * (round_no + 1))
        interval = MonteCarloEngine._confidence_interval(
            count, drawn, level / 2.0
        )
        if interval.width <= epsilon or drawn >= max_samples:
            return interval, drawn
        batch = drawn  # doubling schedule


def run_shape(label, agg, theta, c, variables, terms, runs, report):
    exact_times, approx_times, mc_times = [], [], []
    widths, mc_widths, mc_errors = [], [], []
    params = _params(agg, theta, c, variables, terms)
    for run in range(runs):
        expr, registry = generate_condition(params, seed=run * 1013 + c)

        start = time.perf_counter()
        exact = Compiler(registry, BOOLEAN).probability(expr)
        exact_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        bounds = approximate_probability(expr, registry, epsilon=EPSILON)
        approx_times.append(time.perf_counter() - start)
        widths.append(bounds.width)
        assert bounds.contains(exact, tol=1e-7), (label, run)

        start = time.perf_counter()
        interval, samples = _mc_probability_interval(
            expr, registry, EPSILON, DELTA, seed=run
        )
        mc_times.append(time.perf_counter() - start)
        mc_widths.append(interval.width)
        mc_errors.append(abs(float(interval) - exact))

    def record(series, times, **metrics):
        mean = statistics.mean(times)
        stdev = statistics.stdev(times) if len(times) > 1 else 0.0
        report.add(
            series,
            {
                "shape": label, "agg": agg, "theta": theta, "c": c,
                "variables": variables, "terms": terms, "runs": runs,
            },
            mean=mean,
            stdev=stdev,
            **metrics,
        )
        return mean

    exact_mean = record("EXACT", exact_times)
    approx_mean = record(
        "APPROX", approx_times,
        epsilon=EPSILON, max_width=max(widths),
    )
    mc_mean = record(
        "MC", mc_times,
        epsilon=EPSILON, delta=DELTA,
        max_width=max(mc_widths), max_abs_error=max(mc_errors),
        samples=samples,
    )
    return (
        label, f"{agg} {theta} {c}", f"#v={variables} L={terms}",
        f"{exact_mean*1000:.1f}ms",
        f"{approx_mean*1000:.1f}ms (w≤{max(widths):.3f})",
        f"{mc_mean*1000:.1f}ms (w≤{max(mc_widths):.3f})",
        f"{exact_mean/approx_mean:.2f}x",
    )


def main():
    smoke = smoke_mode()
    shapes = SMOKE_SHAPES if smoke else SHAPES
    runs = 1 if smoke else RUNS
    report = BenchReport(
        "approx",
        epsilon=EPSILON,
        delta=DELTA,
        mc_max_samples=MC_MAX_SAMPLES,
        smoke=smoke,
    )
    rows = [
        run_shape(*shape, runs=runs, report=report) for shape in shapes
    ]
    print_series(
        "Approximate answers — exact vs ε-approx vs (ε, δ)-MC",
        ["shape", "condition", "size", "exact", "approx ε=0.05",
         "MC (ε, δ)=(0.05, 0.05)", "exact/approx"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
