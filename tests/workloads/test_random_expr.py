"""Tests for the Eq.-11 random expression generator."""

import pytest

from repro.algebra.conditions import Compare
from repro.algebra.monoid import MIN, SUM
from repro.algebra.semimodule import AggSum, MConst, module_terms
from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.errors import ReproError
from repro.prob.space import ProbabilitySpace
from repro.workloads.random_expr import ExprParams, generate_condition, generate_workload


class TestGeneratorShape:
    def test_one_sided_form(self):
        params = ExprParams(
            left_terms=5, right_terms=0, variables=6, clauses=2, literals=2,
            max_value=20, constant=10, theta="<=", agg_left="MIN",
        )
        expr, registry = generate_condition(params, seed=1)
        assert isinstance(expr, Compare)
        assert isinstance(expr.right, MConst)
        assert expr.right.value == 10
        assert len(registry) == 6

    def test_two_sided_form(self):
        params = ExprParams(
            left_terms=4, right_terms=3, variables=6, clauses=2, literals=2,
            agg_left="MIN", agg_right="SUM", theta="<=",
        )
        expr, _ = generate_condition(params, seed=1)
        assert isinstance(expr.left, AggSum) and expr.left.monoid == MIN
        assert isinstance(expr.right, AggSum) and expr.right.monoid == SUM

    def test_term_count(self):
        params = ExprParams(left_terms=7, variables=10, clauses=2, literals=2)
        expr, _ = generate_condition(params, seed=2)
        # Canonicalisation may merge identical terms, never add new ones.
        assert len(module_terms(expr.left)) <= 7

    def test_values_bounded(self):
        params = ExprParams(left_terms=20, variables=8, max_value=30,
                            clauses=1, literals=1)
        expr, _ = generate_condition(params, seed=3)
        for term in module_terms(expr.left):
            assert 0 <= term.arg.value <= 30

    def test_variable_probability_fixed(self):
        params = ExprParams(left_terms=2, variables=4, variable_probability=0.25)
        _, registry = generate_condition(params, seed=4)
        for name in registry:
            assert registry[name][True] == pytest.approx(0.25)

    def test_variable_probability_random(self):
        params = ExprParams(left_terms=2, variables=6, variable_probability=None)
        _, registry = generate_condition(params, seed=5)
        probs = {registry[name][True] for name in registry}
        assert len(probs) > 1

    def test_seed_reproducibility(self):
        params = ExprParams(left_terms=5, variables=8)
        e1, _ = generate_condition(params, seed=42)
        e2, _ = generate_condition(params, seed=42)
        assert e1 == e2

    def test_different_seeds_differ(self):
        params = ExprParams(left_terms=5, variables=8)
        e1, _ = generate_condition(params, seed=1)
        e2, _ = generate_condition(params, seed=2)
        assert e1 != e2

    def test_workload_yields_runs(self):
        params = ExprParams(left_terms=3, variables=6)
        items = list(generate_workload(params, runs=4, seed=0))
        assert len(items) == 4

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            generate_condition(ExprParams(left_terms=0))
        with pytest.raises(ReproError):
            generate_condition(ExprParams(variables=2, literals=5))

    def test_with_updates(self):
        params = ExprParams().with_(left_terms=3)
        assert params.left_terms == 3
        assert params.variables == ExprParams().variables


class TestGeneratedExpressionsCompile:
    @pytest.mark.parametrize("agg", ["MIN", "MAX", "COUNT", "SUM"])
    def test_compiled_matches_brute_force(self, agg):
        params = ExprParams(
            left_terms=4, variables=6, clauses=2, literals=2,
            max_value=8, constant=4, theta="<=", agg_left=agg,
        )
        expr, registry = generate_condition(params, seed=9)
        compiled = Compiler(registry, BOOLEAN).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)

    def test_two_sided_compiles(self):
        params = ExprParams(
            left_terms=3, right_terms=3, variables=6, clauses=1, literals=2,
            max_value=10, theta="<=", agg_left="MAX", agg_right="SUM",
        )
        expr, registry = generate_condition(params, seed=10)
        compiled = Compiler(registry, BOOLEAN).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)
