"""Hypothesis strategies for random expressions and probability spaces."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.algebra.conditions import compare
from repro.algebra.expressions import SConst, Var, sprod, ssum
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

#: Variable pool used by the expression strategies (kept small so the
#: brute-force oracle stays fast).
NAMES = ["a", "b", "c", "d", "e"]

probabilities = st.floats(
    min_value=0.05, max_value=0.95, allow_nan=False, allow_infinity=False
)


@st.composite
def boolean_registries(draw, names=tuple(NAMES)):
    """A registry assigning Bernoulli distributions to the name pool."""
    registry = VariableRegistry()
    for name in names:
        registry.bernoulli(name, draw(probabilities))
    return registry


@st.composite
def integer_registries(draw, names=tuple(NAMES[:3]), max_value=3):
    """A registry of small N-valued variables (bag semantics)."""
    registry = VariableRegistry()
    for name in names:
        support = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_value),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=len(support),
                max_size=len(support),
            )
        )
        total = sum(weights)
        registry.declare(
            name,
            Distribution({v: w / total for v, w in zip(support, weights)}),
        )
    return registry


def variables():
    return st.sampled_from(NAMES).map(Var)


@st.composite
def semiring_exprs(draw, depth=3):
    """Random semiring expressions over the name pool."""
    if depth <= 0:
        return draw(st.one_of(variables(), st.integers(0, 1).map(SConst)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(variables())
    if kind == 1:
        return draw(st.integers(0, 1).map(SConst))
    children = draw(
        st.lists(semiring_exprs(depth=depth - 1), min_size=2, max_size=3)
    )
    return ssum(children) if kind == 2 else sprod(children)


@st.composite
def monomials(draw, max_factors=3):
    """Products of variables — the Φᵢ of tuple-independent provenance."""
    factors = draw(st.lists(variables(), min_size=1, max_size=max_factors))
    return sprod(factors)


@st.composite
def module_exprs(draw, monoid=None, max_terms=4, max_value=8):
    """Random semimodule sums ``Σ Φᵢ ⊗ mᵢ``."""
    if monoid is None:
        monoid = draw(st.sampled_from([SUM, MIN, MAX]))
    terms = []
    for _ in range(draw(st.integers(1, max_terms))):
        phi = draw(semiring_exprs(depth=2))
        value = draw(st.integers(0, max_value))
        terms.append(tensor(phi, MConst(monoid, value)))
    return aggsum(monoid, terms)


@st.composite
def conditions(draw, max_value=8):
    """Random conditional expressions ``[Σ ... θ c]``."""
    alpha = draw(module_exprs(max_value=max_value))
    op = draw(st.sampled_from(["=", "!=", "<=", ">=", "<", ">"]))
    threshold = draw(st.integers(0, max_value + 2))
    return compare(alpha, op, MConst(alpha.monoid, threshold))


# -- random databases and queries (optimizer/executor properties) ------------

#: Fixed schemas for the random-query strategies: two joinable fact
#: tables and a union-compatible sibling of ``R``.
QUERY_TABLES = {
    "R": ["a", "u"],
    "S": ["b", "w"],
    "T": ["a", "u"],
}


@st.composite
def query_databases(draw, max_rows=3):
    """A small random pvc-database over the fixed query schemas.

    Variables stay few (at most one Bernoulli per row over ≤ 8 rows) so
    the brute-force possible-worlds oracle remains tractable.
    """
    from repro.algebra.expressions import Var
    from repro.algebra.semiring import BOOLEAN
    from repro.db.pvc_table import PVCDatabase

    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    counter = 0
    for name, columns in QUERY_TABLES.items():
        table = db.create_table(name, columns)
        for _ in range(draw(st.integers(1, max_rows))):
            values = (draw(st.integers(1, 2)), draw(st.integers(1, 9)))
            if draw(st.booleans()):
                var = f"q{counter}"
                counter += 1
                registry.bernoulli(var, draw(probabilities))
                table.add(values, Var(var))
            else:
                table.add(values)  # a certain row
    return db


@st.composite
def queries(draw, max_depth=3):
    """Random well-formed ``Q`` queries over the ``QUERY_TABLES`` schemas.

    Covers every operator: joins written as ``σ(×)`` (with join, local
    and θ atoms), unions (also under ``$``), extend, projection, grouping
    with SUM/COUNT/MIN/MAX, and aggregation-attribute selections.
    """
    from repro.query.ast import (
        AggSpec,
        Extend,
        GroupAgg,
        Product,
        Project,
        Select,
        Union,
        relation,
    )
    from repro.query.predicates import cmp_, conj, eq

    def atom(attrs):
        kind = draw(st.integers(0, 2))
        name = draw(st.sampled_from(sorted(attrs)))
        if kind == 0:
            return eq(name, draw(st.integers(1, 3)))
        if kind == 1:
            return cmp_(name, draw(st.sampled_from(["<=", ">=", "<"])), draw(st.integers(1, 9)))
        other = draw(st.sampled_from(sorted(attrs)))
        return cmp_(name, draw(st.sampled_from(["=", "<="])), other)

    def base(which):
        if which == 0:
            return relation("R"), {"a", "u"}
        if which == 1:
            return relation("S"), {"b", "w"}
        return relation("T"), {"a", "u"}

    def build(depth):
        shape = draw(st.integers(0, 6)) if depth > 0 else 6
        if shape == 0:  # join σ({R|T} × S), possibly with extra atoms
            left, _ = base(draw(st.sampled_from([0, 2])))
            right, _ = base(1)
            atoms = [eq("a", "b")]
            for _ in range(draw(st.integers(0, 2))):
                atoms.append(atom({"a", "u", "b", "w"}))
            return Select(Product(left, right), conj(*atoms)), {"a", "u", "b", "w"}
        if shape == 1:  # union of the compatible tables
            return Union(relation("R"), relation("T")), {"a", "u"}
        if shape == 2:  # selection over a subquery
            child, attrs = build(depth - 1)
            return Select(child, atom(attrs)), attrs
        if shape == 3:  # cascaded (possibly duplicate) selections
            child, attrs = build(depth - 1)
            first = atom(attrs)
            second = first if draw(st.booleans()) else atom(attrs)
            return Select(Select(child, first), second), attrs
        if shape == 4:  # projection
            child, attrs = build(depth - 1)
            keep = draw(
                st.lists(
                    st.sampled_from(sorted(attrs)), min_size=1, unique=True
                )
            )
            return Project(child, keep), set(keep)
        if shape == 5:  # extend
            child, attrs = build(depth - 1)
            source = draw(st.sampled_from(sorted(attrs)))
            target = source + "2"
            if target in attrs:
                return child, attrs
            return Extend(child, target, source), attrs | {target}
        which = draw(st.integers(0, 2))
        rel, attrs = base(which)
        return rel, attrs

    query, attrs = build(max_depth)
    if draw(st.booleans()):  # optionally aggregate on top
        group_candidates = sorted(attrs & {"a", "b"})
        groupby = (
            [draw(st.sampled_from(group_candidates))]
            if group_candidates and draw(st.booleans())
            else []
        )
        agg = draw(st.sampled_from(["SUM", "COUNT", "MIN", "MAX"]))
        value_candidates = sorted(attrs - set(groupby))
        if agg == "COUNT":
            spec = AggSpec.of("g", "COUNT")
        elif value_candidates:
            spec = AggSpec.of("g", agg, draw(st.sampled_from(value_candidates)))
        else:
            spec = AggSpec.of("g", "COUNT")
        query = GroupAgg(query, groupby, [spec])
        if draw(st.booleans()):  # HAVING-style θ-selection on the aggregate
            op = draw(st.sampled_from(["<=", ">=", "="]))
            query = Select(query, cmp_("g", op, draw(st.integers(0, 12))))
    return query
