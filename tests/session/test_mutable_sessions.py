"""Session-level mutations: handles, lineage selectivity, shared caches.

Three guarantees stack here:

* **End-to-end freshness** — after ``insert``/``update``/``delete``
  through a :class:`TableHandle`, every engine's answer is identical to
  a brand-new session rebuilt from the mutated data (the from-scratch
  oracle).
* **Lineage selectivity** — value-only mutations keep every compiled
  distribution (``invalidations == 0``); a probability update drops
  exactly the dependent entries, so unrelated tables keep cache-hitting.
* **Shared-cache lifecycle** — the PR-10 regression: one tenant's
  ``close()`` must not flush a shared server-level
  :class:`CompilationCache` under the other tenants.
"""

from __future__ import annotations

import pytest

from repro import connect, count_, sum_
from repro.algebra import Var
from repro.core.compile import Compiler
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.engine.base import CompilationCache
from repro.prob.variables import VariableRegistry
from repro.session import Session


def _fingerprint(result):
    """Tuples, probabilities and intervals, exactly as reported."""
    return [
        (row.values, row.probability().low, row.probability().high)
        for row in result
    ]


def fresh_session(session: Session) -> Session:
    """A from-scratch session over copies of ``session``'s mutated data.

    The oracle for every conformance test below: replay the registry
    into a new one, copy each table's rows into new :class:`PVCTable`
    instances, and open a cold :class:`Session` (no warm caches, no
    mutation history) with the same seed/samples.
    """
    registry = VariableRegistry()
    for name, dist in session.registry.items():
        registry.declare(name, dist)
    tables = {
        name: PVCTable(table.schema, list(table.rows))
        for name, table in session.db.tables.items()
    }
    db = PVCDatabase(tables=tables, registry=registry, semiring=session.semiring)
    return Session(
        database=db, seed=session.seed, samples=session.samples
    )


def _seeded_session(seed: int | None = 11) -> Session:
    s = connect(seed=seed)
    t = s.table("items", ["name", "price"])
    for name, price, p in [
        ("inkjet", 99, 0.7),
        ("laser", 300, 0.4),
        ("toner", 45, 0.9),
        ("drum", 120, 0.5),
    ]:
        t.insert((name, price), p=p)
    return s


class TestEndToEndMutations:
    def test_insert_is_visible_to_warm_queries(self):
        s = _seeded_session()
        query = s.table("items").group_by().agg(n=count_())
        before = s.run(query, engine="sprout")
        s.table("items").insert(("cable", 9), p=0.6)
        after = s.run(query, engine="sprout")
        assert _fingerprint(before) != _fingerprint(after)
        assert _fingerprint(after) == _fingerprint(
            fresh_session(s).run(query.build(), engine="sprout")
        )

    def test_update_values_matches_fresh_session(self):
        s = _seeded_session()
        query = s.table("items").group_by().agg(total=sum_("price"))
        s.run(query, engine="sprout")  # warm the caches first
        changed = s.table("items").update({"name": "laser"}, {"price": 250})
        assert changed == 1
        warm = s.run(query, engine="sprout")
        cold = fresh_session(s).run(query.build(), engine="sprout")
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_update_probability_matches_fresh_session(self):
        s = _seeded_session()
        query = s.table("items").select("name")
        s.run(query, engine="sprout")
        assert s.table("items").update({"name": "inkjet"}, p=0.05) == 1
        warm = s.run(query, engine="sprout")
        cold = fresh_session(s).run(query.build(), engine="sprout")
        assert _fingerprint(warm) == _fingerprint(cold)
        inkjet = dict(warm.tuple_probabilities())
        assert inkjet[("inkjet",)] == pytest.approx(0.05)

    def test_delete_matches_fresh_session(self):
        s = _seeded_session()
        query = s.table("items").group_by().agg(n=count_())
        s.run(query, engine="sprout")
        assert s.table("items").delete({"name": "toner"}) == 1
        warm = s.run(query, engine="sprout")
        cold = fresh_session(s).run(query.build(), engine="sprout")
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_mixed_script_conformance_across_engines(self):
        """A deterministic insert/update/delete script, then the engine
        grid: every warm answer equals the from-scratch oracle's."""
        s = _seeded_session(seed=7)
        t = s.table("items")
        warmers = [
            t.select("name"),
            t.group_by().agg(total=sum_("price")),
        ]
        for query in warmers:
            s.run(query, engine="sprout")
        t.insert(("cable", 9), p=0.6).insert(("stand", 75), p=0.3)
        t.update({"name": "drum"}, {"price": 99})
        t.update({"name": "toner"}, p=0.25)
        t.delete({"name": "laser"})
        oracle = fresh_session(s)
        for query in warmers:
            built = query.build()
            for engine, options in [
                ("sprout", {}),
                ("naive", {}),
                ("sprout", {"codegen": True}),
                ("sprout", {"codegen": False}),
                ("sprout", {"workers": 2}),
                ("approx", {"epsilon": 0.01}),
                ("montecarlo", {"epsilon": 0.06}),
            ]:
                warm = s.run(built, engine=engine, **options)
                cold = oracle.run(built, engine=engine, **options)
                assert _fingerprint(warm) == _fingerprint(cold), (
                    engine,
                    options,
                )


class TestLineageSelectivity:
    def test_value_updates_keep_compiled_distributions(self):
        s = _seeded_session()
        query = s.table("items").select("name")
        s.run(query, engine="sprout")
        warmed = s.cache.stats()
        assert warmed["misses"] > 0
        s.table("items").update({"name": "inkjet"}, {"price": 101})
        s.table("items").insert(("cable", 9), p=0.6)
        s.table("items").delete({"name": "drum"})
        stats = s.cache.stats()
        assert stats["invalidations"] == 0
        assert stats["entries"] == warmed["entries"]
        # Surviving rows' annotations are unchanged, so the re-run only
        # compiles the one newly inserted variable.
        s.run(query, engine="sprout")
        assert s.cache.stats()["misses"] == warmed["misses"] + 1

    def test_probability_update_invalidates_only_dependents(self):
        s = connect()
        a = s.table("a", ["x"]).insert((1,), p=0.5).insert((2,), p=0.4)
        b = s.table("b", ["y"]).insert((10,), p=0.7).insert((20,), p=0.2)
        s.run(a.select("x"), engine="sprout")
        s.run(b.select("y"), engine="sprout")
        warmed = s.cache.stats()
        assert s.db.update("a", {"x": 1}, p=0.9) == 1
        stats = s.cache.stats()
        assert stats["invalidations"] > 0
        assert stats["invalidations"] < warmed["entries"]
        # b's entries survived: its re-run is pure hits, no new compile.
        s.run(b.select("y"), engine="sprout")
        assert s.cache.stats()["misses"] == stats["misses"]
        # a recompiles its dropped entries and matches the oracle.
        warm = s.run(a.select("x"), engine="sprout")
        assert s.cache.stats()["misses"] > stats["misses"]
        cold = fresh_session(s).run(a.select("x").build(), engine="sprout")
        assert _fingerprint(warm) == _fingerprint(cold)

    def test_delta_feed_reaches_session_cache(self):
        s = _seeded_session()
        s.run(s.table("items").select("name"), engine="sprout")
        generation = s.cache.stats()["data_generation"]
        s.table("items").update({"name": "inkjet"}, p=0.2)
        assert s.cache.stats()["data_generation"] == generation + 1


class TestSharedCacheLifecycle:
    """The PR-10 regression: ``Session.close()`` on a shared cache."""

    def _shared_setup(self):
        registry = VariableRegistry()
        db = PVCDatabase(registry=registry)
        db.create_table("items", ["name", "price"])
        db.insert("items", ("inkjet", 99), p=0.7)
        db.insert("items", ("laser", 300), p=0.4)
        cache = CompilationCache(Compiler(registry, db.semiring))
        tenant_a = connect(database=db, cache=cache)
        tenant_b = connect(database=db, cache=cache)
        return cache, tenant_a, tenant_b

    def test_tenant_close_keeps_other_tenants_warm(self):
        cache, tenant_a, tenant_b = self._shared_setup()
        query = tenant_a.table("items").select("name").build()
        tenant_a.run(query, engine="sprout")
        warmed = cache.stats()
        assert warmed["entries"] > 0

        tenant_a.close()

        stats = cache.stats()
        assert stats["entries"] == warmed["entries"]
        assert stats["data_generation"] == warmed["data_generation"]
        # Tenant B rides A's warm entries: hits only, zero new compiles.
        tenant_b.run(query, engine="sprout")
        after = cache.stats()
        assert after["misses"] == warmed["misses"]
        assert after["hits"] > warmed["hits"]

    def test_owned_cache_is_still_cleared_on_close(self):
        s = _seeded_session()
        s.run(s.table("items").select("name"), engine="sprout")
        assert len(s.cache) > 0
        s.close()
        assert len(s.cache) == 0

    def test_closed_tenant_stays_usable_and_fresh(self):
        cache, tenant_a, tenant_b = self._shared_setup()
        query = tenant_b.table("items").select("name").build()
        tenant_b.run(query, engine="sprout")
        tenant_a.close()
        tenant_b.db.update("items", {"name": "inkjet"}, p=0.1)
        result = tenant_b.run(query, engine="sprout")
        probabilities = dict(result.tuple_probabilities())
        assert probabilities[("inkjet",)] == pytest.approx(0.1)
        # The closed tenant can keep querying too (recompiles on demand).
        closed = tenant_a.run(query, engine="sprout")
        assert _fingerprint(closed) == _fingerprint(result)


class TestTupleIndependenceMemo:
    def test_memo_is_stable_between_mutations(self):
        s = _seeded_session()
        first = s.tuple_independent_relations()
        assert "items" in first
        assert s.tuple_independent_relations() is first

    def test_memo_refreshes_after_mutation(self):
        s = connect()
        s.table("r", ["x"]).insert((1,), p=0.5)
        assert "r" in s.tuple_independent_relations()
        # Reusing the variable across rows breaks independence; the
        # generation-keyed memo must notice on the next call.
        s.db.registry.bernoulli("shared", 0.5)
        s.db.insert("r", (2,), annotation=Var("shared"))
        s.db.insert("r", (3,), annotation=Var("shared"))
        assert "r" not in s.tuple_independent_relations()

    def test_equal_size_probability_update_moves_the_key(self):
        """The old (tables, rows, registry-size) fingerprint was blind to
        this: same row count, same registry size, different state."""
        s = _seeded_session()
        before = s.tuple_independent_relations()
        s.table("items").update({"name": "inkjet"}, p=0.9)
        after = s.tuple_independent_relations()
        assert after is not before  # recomputed, not served stale
        assert after == before  # ...and still independent, of course


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
