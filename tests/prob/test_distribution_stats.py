"""Tests for the statistics helpers on distributions."""

import pytest

from repro.errors import DistributionError
from repro.prob.distribution import Distribution


class TestMoments:
    def test_variance_of_point_is_zero(self):
        assert Distribution.point(5).variance() == pytest.approx(0.0)

    def test_variance_of_bernoulli(self):
        d = Distribution.bernoulli(0.3, one=1, zero=0)
        assert d.variance() == pytest.approx(0.3 * 0.7)

    def test_variance_matches_definition(self):
        d = Distribution({0: 0.5, 10: 0.5})
        assert d.variance() == pytest.approx(25.0)


class TestCdfQuantile:
    def test_cdf(self):
        d = Distribution({1: 0.2, 2: 0.3, 3: 0.5})
        assert d.cdf(0) == pytest.approx(0.0)
        assert d.cdf(2) == pytest.approx(0.5)
        assert d.cdf(3) == pytest.approx(1.0)

    def test_quantile(self):
        d = Distribution({1: 0.2, 2: 0.3, 3: 0.5})
        assert d.quantile(0.1) == 1
        assert d.quantile(0.5) == 2
        assert d.quantile(1.0) == 3

    def test_median_of_uniform(self):
        d = Distribution.uniform([10, 20, 30, 40])
        assert d.quantile(0.5) == 20

    def test_quantile_level_validated(self):
        d = Distribution.point(1)
        with pytest.raises(DistributionError):
            d.quantile(0.0)
        with pytest.raises(DistributionError):
            d.quantile(1.5)


class TestConditioning:
    def test_condition_renormalises(self):
        d = Distribution({1: 0.2, 2: 0.3, 3: 0.5})
        conditioned = d.condition(lambda v: v >= 2)
        assert conditioned[2] == pytest.approx(0.375)
        assert conditioned[3] == pytest.approx(0.625)
        assert conditioned.total() == pytest.approx(1.0)

    def test_condition_on_null_event_rejected(self):
        d = Distribution({1: 1.0})
        with pytest.raises(DistributionError, match="null"):
            d.condition(lambda v: v > 10)

    def test_condition_then_map(self):
        d = Distribution({(True, 10): 0.3, (True, 20): 0.3, (False, 0): 0.4})
        present = d.condition(lambda kv: kv[0]).map(lambda kv: kv[1])
        assert present[10] == pytest.approx(0.5)
        assert present[20] == pytest.approx(0.5)
