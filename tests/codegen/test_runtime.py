"""The codegen knobs, stats counters, and the kernel cache."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.algebra.semiring import BOOLEAN
from repro.codegen import (
    CodegenUnsupported,
    codegen_enabled,
    codegen_strict,
    compile_plan,
    kernel_for,
    reset_runtime_stats,
    runtime_stats,
)
from repro.db.schema import Schema
from repro.query.physical import PhysicalOp


@dataclass(frozen=True)
class MysteryOp(PhysicalOp):
    """An operator the emitter has never heard of."""


class TestKnobs:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        assert codegen_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "False", "OFF"])
    def test_env_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CODEGEN", value)
        assert codegen_enabled() is False

    def test_env_on_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        assert codegen_enabled() is True

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        assert codegen_enabled(True) is True
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        assert codegen_enabled(False) is False

    def test_strict_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_STRICT", raising=False)
        assert codegen_strict() is False
        monkeypatch.setenv("REPRO_CODEGEN_STRICT", "1")
        assert codegen_strict() is True


class TestUnsupportedPlans:
    def test_unknown_operator_raises(self):
        with pytest.raises(CodegenUnsupported):
            compile_plan(MysteryOp(Schema(["a"])), BOOLEAN)

    def test_kernel_for_falls_back_to_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_STRICT", raising=False)
        prepared = _FakePrepared(MysteryOp(Schema(["a"])))
        assert kernel_for(prepared, BOOLEAN) is None
        # The fallback decision is cached too.
        assert prepared.op_cache[("codegen", BOOLEAN.name)] is None

    def test_kernel_for_strict_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_STRICT", "1")
        prepared = _FakePrepared(MysteryOp(Schema(["a"])))
        with pytest.raises(CodegenUnsupported):
            kernel_for(prepared, BOOLEAN)


class _FakePrepared:
    def __init__(self, plan):
        self.plan = plan
        self.op_cache = {}


class TestKernelCache:
    def _prepared(self, db, query):
        from repro.query.executor import prepare

        return prepare(query, db.catalog(), db.cardinalities(), optimize=False)

    def test_compiled_once_per_prepared_query(self, db, query):
        reset_runtime_stats()
        prepared = self._prepared(db, query)
        first = kernel_for(prepared, db.semiring)
        second = kernel_for(prepared, db.semiring)
        assert first is not None and first is second
        stats = runtime_stats()
        assert stats["kernels_compiled"] == 1
        assert stats["kernel_cache_hits"] == 1
        assert stats["codegen_compile_seconds"] >= 0.0

    def test_cache_key_disjoint_from_interpreter_keys(self, db, query):
        prepared = self._prepared(db, query)
        # The interpreter memoises per-op results under id(op) integers;
        # the kernel must not collide with them.
        prepared.op_cache[id(prepared.plan)] = "interpreter-entry"
        kernel = kernel_for(prepared, db.semiring)
        assert kernel is not None
        assert prepared.op_cache[id(prepared.plan)] == "interpreter-entry"

    def test_reset_runtime_stats(self):
        reset_runtime_stats()
        stats = runtime_stats()
        assert stats == {
            "kernels_compiled": 0,
            "kernel_cache_hits": 0,
            "codegen_compile_seconds": 0.0,
        }
