"""Deterministic shard planning and per-shard RNG seed derivation.

The invariant everything here serves: **shard structure is a function of
the work, not of the machine.**  ``plan_shards`` splits a batch into
fixed-size shards independent of the worker count, and ``spawn_seeds``
derives one integer seed per shard from the parent stream's token by a
pure-Python SplitMix64 mix — so the same seeded run produces bit-identical
draws whether the shards execute inline, on 2 workers, or on 64.

On the numpy path each shard seed feeds a ``numpy.random.SeedSequence``,
giving every shard its own properly spawned ``Generator`` stream; the
pure-Python path seeds a private ``random.Random`` per shard.  Either way
no two shards share RNG state, and the parent engine's own stream advances
by exactly one token draw per sampling round regardless of sharding.
"""

from __future__ import annotations

import os

from repro.errors import QueryValidationError

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "plan_shards",
    "resolve_workers",
    "spawn_seeds",
    "validate_workers",
]

#: Default worlds per Monte-Carlo shard: large enough that a shard's
#: vectorized batch evaluation dominates its dispatch cost, small enough
#: that a few thousand samples already spread across several workers.
DEFAULT_SHARD_SIZE = 512

_MASK64 = (1 << 64) - 1


def validate_workers(workers):
    """The one validator of the ``workers`` knob, shared by
    :class:`~repro.engine.spec.EvalSpec` and :func:`resolve_workers`.

    Returns ``workers`` unchanged when it is ``None``, ``"auto"``, or a
    positive integer; raises
    :class:`~repro.errors.QueryValidationError` otherwise.
    """
    if workers is None or workers == "auto":
        return workers
    if (
        isinstance(workers, bool)
        or not isinstance(workers, int)
        or workers < 1
    ):
        raise QueryValidationError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    return workers


def resolve_workers(workers) -> int | None:
    """Normalise the ``workers`` knob to an effective worker count.

    ``None`` (the default) means "not requested" and is returned as-is —
    engines keep their legacy serial code path.  ``"auto"`` resolves to
    the machine's usable CPU count; an explicit positive integer is
    passed through.  Anything else raises
    :class:`~repro.errors.QueryValidationError`.
    """
    if validate_workers(workers) == "auto":
        try:
            count = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux platforms
            count = os.cpu_count() or 1
        return max(1, count)
    return workers


def plan_shards(total: int, shard_size: int | None = None) -> list[int]:
    """Split ``total`` items into deterministic shard sizes.

    The plan depends only on ``total`` and ``shard_size`` — never on the
    worker count — so merged results are identical for any degree of
    parallelism.  All shards except possibly the last have exactly
    ``shard_size`` items.
    """
    if total < 0:
        raise QueryValidationError(f"cannot shard a negative total {total}")
    size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size
    if size < 1:
        raise QueryValidationError(f"shard size must be >= 1, got {size}")
    sizes = [size] * (total // size)
    if total % size:
        sizes.append(total % size)
    return sizes


def _splitmix64(state: int) -> int:
    """One SplitMix64 step — a high-quality, dependency-free integer mix."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def spawn_seeds(token: int, count: int) -> list[int]:
    """``count`` independent 64-bit seeds derived from one parent token.

    Pure Python and platform-stable: the same token yields the same seed
    list with or without numpy installed.  Each seed is fed to
    ``numpy.random.SeedSequence`` (numpy path) or ``random.Random``
    (fallback path) to create that shard's private stream.
    """
    base = _splitmix64(token & _MASK64)
    seeds = []
    state = base
    for _ in range(count):
        state = _splitmix64(state)
        seeds.append(state)
    return seeds
