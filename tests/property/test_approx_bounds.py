"""Property tests: approximation bounds always bracket the exact value."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semiring import BOOLEAN
from repro.core.approx import ApproximateCompiler
from repro.core.compile import Compiler
from repro.prob.space import ProbabilitySpace

from tests.property.strategies import boolean_registries, semiring_exprs

SETTINGS = settings(max_examples=50, deadline=None)


class TestBoundsBracketExact:
    @SETTINGS
    @given(
        boolean_registries(),
        semiring_exprs(depth=3),
        st.integers(min_value=0, max_value=16),
    )
    def test_bounds_contain_exact_probability(self, registry, expr, budget):
        exact = Compiler(registry, BOOLEAN).probability(expr)
        bounds = ApproximateCompiler(registry, budget).bounds(expr)
        assert bounds.contains(exact, tol=1e-7)

    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=3))
    def test_bounds_monotone_in_budget(self, registry, expr):
        widths = []
        for budget in (0, 2, 8, 64):
            bounds = ApproximateCompiler(registry, budget).bounds(expr)
            widths.append(bounds.width)
        # Widths never increase as the budget grows.
        assert all(a >= b - 1e-9 for a, b in zip(widths, widths[1:]))

    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=2))
    def test_large_budget_is_exact(self, registry, expr):
        bounds = ApproximateCompiler(registry, 1 << 12).bounds(expr)
        exact = ProbabilitySpace(registry, BOOLEAN).probability(expr)
        assert bounds.width < 1e-9
        assert abs(bounds.low - exact) < 1e-7
