"""The async client of the query server.

Built directly on asyncio streams (no HTTP library in the container);
speaks both wire protocols:

* :meth:`ServerClient.query`, :meth:`ServerClient.stats`,
  :meth:`ServerClient.healthz` — JSON over HTTP on one keep-alive
  connection (reconnecting once if the server closed it);
* :meth:`ServerClient.stream` — the TCP line protocol's anytime path:
  an async iterator of progressively tightening
  :class:`~repro.server.codec.RemoteResult` snapshots;
* :meth:`ServerClient.tcp_query` — a one-shot query over the TCP
  protocol (used by tests to exercise both stacks).

`query` mirrors :meth:`Session.run`'s keyword surface (``engine=``,
``samples=``, ``spec=``, and the inline ``mode``/``epsilon``/…
overrides) and returns a :class:`~repro.server.codec.RemoteResult`
whose ``degraded``/``statement_cache_hit`` flags expose the server-side
envelope.  Server-reported failures raise :class:`ServerError` (or
:class:`ServerOverloaded`, carrying ``retry_after``, when admission
control shed the request).

Usage::

    async with ServerClient("127.0.0.1", 8642) as client:
        result = await client.query("SELECT kind FROM R", tenant="alice")
        for row in result:
            print(row.values, row.probability.low, row.probability.high)
"""

from __future__ import annotations

import asyncio
import json

from repro.engine.spec import EvalSpec
from repro.errors import ReproError
from repro.server.codec import RemoteResult, result_from_json, spec_payload

__all__ = ["ServerClient", "ServerError", "ServerOverloaded"]


class ServerError(ReproError):
    """The server reported a structured error for this request."""

    def __init__(self, error: dict):
        message = error.get("message", "server error")
        super().__init__(f"{error.get('type', 'ServerError')}: {message}")
        self.error = dict(error)


class ServerOverloaded(ServerError):
    """The server shed this request; retry after ``retry_after``."""

    def __init__(self, error: dict, retry_after: float):
        super().__init__(error)
        self.retry_after = retry_after


def _raise_for_error(error: dict):
    retry_after = error.get("retry_after")
    if retry_after is not None or error.get("type") == "ServerOverloadedError":
        raise ServerOverloaded(error, float(retry_after or 0.0))
    raise ServerError(error)


class ServerClient:
    """An asyncio client for one query server (HTTP + TCP endpoints)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        tcp_port: int | None = None,
        tenant: str = "default",
    ):
        self.host = host
        self.port = port
        self.tcp_port = tcp_port if tcp_port is not None else port + 1
        self.tenant = tenant
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        # One in-flight HTTP request at a time per client (the keep-alive
        # connection is a pipe); concurrency tests use many clients.
        self._lock = asyncio.Lock()

    # -- HTTP ------------------------------------------------------------------

    async def _connect_http(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def _http(self, method: str, path: str, payload: dict | None = None):
        """One HTTP round-trip; reconnects once on a dropped keep-alive."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        async with self._lock:
            for attempt in (0, 1):
                if self._writer is None:
                    await self._connect_http()
                try:
                    self._writer.write(request)
                    await self._writer.drain()
                    return await self._read_http_response()
                except (
                    ConnectionError,
                    asyncio.IncompleteReadError,
                    BrokenPipeError,
                ):
                    await self._close_http()
                    if attempt:
                        raise

    async def _read_http_response(self):
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self._close_http()
        payload = json.loads(body.decode("utf-8")) if body else {}
        return status, headers, payload

    async def _close_http(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    # -- public API ------------------------------------------------------------

    async def query(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        samples: int | None = None,
        spec: EvalSpec | str | dict | None = None,
        mode: str | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
        budget: int | None = None,
        time_limit: float | None = None,
        workers: int | str | None = None,
    ) -> RemoteResult:
        """Run ``sql`` on the server; mirrors :meth:`Session.run`."""
        payload = {
            "sql": sql,
            "tenant": tenant if tenant is not None else self.tenant,
        }
        if engine is not None:
            payload["engine"] = engine
        if samples is not None:
            payload["samples"] = samples
        wire_spec = spec_payload(
            spec,
            mode=mode,
            epsilon=epsilon,
            delta=delta,
            budget=budget,
            time_limit=time_limit,
            workers=workers,
        )
        if wire_spec is not None:
            payload["spec"] = wire_spec
        status, _, response = await self._http("POST", "/query", payload)
        if status != 200:
            _raise_for_error(response.get("error", {"message": f"HTTP {status}"}))
        return result_from_json(
            response["result"],
            degraded=response.get("degraded", False),
            statement_cache_hit=response.get("statement_cache_hit", False),
        )

    async def stats(self) -> dict:
        status, _, response = await self._http("GET", "/stats")
        if status != 200:
            _raise_for_error(response.get("error", {"message": f"HTTP {status}"}))
        return response

    async def healthz(self) -> dict:
        status, _, response = await self._http("GET", "/healthz")
        if status != 200:
            _raise_for_error(response.get("error", {"message": f"HTTP {status}"}))
        return response

    # -- TCP -------------------------------------------------------------------

    async def _tcp_round_trip(self, request: dict, collect_stream: bool):
        reader, writer = await asyncio.open_connection(self.host, self.tcp_port)
        try:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ServerError(
                        {"type": "ConnectionClosed",
                         "message": "server closed the stream"}
                    )
                response = json.loads(line.decode("utf-8"))
                if not response.get("ok", False):
                    _raise_for_error(response.get("error", {}))
                if collect_stream:
                    if response.get("done"):
                        return
                    yield response
                else:
                    yield response
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _tcp_payload(self, op, sql, tenant, engine, spec, **overrides) -> dict:
        payload = {
            "op": op,
            "sql": sql,
            "tenant": tenant if tenant is not None else self.tenant,
        }
        if engine is not None:
            payload["engine"] = engine
        wire_spec = spec_payload(spec, **overrides)
        if wire_spec is not None:
            payload["spec"] = wire_spec
        return payload

    async def tcp_query(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        spec: EvalSpec | str | dict | None = None,
        **overrides,
    ) -> RemoteResult:
        """One-shot query over the TCP line protocol."""
        payload = self._tcp_payload("query", sql, tenant, engine, spec, **overrides)
        async for response in self._tcp_round_trip(payload, collect_stream=False):
            return result_from_json(
                response["result"],
                degraded=response.get("degraded", False),
                statement_cache_hit=response.get("statement_cache_hit", False),
            )

    async def stream(
        self,
        sql: str,
        *,
        tenant: str | None = None,
        engine: str | None = None,
        spec: EvalSpec | str | dict | None = None,
        **overrides,
    ):
        """Async iterator of anytime snapshots (``Session.run_iter``).

        Each yielded :class:`RemoteResult` carries sound, monotonically
        tightening intervals; stop consuming whenever the current widths
        are good enough (each stream uses its own TCP connection, so
        abandoning it cannot desynchronise other requests).
        """
        payload = self._tcp_payload("stream", sql, tenant, engine, spec, **overrides)
        async for response in self._tcp_round_trip(payload, collect_stream=True):
            yield result_from_json(
                response["snapshot"],
                degraded=response.get("degraded", False),
                statement_cache_hit=response.get("statement_cache_hit", False),
            )

    # -- lifecycle -------------------------------------------------------------

    async def close(self) -> None:
        await self._close_http()

    async def __aenter__(self) -> "ServerClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    def __repr__(self):
        return (
            f"ServerClient(http={self.host}:{self.port}, "
            f"tcp={self.host}:{self.tcp_port}, tenant={self.tenant!r})"
        )
