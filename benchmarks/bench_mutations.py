"""Mixed read/write workload: incremental invalidation vs flush-all.

Before this benchmark's PR, any mutation was only safe if the session
threw away *every* cache (compiled distributions, the persistent
compiler's d-tree memo, bound plans, the tuple-independence scan) — the
``flush_all`` series reproduces that discipline by closing the session
after each write.  The ``incremental`` series uses the delta-aware
pipeline: per-table epochs patch the scan/index caches, and lineage
invalidation drops only the compiled distributions whose variables a
probability update actually touched.

The workload interleaves warm queries (a selection, a per-group COUNT
and a global SUM over one probabilistic table) with writes at a
configurable percentage (default 10%, the acceptance point), rotating
insert / value-update / probability-update / delete deterministically.
Both series apply the identical write sequence, and each series' final
answers are checked fingerprint-identical to a from-scratch session over
the mutated data before any timing is reported — a wrong fast answer
fails the run.

Flags: ``--smoke`` (trimmed CI sweep), ``--json PATH``,
``--baseline PATH``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import os
import sys
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro import cmp_, connect, count_, lit, sum_
from repro.algebra import Var
from repro.algebra.expressions import sprod, ssum
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.prob.variables import VariableRegistry
from repro.session import Session

KINDS = ("a", "b", "c", "d")

#: Deterministic probabilities (no RNG: runs must be identical across
#: processes so the two series mutate identical databases).
def _prob(index: int) -> float:
    state = (index * 1103515245 + 12345) % (1 << 31)
    return 0.05 + 0.9 * ((state >> 8) % 1000) / 999.0


def build_session(rows: int) -> Session:
    """One table, four groups: a *hot* independent partition and three
    read-mostly correlated ones.

    Group ``a`` rows carry auto-minted independent Bernoulli variables —
    the cheap, writable partition every mutation targets.  Groups
    ``b``/``c``/``d`` are annotated with chain-overlapping DNF clauses
    over a shared variable pool, so their aggregate distributions need
    genuine d-tree decomposition: this is the compilation work that
    flush-all keeps redoing and lineage-aware invalidation keeps warm.
    """
    session = connect(seed=7)
    table = session.table("items", ["kind", "value"])
    registry = session.registry
    for i in range(rows + 3):
        registry.bernoulli(f"c{i}", 0.3 + 0.4 * ((i * 7) % 10) / 9)
    for i in range(rows):
        kind = KINDS[i % len(KINDS)]
        value = 10 * (1 + i % 7)
        if kind == "a":
            table.insert((kind, value), p=_prob(i + 1))
        else:
            table.insert(
                (kind, value),
                annotation=ssum([
                    sprod([Var(f"c{i}"), Var(f"c{i + 1}")]),
                    sprod([Var(f"c{i + 2}"), Var(f"c{i + 3}")]),
                ]),
            )
    return session


def queries(session: Session):
    """A nine-statement mix, aggregate-heavy (compilation-bound).

    The selection thresholds give each statement its own compiled
    distributions; flush-all therefore recompiles the whole zoo after
    every write, while the incremental pipeline recompiles only the
    entries whose lineage the write touched.
    """
    t = session.table("items")
    zoo = [
        t.select("kind").build(),
        t.group_by("kind").agg(n=count_()).build(),
        t.group_by("kind").agg(total=sum_("value")).build(),
    ]
    for threshold in (20, 30, 40):
        filtered = t.where(cmp_("value", ">=", lit(threshold)))
        zoo.append(filtered.group_by("kind").agg(n=count_()).build())
        zoo.append(
            filtered.group_by("kind").agg(total=sum_("value")).build()
        )
    return zoo


def apply_write(session: Session, index: int) -> None:
    """The ``index``-th write of the deterministic mutation sequence.

    All writes target the ``"a"`` group: the OLTP-ish shape (a hot
    partition under mutation, the rest of the table read-mostly) where
    lineage invalidation pays off — the untouched groups' compiled
    aggregate distributions stay warm.
    """
    op = index % 4
    if op == 0:
        session.db.insert(
            "items", ("a", 10 + index % 50), p=_prob(1000 + index)
        )
    elif op == 1:
        session.db.update(
            "items", {"kind": "a"}, set_values={"value": 11 + index % 7}
        )
    elif op == 2:
        session.db.update("items", {"kind": "a"}, p=_prob(2000 + index))
    else:
        session.db.delete(
            "items", lambda values, v=10 + index % 50: values["kind"] == "a"
            and values["value"] == v
        )


def fingerprints(session: Session):
    return [
        [
            (row.values, row.probability().low, row.probability().high)
            for row in session.run(query, engine="sprout")
        ]
        for query in queries(session)
    ]


def rebuilt_from_scratch(session: Session) -> Session:
    registry = VariableRegistry()
    for name, dist in session.registry.items():
        registry.declare(name, dist)
    tables = {
        name: PVCTable(table.schema, list(table.rows))
        for name, table in session.db.tables.items()
    }
    db = PVCDatabase(tables=tables, registry=registry, semiring=session.semiring)
    return Session(database=db, seed=session.seed)


def run_workload(rows: int, ops: int, write_pct: int, flush_all: bool) -> dict:
    """Drive ``ops`` operations, ``write_pct``% of them writes.

    Returns wall-clock figures plus the cache counters that explain
    them.  ``flush_all=True`` reproduces the pre-PR discipline: every
    write is followed by ``session.close()`` (drop every cache, keep the
    data), so each subsequent query recompiles from nothing.
    """
    session = build_session(rows)
    zoo = queries(session)
    for query in zoo:  # warm every cache before the clock starts
        session.run(query, engine="sprout")
    stride = max(1, round(100 / write_pct)) if write_pct else ops + 1
    reads = writes = 0
    t0 = time.perf_counter()
    for index in range(ops):
        if write_pct and index % stride == stride - 1:
            apply_write(session, writes)
            writes += 1
            if flush_all:
                session.close()
        else:
            session.run(zoo[index % len(zoo)], engine="sprout")
            reads += 1
    wall = time.perf_counter() - t0
    # Correctness gate: the mutated warm session must answer exactly
    # like a cold session rebuilt from its data.
    if fingerprints(session) != fingerprints(rebuilt_from_scratch(session)):
        raise AssertionError(
            f"post-workload answers diverge from the from-scratch oracle "
            f"(flush_all={flush_all})"
        )
    stats = session.cache.stats()
    return {
        "ops": ops,
        "reads": reads,
        "writes": writes,
        "wall_seconds": wall,
        "ops_per_second": ops / wall,
        "read_throughput_qps": reads / wall if reads else 0.0,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_invalidations": stats["invalidations"],
        "db_generation": session.db.generation,
    }


def main(argv=None) -> int:
    smoke = smoke_mode(argv)
    rows = 32 if smoke else 64
    ops = 60 if smoke else 300
    report = BenchReport(
        "mutations", cpu_count=os.cpu_count(), rows=rows, ops=ops
    )
    sweep = [10] if smoke else [5, 10, 30]
    table_rows = []
    for write_pct in sweep:
        point = {}
        for mode, flush in (("incremental", False), ("flush_all", True)):
            metrics = run_workload(rows, ops, write_pct, flush_all=flush)
            report.add(
                mode,
                {"write_pct": write_pct, "rows": rows},
                mean=metrics["wall_seconds"],
                **metrics,
            )
            point[mode] = metrics
            table_rows.append(
                (
                    mode,
                    write_pct,
                    metrics["writes"],
                    f"{metrics['read_throughput_qps']:.1f}",
                    metrics["cache_misses"],
                    metrics["cache_invalidations"],
                )
            )
        speedup = (
            point["incremental"]["read_throughput_qps"]
            / point["flush_all"]["read_throughput_qps"]
        )
        report.config.setdefault("speedups", {})[str(write_pct)] = round(
            speedup, 2
        )
        # The acceptance criterion at the 10%-write point: delta-aware
        # invalidation must at least double warm-query throughput.
        if write_pct == 10 and speedup < 2.0:
            print(
                f"FAIL: incremental is only {speedup:.2f}x flush-all "
                f"at {write_pct}% writes (need >= 2x)"
            )
            return 1
    print_series(
        "mixed-workload warm-query throughput",
        ["series", "write%", "writes", "qps", "misses", "invalidated"],
        table_rows,
    )
    for write_pct, speedup in report.config.get("speedups", {}).items():
        print(f"incremental vs flush-all at {write_pct}% writes: {speedup}x")
    report.finish(argv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
