"""The committed-baseline mechanism for grandfathered findings.

A baseline file is a JSON document listing findings that predate a rule
(or are deliberate, documented exceptions).  Matching is by
:meth:`~repro.analysis.findings.Finding.baseline_key` — ``(file, rule,
message)`` without the line number — and is a *multiset* match: two
identical grandfathered findings need two baseline entries, so the
baseline can never hide a newly introduced duplicate of an old sin.

Every entry should carry a ``"why"`` string justifying the exception;
entries that no longer match anything are reported as ``baseline-stale``
findings, so fixing a grandfathered finding forces the baseline to
shrink with it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "write_baseline"]

_KEY = tuple[str, str, str]


class Baseline:
    """The parsed baseline: a multiset of grandfathered finding keys."""

    def __init__(self, entries: list[dict], path: str | None = None):
        self.path = path
        self.entries = entries
        self._budget: Counter[_KEY] = Counter()
        for entry in entries:
            self._budget[(entry["file"], entry["rule"], entry["message"])] += 1
        self._matched: Counter[_KEY] = Counter()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = payload.get("findings", [])
        for entry in entries:
            missing = {"file", "rule", "message"} - set(entry)
            if missing:
                raise ValueError(
                    f"baseline entry {entry!r} lacks {sorted(missing)}"
                )
        return cls(entries, path=str(path))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    def absorbs(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered (consumes one entry)."""
        key = finding.baseline_key()
        if self._matched[key] < self._budget[key]:
            self._matched[key] += 1
            return True
        return False

    def stale_entries(self) -> list[Finding]:
        """``baseline-stale`` findings for entries that matched nothing."""
        stale: list[Finding] = []
        for (file, rule, message), budget in sorted(self._budget.items()):
            unmatched = budget - self._matched[(file, rule, message)]
            for _ in range(unmatched):
                stale.append(
                    Finding(
                        file=self.path or "<baseline>",
                        line=1,
                        rule_id="baseline-stale",
                        severity="warning",
                        message=(
                            f"baseline entry no longer matches anything: "
                            f"{file} [{rule}] {message!r}; remove it"
                        ),
                    )
                )
        return stale


def write_baseline(
    findings: list[Finding], path: str | Path, why: str = "grandfathered"
) -> None:
    """Serialise ``findings`` as a fresh baseline at ``path``.

    The generic ``why`` is a placeholder: deliberate exceptions should
    be edited to carry a real justification before the file is
    committed.
    """
    payload = {
        "comment": (
            "Grandfathered repro.analysis findings. Matching ignores line "
            "numbers; each entry absorbs exactly one finding. Give every "
            "entry an honest 'why'."
        ),
        "findings": [
            {
                "file": finding.file,
                "rule": finding.rule_id,
                "message": finding.message,
                "why": why,
            }
            for finding in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
