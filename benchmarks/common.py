"""Shared infrastructure for the experiment benchmarks.

Scaling note
------------
The paper's experiments ran compiled C code inside PostgreSQL on a Xeon
X5650; this reproduction runs pure Python.  All parameter sets are
therefore scaled down (fewer variables and terms, smaller value ranges)
relative to Section 7 — by roughly one order of magnitude — while keeping
every *ratio* the paper's qualitative claims depend on (e.g. the
``c``-sweep of Experiment A still crosses ``maxv``; Experiment C still
crosses the easy/hard/easy phase transition).  EXPERIMENTS.md records the
mapping and compares the measured shapes against the published figures.

Each ``bench_exp_*.py`` module doubles as a script: running it directly
prints the full sweep as the rows/series of the corresponding figure.
"""

from __future__ import annotations

import json
import platform
import random
import statistics
import sys
import time

from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.workloads.random_expr import ExprParams, generate_condition

__all__ = [
    "evaluate_once",
    "average_time",
    "print_series",
    "run_point",
    "smoke_mode",
    "json_path",
    "baseline_path",
    "BenchReport",
    "build_mc_database",
    "mc_query",
]


def smoke_mode(argv: list[str] | None = None) -> bool:
    """True when ``--smoke`` was passed on the command line.

    CI runs each experiment script with ``--smoke`` to exercise the
    measurement path on a trimmed sweep (one point per series, one run)
    without paying for the full figure.
    """
    args = sys.argv[1:] if argv is None else argv
    return "--smoke" in args


def _flag_value(flag: str, argv: list[str] | None = None) -> str | None:
    args = sys.argv[1:] if argv is None else argv
    for index, arg in enumerate(args):
        if arg == flag and index + 1 < len(args):
            return args[index + 1]
        if arg.startswith(flag + "="):
            return arg.split("=", 1)[1]
    return None


def json_path(argv: list[str] | None = None) -> str | None:
    """The PATH of ``--json PATH``, if given — where to write the report."""
    return _flag_value("--json", argv)


def baseline_path(argv: list[str] | None = None) -> str | None:
    """The PATH of ``--baseline PATH`` — a previously recorded report to
    embed for before/after comparison (the perf trajectory)."""
    return _flag_value("--baseline", argv)


class BenchReport:
    """Structured benchmark results for ``--json PATH`` output.

    Collects one record per measured point (series name, parameters,
    metrics) plus enough environment information — engine, Python and
    numpy versions — to make recorded numbers comparable across runs.
    """

    def __init__(self, bench: str, **config):
        self.bench = bench
        self.config = config
        self.points: list[dict] = []

    def add(self, series: str, params: dict, **metrics) -> None:
        """Record one measured point (timings in seconds)."""
        self.points.append({"series": series, "params": params, **metrics})

    def payload(self) -> dict:
        try:
            import numpy
            numpy_version = numpy.__version__
        except ImportError:
            numpy_version = None
        from repro.prob import kernels

        return {
            "bench": self.bench,
            "engine": "repro-compiled" if self.bench != "montecarlo" else "montecarlo",
            "python_version": platform.python_version(),
            "numpy_version": numpy_version,
            "numpy_kernels_enabled": kernels.numpy_enabled(),
            "config": self.config,
            "points": self.points,
        }

    def finish(self, argv: list[str] | None = None) -> None:
        """Write the report when ``--json`` was requested.

        With ``--baseline PATH`` the previously recorded report is
        embedded under ``"baseline"`` and a total-over-total speedup is
        computed from the points' ``mean`` metrics.
        """
        path = json_path(argv)
        if path is None:
            return
        payload = self.payload()
        base = baseline_path(argv)
        if base is not None:
            with open(base) as handle:
                baseline = json.load(handle)
            payload["baseline"] = baseline

            def keys(points):
                return {
                    (p.get("series"), tuple(sorted(p.get("params", {}).items())))
                    for p in points
                }

            ours = sum(p.get("mean", 0.0) for p in self.points)
            theirs = sum(
                p.get("mean", 0.0) for p in baseline.get("points", ())
            )
            # A total-over-total ratio is only meaningful when both runs
            # measured the same point set (e.g. a --smoke run against a
            # full-sweep baseline must not record a bogus speedup).
            if keys(self.points) != keys(baseline.get("points", ())):
                payload["baseline_point_mismatch"] = True
            elif ours > 0 and theirs > 0:
                payload["speedup_vs_baseline"] = round(theirs / ours, 3)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"\n[json report written to {path}]")


def evaluate_once(params: ExprParams, seed: int = 0, **compiler_options):
    """Generate one Eq.-11 condition, compile it, compute its distribution.

    Returns ``(elapsed_seconds, compiler)`` so callers can inspect
    compilation statistics.
    """
    expr, registry = generate_condition(params, seed=seed)
    start = time.perf_counter()
    compiler = Compiler(registry, BOOLEAN, **compiler_options)
    compiler.distribution(expr)
    return time.perf_counter() - start, compiler


def average_time(params: ExprParams, runs: int, seed: int = 0, **options) -> float:
    """Mean evaluation time over ``runs`` random expressions.

    Mirrors the paper's protocol of averaging #runs repetitions; with
    ``runs >= 3`` the slowest and fastest run are discarded, as in
    Section 7.
    """
    times = [
        evaluate_once(params, seed=seed * 1013 + i, **options)[0]
        for i in range(runs)
    ]
    if runs >= 3:
        times = sorted(times)[1:-1]
    return statistics.mean(times)


def run_point(params: ExprParams, runs: int = 2, seed: int = 0, **options):
    """One figure point: ``(mean_seconds, stdev_seconds)``."""
    times = [
        evaluate_once(params, seed=seed * 1013 + i, **options)[0]
        for i in range(runs)
    ]
    mean = statistics.mean(times)
    stdev = statistics.stdev(times) if len(times) > 1 else 0.0
    return mean, stdev


def build_mc_database(
    rows: int = 40, groups: int = 4, max_value: int = 50, seed: int = 0
):
    """The Monte-Carlo baseline database: one probabilistic fact table
    ``R(a, v)`` with an independent Bernoulli(0.5) event per row, plus an
    unrelated table ``S`` that the benchmark query never touches (a
    regression guard for per-world instantiation being restricted to the
    relations a query references)."""
    from repro.algebra.expressions import Var
    from repro.db.pvc_table import PVCDatabase
    from repro.prob.variables import VariableRegistry

    rng = random.Random(seed)
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    table = db.create_table("R", ["a", "v"])
    for i in range(rows):
        name = f"r{i}"
        registry.bernoulli(name, 0.5)
        table.add((i % groups, rng.randint(0, max_value)), Var(name))
    other = db.create_table("S", ["b"])
    for i in range(rows):
        name = f"s{i}"
        registry.bernoulli(name, 0.5)
        other.add((i,), Var(name))
    return db


def mc_query():
    """The Monte-Carlo baseline query: a grouped SUM over the fact table."""
    from repro.query.ast import AggSpec, GroupAgg, relation

    return GroupAgg(relation("R"), ["a"], [AggSpec.of("total", "SUM", "v")])


def print_series(title: str, header: list[str], rows: list[tuple]):
    """Print a figure's data series as an aligned table."""
    print(f"\n== {title} ==")
    widths = [
        max(len(header[i]), *(len(f"{row[i]}") for row in rows))
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(f"{cell}".ljust(widths[i]) for i, cell in enumerate(row)))
