"""Unit tests for semimodule expressions (Definition 4)."""

import math

import pytest

from repro.algebra.expressions import ONE, ZERO, Var, sprod
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.semimodule import (
    AggSum,
    MConst,
    Tensor,
    aggsum,
    module_terms,
    tensor,
)
from repro.errors import AlgebraError


class TestMConst:
    def test_value_and_monoid(self):
        const = MConst(SUM, 5)
        assert const.value == 5
        assert const.monoid == SUM

    def test_module_zero(self):
        assert MConst(SUM, 0).is_module_zero()
        assert MConst(MIN, math.inf).is_module_zero()
        assert not MConst(SUM, 1).is_module_zero()

    def test_no_variables(self):
        assert MConst(SUM, 5).variables == frozenset()


class TestTensorLaws:
    """The smart constructor enforces the Definition-4 identities."""

    def test_one_tensor_is_identity(self):
        # 1_S ⊗ m = m
        assert tensor(ONE, MConst(SUM, 5)) == MConst(SUM, 5)

    def test_zero_scalar_annihilates(self):
        # 0_S ⊗ m = 0_M
        assert tensor(ZERO, MConst(SUM, 5)) == MConst(SUM, 0)
        assert tensor(ZERO, MConst(MIN, 5)) == MConst(MIN, math.inf)

    def test_zero_module_annihilates(self):
        # Φ ⊗ 0_M = 0_M
        assert tensor(Var("x"), MConst(SUM, 0)).is_module_zero()

    def test_nested_tensors_merge(self):
        # s1 ⊗ (s2 ⊗ m) = (s1 · s2) ⊗ m
        inner = tensor(Var("y"), MConst(SUM, 5))
        outer = tensor(Var("x"), inner)
        assert isinstance(outer, Tensor)
        assert outer.phi == sprod([Var("x"), Var("y")])
        assert outer.arg == MConst(SUM, 5)

    def test_scalar_must_be_semiring(self):
        with pytest.raises(AlgebraError):
            tensor(MConst(SUM, 1), MConst(SUM, 5))

    def test_argument_must_be_module(self):
        with pytest.raises(AlgebraError):
            tensor(Var("x"), 5)

    def test_variables_union(self):
        expr = tensor(Var("x") * Var("y"), MConst(SUM, 5))
        assert expr.variables == frozenset({"x", "y"})


class TestAggSum:
    def test_flattens_same_monoid(self):
        t1 = tensor(Var("x"), MConst(SUM, 1))
        t2 = tensor(Var("y"), MConst(SUM, 2))
        t3 = tensor(Var("z"), MConst(SUM, 3))
        nested = aggsum(SUM, [aggsum(SUM, [t1, t2]), t3])
        assert isinstance(nested, AggSum)
        assert len(nested.children) == 3

    def test_folds_constants_with_monoid(self):
        expr = aggsum(MIN, [MConst(MIN, 5), MConst(MIN, 3), tensor(Var("x"), MConst(MIN, 9))])
        consts = [c for c in module_terms(expr) if isinstance(c, MConst)]
        assert consts == [MConst(MIN, 3)]

    def test_drops_neutral(self):
        t = tensor(Var("x"), MConst(SUM, 1))
        assert aggsum(SUM, [t, MConst(SUM, 0)]) == t

    def test_empty_sum_is_neutral(self):
        assert aggsum(SUM, []) == MConst(SUM, 0)
        assert aggsum(MAX, []) == MConst(MAX, -math.inf)

    def test_mixed_monoids_rejected(self):
        with pytest.raises(AlgebraError, match="cannot sum"):
            aggsum(SUM, [MConst(MIN, 1)])

    def test_non_module_term_rejected(self):
        with pytest.raises(AlgebraError):
            aggsum(SUM, [Var("x")])

    def test_canonical_order(self):
        t1 = tensor(Var("x"), MConst(SUM, 1))
        t2 = tensor(Var("y"), MConst(SUM, 2))
        assert aggsum(SUM, [t1, t2]) == aggsum(SUM, [t2, t1])

    def test_module_terms_view(self):
        t1 = tensor(Var("x"), MConst(SUM, 1))
        assert module_terms(t1) == (t1,)
        s = aggsum(SUM, [t1, tensor(Var("y"), MConst(SUM, 2))])
        assert len(module_terms(s)) == 2

    def test_substitution_through_module(self):
        expr = aggsum(SUM, [
            tensor(Var("x"), MConst(SUM, 10)),
            tensor(Var("y"), MConst(SUM, 20)),
        ])
        reduced = expr.substitute({"x": ZERO})
        assert reduced == tensor(Var("y"), MConst(SUM, 20))
