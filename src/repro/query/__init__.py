"""Query language ``Q``: algebra, validation, rewriting, tractability, SQL.

Implements Sections 4 and 6 of the paper: the positive relational algebra
with grouping/aggregation (Definition 5), the Figure-4 rewriting that
constructs symbolic annotations and semimodule values, the hierarchical /
``Q_ind`` / ``Q_hie`` tractability analysis (Definitions 8-9, Theorem 3),
and a small SQL front-end.
"""

from repro.query.ast import (
    AggSpec,
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
    equijoin,
    product_of,
    relation,
)
from repro.query.predicates import (
    AttrRef,
    Comparison,
    Conjunction,
    Literal,
    TruePredicate,
    attr,
    cmp_,
    conj,
    eq,
    lit,
)
from repro.query.builder import (
    AggTerm,
    QueryBuilder,
    count_,
    max_,
    min_,
    prod_,
    sum_,
)
from repro.query.optimizer import (
    DEFAULT_RULES,
    Rule,
    RuleFiring,
    optimize,
    optimize_traced,
)
from repro.query.physical import explain_plan, plan_query
from repro.query.executor import (
    PreparedQuery,
    evaluate,
    execute_deterministic,
    execute_symbolic,
    prepare,
)
from repro.query.rewrite import evaluate_query
from repro.query.sql import parse_sql
from repro.query.tractability import (
    Classification,
    QueryClass,
    classify_query,
    is_hierarchical,
    tuple_independent_relations,
)
from repro.query.validate import validate_query

__all__ = [
    "Query",
    "BaseRelation",
    "Extend",
    "Select",
    "Project",
    "Product",
    "Union",
    "GroupAgg",
    "AggSpec",
    "relation",
    "product_of",
    "equijoin",
    "AttrRef",
    "Literal",
    "Comparison",
    "Conjunction",
    "TruePredicate",
    "attr",
    "lit",
    "eq",
    "cmp_",
    "conj",
    "evaluate_query",
    "optimize",
    "optimize_traced",
    "Rule",
    "RuleFiring",
    "DEFAULT_RULES",
    "plan_query",
    "explain_plan",
    "PreparedQuery",
    "prepare",
    "evaluate",
    "execute_symbolic",
    "execute_deterministic",
    "validate_query",
    "parse_sql",
    "QueryBuilder",
    "AggTerm",
    "sum_",
    "count_",
    "min_",
    "max_",
    "prod_",
    "QueryClass",
    "Classification",
    "classify_query",
    "is_hierarchical",
    "tuple_independent_relations",
]
