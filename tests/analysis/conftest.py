"""Shared helpers for the repro.analysis fixture corpus.

Each checker test writes a small fixture module to ``tmp_path`` and runs
the real analysis pipeline over it — suppressions, baseline and hygiene
lints included — so the tests prove the end-to-end behavior a CI run
sees, not just a checker method in isolation.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture
def analyze(tmp_path):
    """Write one fixture module and analyse it with the given checkers."""

    def run(source, checkers, name="fixture.py", **kwargs):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return analyze_paths([str(path)], checkers=checkers, **kwargs)

    return run
