"""The unified ``Session`` facade — one front door to the whole stack.

The paper's architecture (Section 7) is a two-step pipeline: symbolic
rewriting (⟦·⟧) followed by d-tree compilation (P(·)).  A :class:`Session`
owns the pieces every caller previously hand-assembled — the
:class:`~repro.prob.variables.VariableRegistry`, the
:class:`~repro.db.pvc_table.PVCDatabase`, a persistent
:class:`~repro.core.compile.Compiler` behind a
:class:`~repro.engine.base.CompilationCache` — and exposes:

* fluent table definition with auto-minted Bernoulli variables::

      s = connect()
      items = s.table("items", ["name", "price"])
      items.insert(("inkjet", 99), p=0.7)

* a lazy fluent query builder lowering to :mod:`repro.query.ast`::

      items.where(cmp_("price", "<=", lit(300))).group_by("category") \\
           .agg(total=sum_("price")).run()

* a SQL front door: ``s.sql("SELECT SUM(price) AS t FROM items")``;
* pluggable engines behind one :class:`~repro.engine.base.Engine`
  protocol, with ``engine="auto"`` dispatching on the Section-6
  tractability analysis *and* the evaluation spec (exact compilation
  when provably tractable, guaranteed approximation — deterministic
  ε-bounds or sequential (ε, δ) Monte-Carlo — otherwise);
* anytime answers: ``run_iter()`` yields progressively refined
  interval-valued results, and ``with connect() as s:`` scopes the
  session's caches;
* reproducibility: ``connect(seed=N)`` seeds the Monte-Carlo engine and
  the Eq.-11 workload generator.
"""

from __future__ import annotations

from dataclasses import replace as _replace

from repro.algebra.semiring import BOOLEAN, Semiring
from repro.core.compile import Compiler
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.db.schema import Schema
from repro.engine.base import (
    ENGINE_NAMES,
    CompilationCache,
    Engine,
    create_engine,
    select_engine_name,
)
from repro.engine.spec import EvalSpec
from repro.engine.sprout import QueryResult
from repro.errors import QueryValidationError, SchemaError
from repro.prob.variables import VariableRegistry
from repro.query.ast import Query, relation
from repro.query.builder import QueryBuilder
from repro.query.executor import evaluate, prepare
from repro.query.physical import explain_plan
from repro.query.sql import parse_sql
from repro.query.tractability import (
    Classification,
    classify_query,
    tuple_independent_relations,
)
from repro.query.validate import validate_query

__all__ = ["Session", "TableHandle", "connect"]


class TableHandle(QueryBuilder):
    """A named table that is both an insert target and a query root."""

    def __init__(self, session: "Session", name: str):
        super().__init__(relation(name), session)
        self.name = name

    @property
    def table(self) -> PVCTable:
        return self._session.db[self.name]

    @property
    def schema(self):
        return self.table.schema

    def insert(self, values, p=None, annotation=None, var=None) -> "TableHandle":
        """Insert one row; ``p`` auto-mints a Bernoulli variable.

        Returns the handle, so inserts chain fluently.  ``values`` may be
        a positional tuple or an attribute dictionary; see
        :meth:`repro.db.pvc_table.PVCDatabase.insert`.
        """
        self._session.db.insert(
            self.name, values, p=p, annotation=annotation, var=var
        )
        return self

    def insert_many(self, rows) -> "TableHandle":
        """Insert ``(values, probability)`` pairs in bulk."""
        for values, p in rows:
            self.insert(values, p=p)
        return self

    def insert_block(self, alternatives, var=None) -> "TableHandle":
        """Insert mutually exclusive alternatives (a BID block)."""
        self._session.db.insert_block(self.name, alternatives, var=var)
        return self

    def update(self, where, set_values=None, p=None) -> int:
        """Update matching rows in place; returns the match count.

        ``where`` is an attribute mapping (equality match) or a predicate
        over the row's value dict.  ``set_values`` rewrites attribute
        values; ``p`` reassigns the matched rows' Bernoulli marginals.
        Dependent cached distributions are invalidated by lineage — see
        :meth:`repro.db.pvc_table.PVCDatabase.update`.
        """
        return self._session.db.update(
            self.name, where, set_values=set_values, p=p
        )

    def delete(self, where) -> int:
        """Delete matching rows; returns the number removed."""
        return self._session.db.delete(self.name, where)

    def __len__(self) -> int:
        return len(self.table)

    def pretty(self, max_rows: int = 20) -> str:
        return self.table.pretty(max_rows)

    def __repr__(self):
        return f"TableHandle({self.name!r}, {len(self)} rows)"


class Session:
    """One connection-like object owning registry, database and caches."""

    def __init__(
        self,
        semiring: Semiring = BOOLEAN,
        engine: str = "auto",
        seed: int | None = None,
        samples: int = 1000,
        database: PVCDatabase | None = None,
        cache: CompilationCache | None = None,
        plan_cache=None,
        **compiler_options,
    ):
        if engine != "auto" and engine not in ENGINE_NAMES:
            raise QueryValidationError(
                f"unknown engine {engine!r}; expected 'auto' or one of "
                f"{list(ENGINE_NAMES)}"
            )
        if database is not None:
            if semiring != BOOLEAN and semiring != database.semiring:
                raise QueryValidationError(
                    f"semiring {semiring!r} conflicts with the adopted "
                    f"database's semiring {database.semiring!r}; omit "
                    f"semiring= when passing database="
                )
            self.db = database
        else:
            self.db = PVCDatabase(registry=VariableRegistry(), semiring=semiring)
        self.registry = self.db.registry
        self.semiring = self.db.semiring
        self.default_engine = engine
        self.seed = seed
        self.samples = samples
        self.compiler_options = compiler_options
        if cache is not None:
            # Adopt a shared (usually server-wide) distribution cache: the
            # session then contributes to and benefits from every other
            # session sharing it.  The cache's compiler must speak this
            # session's registry and semiring — anything else would mix
            # distributions of unrelated variable spaces.
            if cache.registry is not self.registry:
                raise QueryValidationError(
                    "a shared CompilationCache must be built on the same "
                    "variable registry as the session's database"
                )
            if cache.semiring != self.semiring:
                raise QueryValidationError(
                    f"shared CompilationCache semiring {cache.semiring!r} "
                    f"conflicts with the session semiring {self.semiring!r}"
                )
            self.cache = cache
            #: A shared cache outlives this session; ``close()`` must not
            #: flush the other tenants' warm entries.
            self._owns_cache = False
        else:
            #: Distribution cache keyed on normalized annotations; wraps
            #: the persistent compiler whose d-tree memo is shared by
            #: every sprout run of this session.
            self.cache = CompilationCache(
                Compiler(self.registry, self.semiring, **compiler_options)
            )
            self._owns_cache = True
        #: Mutations on this session's database invalidate exactly the
        #: cache entries whose lineage they touch (weakly subscribed, so
        #: discarded sessions leave nothing behind).
        self.cache.watch(self.db)
        #: Optional shared prepared-plan cache (see
        #: :class:`~repro.engine.base.PlanCache`); ``None`` keeps the
        #: engines' private per-query memo.  Always treated as shared:
        #: entries self-invalidate via cardinality fingerprints, so
        #: ``close()`` never clears it.
        self.plan_cache = plan_cache
        self._engines: dict[str, Engine] = {}
        self._tuple_independent: tuple | None = None

    @property
    def compiler(self) -> Compiler:
        """The cache's current persistent compiler.

        A property rather than a snapshot: lineage invalidation replaces
        the compiler under the cache when variable distributions change,
        and a stale reference would compile against dead distributions.
        """
        return self.cache.compiler

    # -- schema and data ------------------------------------------------------

    def table(
        self,
        name: str,
        columns=None,
        aggregation_attributes=(),
    ) -> TableHandle:
        """A handle for table ``name``, creating it when ``columns`` given.

        ``s.table("items", ["name", "price"])`` creates the table (error
        if one exists with a different schema); ``s.table("items")``
        requires it to exist.
        """
        if columns is not None:
            if name in self.db:
                wanted = Schema(columns, aggregation_attributes)
                if self.db[name].schema != wanted:
                    raise SchemaError(
                        f"table {name!r} already exists with schema "
                        f"{self.db[name].schema!r}, not {wanted!r}"
                    )
            else:
                self.db.create_table(name, columns, aggregation_attributes)
        else:
            self.db[name]  # raises SchemaError when absent
        return TableHandle(self, name)

    @property
    def tables(self) -> dict[str, PVCTable]:
        return self.db.tables

    # -- engines --------------------------------------------------------------

    def engine(self, name: str) -> Engine:
        """The (cached) engine adapter registered under ``name``."""
        adapter = self._engines.get(name)
        if adapter is None:
            adapter = create_engine(
                name,
                self.db,
                distribution_source=self.cache,
                plan_source=self.plan_cache,
                seed=self.seed,
                samples=self.samples,
                **self.compiler_options,
            )
            self._engines[name] = adapter
        return adapter

    def _lower(self, query) -> Query:
        """Accept AST nodes, builders, and SQL strings uniformly."""
        if isinstance(query, QueryBuilder):
            return query.build()
        if isinstance(query, str):
            return parse_sql(query)
        if isinstance(query, Query):
            return query
        raise QueryValidationError(
            f"cannot run {query!r}; expected a Query, QueryBuilder, or SQL"
        )

    def _build_spec(
        self,
        engine_name,
        spec,
        mode,
        epsilon,
        delta,
        budget,
        time_limit,
        workers=None,
        on_timeout=None,
        codegen=None,
    ) -> EvalSpec | None:
        """The :class:`EvalSpec` the caller asked for, or ``None``.

        ``None`` (nothing requested) preserves the legacy point-answer
        behavior of every engine.  When answer-*quality* fields
        (``epsilon``/``delta``/``budget``/``time_limit``) are given
        without a mode, the chosen engine (explicit or the session
        default) implies one — ``approx`` ↦ deterministic bounds,
        ``montecarlo`` ↦ sampled (ε, δ) intervals.  ``workers`` is a pure
        *execution* knob and never implies a mode: on its own it yields
        an exact-mode, execution-only spec that keeps every engine's
        answer semantics unchanged (the Monte-Carlo adapter shards its
        legacy fixed-budget estimator rather than switching to
        sequential stopping).
        """
        if spec is None and all(
            value is None
            for value in (
                mode, epsilon, delta, budget, time_limit, workers,
                on_timeout, codegen,
            )
        ):
            return None
        if spec is None and mode is None and any(
            value is not None for value in (epsilon, delta, budget, time_limit)
        ):
            mode = {"approx": "approx", "montecarlo": "sample"}.get(engine_name)
        built = EvalSpec.make(
            spec,
            mode=mode,
            epsilon=epsilon,
            delta=delta,
            budget=budget,
            time_limit=time_limit,
            workers=workers,
            on_timeout=on_timeout,
            codegen=codegen,
        )
        if engine_name == "montecarlo" and built.mode == "exact":
            # Only the session can tell an *explicit* exact request from
            # the default mode a workers-only spec carries; the adapter
            # sees identical EvalSpec values for both.  Reject explicit
            # requests here so `workers=` can never launder an exact
            # request into samples; a pure-execution spec (workers only,
            # no quality fields, no explicit mode) stays allowed — the
            # adapter shards its legacy estimator for it.
            explicitly_exact = mode == "exact" or spec == "exact" or (
                isinstance(spec, EvalSpec)
                and spec.mode == "exact"
                and not spec.execution_only
            )
            if explicitly_exact or not (
                built.execution_only
                and (built.workers is not None or built.codegen is not None)
            ):
                raise QueryValidationError(
                    "montecarlo engine cannot guarantee exact answers; use "
                    "engine='sprout' or 'naive', or spec mode 'sample'"
                )
        return built

    def _resolve(self, query, engine, samples, spec, options):
        """Common dispatch of :meth:`run` and :meth:`run_iter`.

        Lowers and validates the query, resolves ``engine="auto"`` on the
        tractability classification *and* the spec, and returns
        ``(query, engine_name, spec)`` with ``options`` updated in place.
        """
        query = self._lower(query)
        # Validate up front so schema errors surface before engine
        # selection.
        validate_query(query, self.db.catalog())
        name = engine
        auto = name == "auto"
        if auto:
            name, _ = select_engine_name(
                self.db,
                query,
                spec=spec,
                tuple_independent=self.tuple_independent_relations(),
            )
            if name == "approx" and (spec is None or spec.is_exact):
                # Hard query under exact intent: degrade to *guaranteed*
                # approximation — deterministic ε-bounds — rather than an
                # unqualified estimate.  engine='sprout' forces exact
                # compilation; a 'sample' spec selects Monte-Carlo.
                spec = (
                    EvalSpec(mode="approx")
                    if spec is None
                    else _replace(spec, mode="approx")
                )
        if samples is not None:
            if name == "montecarlo":
                options["samples"] = samples
            elif not auto:
                raise QueryValidationError(
                    f"engine {name!r} does not take a sample budget"
                )
        return query, name, spec

    def run(
        self,
        query,
        engine: str | None = None,
        samples: int | None = None,
        spec: EvalSpec | str | None = None,
        mode: str | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
        budget: int | None = None,
        time_limit: float | None = None,
        workers: int | str | None = None,
        on_timeout: str | None = None,
        codegen: bool | None = None,
        **options,
    ) -> QueryResult:
        """Evaluate ``query`` and return a :class:`QueryResult`.

        ``engine`` overrides the session default; ``engine="auto"``
        dispatches on the tractability classification and the spec: exact
        compilation when provably tractable, otherwise a *guaranteed*
        approximation (deterministic ε-bounds, or sequential Monte-Carlo
        when the spec mode is ``"sample"``).

        *How* to answer is an :class:`EvalSpec` — pass one via ``spec=``
        or assemble it inline with ``mode=``/``epsilon=``/``delta=``/
        ``budget=``/``time_limit=``::

            s.run(q, mode="approx", epsilon=0.01)      # widths ≤ 0.01
            s.run(q, mode="sample", epsilon=0.05, delta=0.01)

        Every row's probability is a
        :class:`~repro.engine.spec.ProbInterval` (zero-width when exact),
        and ``result.stats`` carries the per-run diagnostics uniformly
        across engines.  ``samples`` remains the legacy fixed budget of
        the Monte-Carlo engine.  ``workers`` (``int | "auto"``) runs the
        engine's multi-core scheme — sharded sampling for Monte-Carlo,
        parallel per-row compilation for sprout/approx — with seeded
        results bit-identical to serial execution.  Extra ``options`` are
        forwarded to the engine (e.g. ``compute_probabilities=`` for
        sprout).

        ``time_limit`` is honoured *end to end* — including inside exact
        compilation — and ``on_timeout`` picks the policy when it trips:
        ``"partial"`` (default) returns the best sound answer obtained so
        far, ``"raise"`` raises
        :class:`~repro.errors.QueryTimeoutError` carrying that partial.

        ``codegen`` (``True``/``False``/``None``) forces the compiled
        per-world kernels on or off for this run; the default follows the
        ``REPRO_CODEGEN`` environment knob.  Like ``workers`` it never
        changes an answer, only how fast it arrives.
        """
        engine = self.default_engine if engine is None else engine
        spec = self._build_spec(
            engine, spec, mode, epsilon, delta, budget, time_limit, workers,
            on_timeout, codegen,
        )
        query, name, spec = self._resolve(query, engine, samples, spec, options)
        return self.engine(name).run(query, spec=spec, **options)

    def run_iter(
        self,
        query,
        engine: str | None = None,
        spec: EvalSpec | str | None = None,
        mode: str | None = None,
        epsilon: float | None = None,
        delta: float | None = None,
        budget: int | None = None,
        time_limit: float | None = None,
        workers: int | str | None = None,
        on_timeout: str | None = None,
        codegen: bool | None = None,
        **options,
    ):
        """Anytime evaluation: yield progressively refined results.

        Engines that refine incrementally (``approx``, ``montecarlo``
        under a ``"sample"`` spec) yield a :class:`QueryResult` snapshot
        after every refinement round — each snapshot's intervals are
        sound, and they tighten monotonically.  One-shot engines yield
        their single exact result.  Consumers stop whenever the answer is
        good enough::

            for snapshot in s.run_iter(q, mode="approx", epsilon=0.001):
                top = snapshot.top_k(3)
                if top.stats["top_k_decided"]:
                    break
        """
        engine = self.default_engine if engine is None else engine
        spec = self._build_spec(
            engine, spec, mode, epsilon, delta, budget, time_limit, workers,
            on_timeout, codegen,
        )
        if engine in ("approx", "montecarlo") and (
            spec is None or spec.execution_only
        ):
            # Anytime iteration over a refining engine needs a target;
            # give it the default spec in the engine's native mode (a
            # workers-only spec keeps its workers, gains the mode).
            native = "approx" if engine == "approx" else "sample"
            spec = (
                EvalSpec(mode=native)
                if spec is None
                else _replace(spec, mode=native)
            )
        query, name, spec = self._resolve(query, engine, None, spec, options)
        adapter = self.engine(name)
        run_iter = getattr(adapter, "run_iter", None)
        if run_iter is not None and spec is not None and not spec.is_exact:
            yield from run_iter(query, spec=spec, **options)
        else:
            yield adapter.run(query, spec=spec, **options)

    def sql(self, text: str, engine: str | None = None, **options) -> QueryResult:
        """Parse SQL and evaluate it through :meth:`run` (same keywords,
        including ``spec=``/``mode=``/``epsilon=``...)."""
        return self.run(parse_sql(text), engine=engine, **options)

    # -- analysis and lower-level access --------------------------------------

    def tuple_independent_relations(self) -> set[str]:
        """The database's tuple-independent tables, cached per state.

        :func:`~repro.query.tractability.tuple_independent_relations`
        scans every row of every table; under ``engine="auto"`` it would
        otherwise run on each query.  The scan is memoized against the
        database generation, which moves on *every* mutation — the old
        fingerprint (table count, total rows, registry size) was blind to
        equal-size updates.
        """
        generation = (len(self.db.tables), self.db.generation)
        if self._tuple_independent is None or (
            self._tuple_independent[0] != generation
        ):
            self._tuple_independent = (
                generation,
                tuple_independent_relations(self.db),
            )
        return self._tuple_independent[1]

    def classify(self, query) -> Classification:
        """Static ``Q_ind``/``Q_hie`` classification of ``query``."""
        query = self._lower(query)
        return classify_query(
            query, self.db.catalog(), self.tuple_independent_relations()
        )

    def rewrite(self, query):
        """Step I only: the pvc-table of symbolic result tuples (⟦·⟧)."""
        return evaluate(self._lower(query), self.db)

    def explain(
        self, query, *, optimize: bool = True, format: str = "plan"
    ) -> str:
        """The step-I pipeline for ``query``, as a human-readable report.

        With the default ``format="plan"``, shows the logical plan before
        and after the rule-based optimizer (with the names of the rules
        that fired, per fixpoint pass) and the physical operator tree —
        hash joins, their greedy order and cardinality estimates — that
        the shared executor would run.

        ``format="code"`` instead returns the fused per-world kernel
        :mod:`repro.codegen` compiles for the plan: plain Python source
        whose header labels every CSE temp (shared subplans, hoisted
        hash indexes and static blocks) the kernel reuses.  Raises
        :class:`~repro.errors.QueryValidationError` when the plan has no
        compiled form.

        >>> s = connect()
        >>> _ = s.table("items", ["name", "price"]).insert(("inkjet", 99))
        >>> print(s.explain("SELECT name FROM items"))  # doctest: +ELLIPSIS
        == logical plan ==
        ...
        """
        if format not in ("plan", "code"):
            raise QueryValidationError(
                f"unknown explain format {format!r}; expected 'plan' or 'code'"
            )
        lowered = self._lower(query)
        prepared = prepare(  # validates against Definition 5 first
            lowered,
            self.db.catalog(),
            self.db.cardinalities(),
            optimize=optimize,
        )
        if format == "code":
            from repro.codegen import CodegenUnsupported, compile_plan

            try:
                compiled = compile_plan(prepared.plan, self.semiring)
            except CodegenUnsupported as exc:
                raise QueryValidationError(
                    f"no compiled form for this plan: {exc}"
                ) from exc
            return compiled.source
        lines = ["== logical plan ==", f"input:     {prepared.query!r}"]
        if prepared.trace:
            lines.append(f"optimized: {prepared.optimized!r}")
            fired = ", ".join(
                f"{firing.name} (pass {firing.pass_no})"
                for firing in prepared.trace
            )
            lines.append(f"rules fired: {fired}")
        else:
            lines.append("rules fired: (none)")
        lines.append("")
        lines.append("== physical plan ==")
        lines.append(explain_plan(prepared.plan))
        return "\n".join(lines)

    def deterministic_baseline(self, query):
        """The paper's Q0 timing baseline; see
        :meth:`repro.engine.sprout.SproutEngine.deterministic_baseline`."""
        return self.engine("sprout").engine.deterministic_baseline(
            self._lower(query)
        )

    def distribution(self, expr):
        """Distribution of a raw algebra expression, via the session cache."""
        return self.cache.distribution(expr)

    def probability(self, expr, value=None) -> float:
        """P[expr = value]; ``value`` defaults to the semiring's ``1_S``."""
        if value is None:
            value = self.semiring.one
        return self.distribution(expr)[value]

    def workload(self, params, seed: int | None = None):
        """One Eq.-11 workload condition, seeded by the session.

        Thin veneer over
        :func:`repro.workloads.random_expr.generate_condition` that plumbs
        ``connect(seed=...)`` through, so synthetic-benchmark runs are
        reproducible from the facade.
        """
        from repro.workloads.random_expr import generate_condition

        return generate_condition(params, seed=self.seed if seed is None else seed)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the session-owned caches.

        Clears the :class:`CompilationCache` (including the persistent
        compiler's d-tree memo) *only when this session owns it* — a
        shared server-level cache, injected via ``cache=``, serves other
        tenants and must survive one tenant's close (clearing it here
        used to flush every tenant's warm entries).  Cached engine
        adapters and the tuple-independence scan are always dropped; the
        session stays usable afterwards — data and registry are
        untouched; later runs simply recompile.
        """
        if self._owns_cache:
            self.cache.clear()
        self._engines.clear()
        self._tuple_independent = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self):
        inner = ", ".join(
            f"{name}({len(table)})" for name, table in sorted(self.tables.items())
        )
        return (
            f"Session[{self.semiring.name}, engine={self.default_engine!r}]"
            f"({inner})"
        )


def connect(
    semiring: Semiring = BOOLEAN,
    engine: str = "auto",
    seed: int | None = None,
    samples: int = 1000,
    database: PVCDatabase | None = None,
    cache: CompilationCache | None = None,
    plan_cache=None,
    **compiler_options,
) -> Session:
    """Open a :class:`Session` — the primary entry point of the library.

    >>> s = connect()
    >>> _ = s.table("items", ["name", "price"]).insert(("inkjet", 99), p=0.7)
    >>> result = s.sql("SELECT SUM(price) AS total FROM items")
    >>> len(result)
    1

    ``engine`` may be ``"auto"`` (default: exact compilation for provably
    tractable queries, guaranteed ε-approximation otherwise),
    ``"sprout"``, ``"approx"``, ``"naive"``, or ``"montecarlo"``.
    ``seed`` makes Monte-Carlo runs and generated workloads
    reproducible.  An existing :class:`PVCDatabase` can be adopted via
    ``database=``; multi-tenant deployments (see :mod:`repro.server`)
    additionally share one ``cache=`` (a
    :class:`~repro.engine.base.CompilationCache`) and one ``plan_cache=``
    (a :class:`~repro.engine.base.PlanCache`) across many sessions over
    the same database.  Sessions are context managers —
    ``with connect() as s: ...`` clears the compilation caches on exit.
    """
    return Session(
        semiring=semiring,
        engine=engine,
        seed=seed,
        samples=samples,
        database=database,
        cache=cache,
        plan_cache=plan_cache,
        **compiler_options,
    )
