"""The physical plan layer — stage 2 of the step-I pipeline.

Lowers a (logically optimized) ``Q``-algebra tree to a tree of physical
operators.  The headline transformation extracts equi-join conditions from
``σ`` over ``×`` into :class:`HashJoin` nodes, ordered greedily
smallest-relation-first by base-table cardinality estimates; everything
else lowers structurally to :class:`Filter` / :class:`NestedLoopProduct` /
:class:`ProjectOp` / :class:`GroupAggOp` and friends.

The plan is engine-agnostic: the same tree is executed symbolically
(annotations constructed in the semiring, :class:`~repro.db.pvc_table.PVCTable`
out) by the SPROUT-style engine, and deterministically (concrete semiring
multiplicities, :class:`~repro.db.relation.Relation` out) per world by the
brute-force and Monte-Carlo engines — see :mod:`repro.query.executor`.

``explain_plan`` renders the tree, and ``Session.explain`` combines it
with the optimizer's rule trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.db.schema import Schema
from repro.errors import QueryValidationError
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.query.predicates import (
    AttrRef,
    Comparison,
    Literal,
    Predicate,
    conj,
)

__all__ = [
    "PhysicalOp",
    "Scan",
    "EmptyResult",
    "Filter",
    "HashJoin",
    "NestedLoopProduct",
    "ProjectOp",
    "ReorderOp",
    "ExtendOp",
    "UnionOp",
    "GroupAggOp",
    "plan_query",
    "explain_plan",
]


@dataclass(frozen=True)
class PhysicalOp:
    """Base class of physical operators; ``schema`` is the output schema."""

    schema: Schema

    #: Child operators, for generic tree walks.
    children: tuple = field(default=(), init=False, repr=False, compare=False)

    def walk(self) -> Iterator["PhysicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PhysicalOp):
    """Read a stored base relation (duplicates merged, set-of-tuples view)."""

    name: str
    estimate: int

    def label(self):
        return f"Scan[{self.name}] (~{self.estimate} rows)"


@dataclass(frozen=True)
class EmptyResult(PhysicalOp):
    """A statically-empty input (constant-false selection)."""

    def label(self):
        return "EmptyResult"


@dataclass(frozen=True)
class Filter(PhysicalOp):
    """σ: keep rows satisfying the conjunction; symbolic comparisons are
    multiplied into the annotation (Figure 4, σ rule)."""

    child: PhysicalOp
    predicate: Predicate

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def label(self):
        return f"Filter[{self.predicate!r}]"


@dataclass(frozen=True)
class HashJoin(PhysicalOp):
    """Equi-join; the hash table is built on the ``right`` (incoming) side.

    The greedy order makes the accumulated intermediate the probe side:
    the build side is always a fresh input, which for a base-table scan
    means the executor reuses the table's *cached* hash index instead of
    rebuilding one per execution — cheaper across repeated queries even
    when the incoming side is the larger one."""

    left: PhysicalOp
    right: PhysicalOp
    left_keys: tuple
    right_keys: tuple
    estimate: int

    def __post_init__(self):
        object.__setattr__(self, "children", (self.left, self.right))

    def label(self):
        pairs = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin[{pairs}] (build=right, ~{self.estimate} rows)"


@dataclass(frozen=True)
class NestedLoopProduct(PhysicalOp):
    """×: cartesian product for join-condition-free combinations."""

    left: PhysicalOp
    right: PhysicalOp
    estimate: int

    def __post_init__(self):
        object.__setattr__(self, "children", (self.left, self.right))

    def label(self):
        return f"NestedLoopProduct (~{self.estimate} rows)"


@dataclass(frozen=True)
class ProjectOp(PhysicalOp):
    """π: project and merge duplicates (annotations sum)."""

    child: PhysicalOp
    attributes: tuple

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def label(self):
        return f"Project[{', '.join(self.attributes)}]"


@dataclass(frozen=True)
class ReorderOp(PhysicalOp):
    """Pure column permutation restoring the declared attribute order
    after join reordering (no merging — the permutation is bijective)."""

    child: PhysicalOp
    attributes: tuple

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def label(self):
        return f"Reorder[{', '.join(self.attributes)}]"


@dataclass(frozen=True)
class ExtendOp(PhysicalOp):
    """δ: duplicate attribute ``source`` under the name ``target``."""

    child: PhysicalOp
    target: str
    source: str

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def label(self):
        return f"Extend[{self.target}←{self.source}]"


@dataclass(frozen=True)
class UnionOp(PhysicalOp):
    """∪: concatenate and merge duplicates (annotations sum)."""

    left: PhysicalOp
    right: PhysicalOp

    def __post_init__(self):
        object.__setattr__(self, "children", (self.left, self.right))

    def label(self):
        return "Union"


@dataclass(frozen=True)
class GroupAggOp(PhysicalOp):
    """$: grouping with semimodule aggregation (Figure 4, $ rule)."""

    child: PhysicalOp
    groupby: tuple
    aggregations: tuple

    def __post_init__(self):
        object.__setattr__(self, "children", (self.child,))

    def label(self):
        aggs = ", ".join(map(repr, self.aggregations))
        keys = ", ".join(self.groupby) if self.groupby else "∅"
        return f"GroupAgg[{keys}; {aggs}]"


# -- the planner --------------------------------------------------------------


def plan_query(
    query: Query,
    catalog: Mapping[str, Schema],
    cardinalities: Mapping[str, int] | None = None,
    *,
    extract_joins: bool = True,
) -> PhysicalOp:
    """Lower a logical query to a physical plan.

    ``cardinalities`` maps base-table names to row counts and drives the
    greedy smallest-relation-first join ordering; missing entries default
    to 1 (planning still succeeds without statistics).

    ``extract_joins=False`` lowers ``σ(×…)`` literally — a filter over
    nested-loop products, exactly the Figure-4 reading — instead of
    extracting hash joins.  The brute-force oracle plans this way so its
    evaluation path stays independent of the join planner it verifies.
    """
    plan = _Planner(catalog, cardinalities or {}, extract_joins).plan(query)
    declared = query.schema(catalog)
    if plan.schema.attributes != declared.attributes:
        # Join reordering permuted the columns; physical operators resolve
        # attributes by name, so only the root restores declared order.
        plan = ReorderOp(declared, plan, declared.attributes)
    return plan


class _Planner:
    def __init__(self, catalog, cardinalities, extract_joins=True):
        self.catalog = catalog
        self.cardinalities = cardinalities
        self.extract_joins = extract_joins

    def plan(self, query: Query) -> PhysicalOp:
        if isinstance(query, BaseRelation):
            return Scan(query.schema(self.catalog), query.name, self._cardinality(query.name))
        if isinstance(query, Select):
            return self._plan_select(query)
        if isinstance(query, Project):
            child = self.plan(query.child)
            return ProjectOp(
                child.schema.project(query.attributes), child, tuple(query.attributes)
            )
        if isinstance(query, Product):
            left, right = self.plan(query.left), self.plan(query.right)
            return NestedLoopProduct(
                left.schema.concat(right.schema),
                left,
                right,
                self._estimate_op(left) * self._estimate_op(right),
            )
        if isinstance(query, Union):
            schema = query.schema(self.catalog)
            left, right = self.plan(query.left), self.plan(query.right)
            # Union merges positionally: realign operands whose columns a
            # nested join reordering permuted.
            if left.schema.attributes != schema.attributes:
                left = ReorderOp(schema, left, schema.attributes)
            if right.schema.attributes != schema.attributes:
                right = ReorderOp(schema, right, schema.attributes)
            return UnionOp(schema, left, right)
        if isinstance(query, Extend):
            child = self.plan(query.child)
            return ExtendOp(
                child.schema.extend(
                    query.target,
                    aggregation=child.schema.is_aggregation(query.source),
                ),
                child,
                query.target,
                query.source,
            )
        if isinstance(query, GroupAgg):
            return GroupAggOp(
                query.schema(self.catalog),
                self.plan(query.child),
                tuple(query.groupby),
                tuple(query.aggregations),
            )
        raise QueryValidationError(f"cannot plan query node {query!r}")

    # -- cardinality estimation ----------------------------------------------

    def _cardinality(self, name: str) -> int:
        return max(1, int(self.cardinalities.get(name, 1)))

    def _estimate(self, query: Query) -> int:
        """A coarse row-count estimate from base-table cardinalities."""
        if isinstance(query, BaseRelation):
            return self._cardinality(query.name)
        if isinstance(query, Select):
            # Constant equalities are selective; attribute comparisons are
            # not assumed to be.  A crude 1/3 per constant equality keeps
            # filtered relations preferred as join start points.
            estimate = self._estimate(query.child)
            for atom in query.predicate.atoms():
                if atom.is_constant_equality():
                    estimate = max(1, estimate // 3)
            return estimate
        if isinstance(query, (Project, Extend)):
            return self._estimate(query.child)
        if isinstance(query, GroupAgg):
            return self._estimate(query.child)
        if isinstance(query, Product):
            return self._estimate(query.left) * self._estimate(query.right)
        if isinstance(query, Union):
            return self._estimate(query.left) + self._estimate(query.right)
        return 1

    def _estimate_op(self, op: PhysicalOp) -> int:
        if isinstance(op, (Scan, HashJoin, NestedLoopProduct)):
            return op.estimate
        if isinstance(op, EmptyResult):
            return 0
        if isinstance(op, (Filter, ProjectOp, ReorderOp, ExtendOp, GroupAggOp)):
            return self._estimate_op(op.children[0])
        if isinstance(op, UnionOp):
            return self._estimate_op(op.left) + self._estimate_op(op.right)
        return 1

    # -- selections and joins -------------------------------------------------

    def _plan_select(self, query: Select) -> PhysicalOp:
        schema = query.schema(self.catalog)
        verdict = _constant_verdict(query.predicate)
        if verdict is False:
            return EmptyResult(schema)
        if self.extract_joins and isinstance(query.child, Product):
            return self._plan_join(query, schema)
        child = self.plan(query.child)
        if verdict is True:
            return child
        return Filter(child.schema, child, query.predicate)

    def _plan_join(self, query: Select, schema: Schema) -> PhysicalOp:
        """Extract equi-joins from ``σ(× ...)`` and order them greedily.

        Flattening descends through interposed ``σ(×)`` nodes, merging
        their predicates into one atom pool — selection pushdown (and
        users writing nested ``equijoin`` sugar) otherwise fragment the
        product tree into per-pair selections, which would hide the full
        join graph from the global greedy ordering.
        """
        leaves: list[Query] = []
        pool: list[Comparison] = []

        def flatten(node: Query):
            if isinstance(node, Product):
                flatten(node.left)
                flatten(node.right)
            elif isinstance(node, Select) and isinstance(node.child, Product):
                pool.extend(node.predicate.atoms())
                flatten(node.child)
            else:
                leaves.append(node)

        flatten(query.child)
        pool.extend(query.predicate.atoms())
        pool = list(dict.fromkeys(pool))  # structural dedup across levels
        leaf_schemas = [leaf.schema(self.catalog) for leaf in leaves]

        local: list[list] = [[] for _ in leaves]
        join_atoms: list[Comparison] = []
        residual: list[Comparison] = []
        for atom in pool:
            if isinstance(atom.left, Literal) and isinstance(atom.right, Literal):
                if not atom.op(atom.left.value, atom.right.value):
                    return EmptyResult(schema)
                continue
            homes = [
                i
                for i, leaf_schema in enumerate(leaf_schemas)
                if atom.attributes() <= set(leaf_schema.attributes)
            ]
            if homes:
                local[homes[0]].append(atom)
            elif self._hash_joinable(atom, leaf_schemas):
                join_atoms.append(atom)
            else:
                residual.append(atom)

        plans: list[PhysicalOp] = []
        estimates: list[int] = []
        for leaf, leaf_query, atoms in zip(
            (self.plan(leaf) for leaf in leaves), leaves, local
        ):
            estimate = self._estimate(leaf_query)
            if atoms:
                leaf = Filter(leaf.schema, leaf, conj(*atoms))
                for atom in atoms:
                    if atom.is_constant_equality():
                        estimate = max(1, estimate // 3)
            plans.append(leaf)
            estimates.append(estimate)

        joined = self._greedy_join_order(plans, estimates, join_atoms)
        if residual:
            joined = Filter(joined.schema, joined, conj(*residual))
        # Column order is restored once, at the plan root (see plan_query)
        # or below a Union — never per join.
        return joined

    def _hash_joinable(self, atom: Comparison, leaf_schemas) -> bool:
        """Equality between concrete (non-aggregation) attributes of two
        different leaves."""
        if atom.op.symbol != "=":
            return False
        if not (
            isinstance(atom.left, AttrRef) and isinstance(atom.right, AttrRef)
        ):
            return False
        for name in (atom.left.name, atom.right.name):
            for leaf_schema in leaf_schemas:
                if name in leaf_schema and leaf_schema.is_aggregation(name):
                    return False
        return True

    def _greedy_join_order(
        self,
        plans: list[PhysicalOp],
        estimates: list[int],
        join_atoms: list[Comparison],
    ) -> PhysicalOp:
        """Smallest-relation-first greedy ordering over the join graph.

        Starts from the smallest estimated input, repeatedly hash-joins
        with the smallest input connected by a pending equality (building
        the hash table on the incoming, typically smaller side), and falls
        back to a cartesian product with the smallest input when the graph
        is disconnected.  Equalities whose sides end up inside one
        intermediate (cycles in the join graph) become residual filters.
        """
        remaining = sorted(
            range(len(plans)), key=lambda i: (estimates[i], i)
        )
        pending = list(join_atoms)
        first = remaining.pop(0)
        current, current_estimate = plans[first], estimates[first]

        while remaining:
            current_attrs = set(current.schema.attributes)
            best, best_atoms = None, []
            for index in remaining:
                candidate_attrs = set(plans[index].schema.attributes)
                atoms = [
                    atom
                    for atom in pending
                    if len({atom.left.name, atom.right.name} & current_attrs) == 1
                    and len({atom.left.name, atom.right.name} & candidate_attrs) == 1
                ]
                if atoms and (best is None or estimates[index] < estimates[best]):
                    best, best_atoms = index, atoms
            if best is None:
                best = min(remaining, key=lambda i: estimates[i])
            remaining.remove(best)
            candidate, candidate_estimate = plans[best], estimates[best]
            schema = current.schema.concat(candidate.schema)
            if best_atoms:
                left_keys, right_keys = [], []
                for atom in best_atoms:
                    if atom.left.name in current.schema:
                        left_keys.append(atom.left.name)
                        right_keys.append(atom.right.name)
                    else:
                        left_keys.append(atom.right.name)
                        right_keys.append(atom.left.name)
                estimate = max(current_estimate, candidate_estimate)
                current = HashJoin(
                    schema,
                    current,
                    candidate,
                    tuple(left_keys),
                    tuple(right_keys),
                    estimate,
                )
                for atom in best_atoms:
                    pending.remove(atom)
            else:
                estimate = current_estimate * candidate_estimate
                current = NestedLoopProduct(schema, current, candidate, estimate)
            current_estimate = estimate
        if pending:
            # Both sides of these equalities ended up in one intermediate
            # (join-graph cycle): apply as an ordinary filter.
            current = Filter(current.schema, current, conj(*pending))
        return current


def _constant_verdict(predicate: Predicate):
    """True/False when every atom is literal-only, else None."""
    verdict = True
    for atom in predicate.atoms():
        if isinstance(atom.left, Literal) and isinstance(atom.right, Literal):
            if not atom.op(atom.left.value, atom.right.value):
                return False
        else:
            verdict = None
    return verdict


def explain_plan(plan: PhysicalOp) -> str:
    """Render the physical tree, one operator per line."""
    lines: list[str] = []

    def render(op: PhysicalOp, depth: int):
        lines.append("  " * depth + op.label())
        for child in op.children:
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)
