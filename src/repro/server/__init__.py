"""repro.server — the async multi-tenant query server.

A network front-end for the whole stack: one
:class:`~repro.server.app.QueryServer` serves one immutable
:class:`~repro.db.pvc_table.PVCDatabase` to many tenants over two wire
protocols (JSON-over-HTTP and a line-delimited-JSON TCP protocol with
anytime streaming), sharing a prepared-statement cache, a physical-plan
cache and the compiled-distribution cache across all of them — and
degrading gracefully under load by rewriting incoming requests to
budgeted anytime evaluation specs instead of queueing or failing.

Layout:

* :mod:`repro.server.app` — ``QueryServer``/``ServerConfig``: tenant
  sessions, shared caches, admission control, executor offloading;
* :mod:`repro.server.statements` — the normalised-SQL statement cache;
* :mod:`repro.server.codec` — the documented JSON wire codec
  (results, intervals, specs, stats);
* :mod:`repro.server.http` / :mod:`repro.server.tcp` — the protocols;
* :mod:`repro.server.client` — the asyncio ``ServerClient``;
* :mod:`repro.server.bootstrap` — deterministic demo databases;
* ``python -m repro.server`` — the CLI entry point.
"""

from repro.server.app import (
    ProtocolError,
    QueryServer,
    ServerConfig,
    ServerOverloadedError,
)
from repro.server.bootstrap import DEMO_QUERIES, demo_database, demo_session
from repro.server.client import (
    RetryPolicy,
    ServerClient,
    ServerError,
    ServerOverloaded,
)
from repro.server.codec import (
    RemoteResult,
    RemoteRow,
    SymbolicValue,
    fingerprint,
    result_from_json,
    result_to_json,
)
from repro.server.statements import (
    PreparedStatement,
    StatementCache,
    normalise_statement,
)

__all__ = [
    "QueryServer",
    "ServerConfig",
    "ProtocolError",
    "ServerOverloadedError",
    "ServerClient",
    "ServerError",
    "ServerOverloaded",
    "RetryPolicy",
    "RemoteResult",
    "RemoteRow",
    "SymbolicValue",
    "result_to_json",
    "result_from_json",
    "fingerprint",
    "StatementCache",
    "PreparedStatement",
    "normalise_statement",
    "demo_database",
    "demo_session",
    "DEMO_QUERIES",
]
