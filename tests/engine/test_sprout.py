"""Tests for the SPROUT-style compiled engine."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.pvc_table import PVCDatabase
from repro.engine.naive import NaiveEngine
from repro.engine.sprout import SproutEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    relation,
)
from repro.query.predicates import cmp_, eq


def simple_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "v"])
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.4)
    reg.bernoulli("z", 0.9)
    r.add((1, 10), Var("x"))
    r.add((1, 20), Var("y"))
    r.add((2, 30), Var("z"))
    return db


def assert_engines_agree(db, query, tol=1e-9):
    compiled = SproutEngine(db).run(query).tuple_probabilities()
    brute = NaiveEngine(db).tuple_probabilities(query)
    assert set(compiled) == set(brute), (compiled, brute)
    for key in brute:
        assert compiled[key] == pytest.approx(brute[key], abs=tol), key


class TestAgainstOracle:
    def test_base_relation(self):
        assert_engines_agree(simple_db(), relation("R"))

    def test_selection_projection(self):
        query = Project(Select(relation("R"), eq("a", 1)), ["v"])
        assert_engines_agree(simple_db(), query)

    def test_grouped_sum(self):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        assert_engines_agree(simple_db(), query)

    def test_grouped_min_with_having(self):
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        query = Project(Select(agg, cmp_("m", "<=", 15)), ["a"])
        assert_engines_agree(simple_db(), query)

    def test_global_count(self):
        query = GroupAgg(relation("R"), [], [AggSpec.of("n", "COUNT")])
        assert_engines_agree(simple_db(), query)

    def test_bag_semantics(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        r = db.create_table("R", ["a", "v"])
        reg.integer("m", {0: 0.3, 1: 0.4, 2: 0.3})
        reg.integer("n", {1: 0.6, 2: 0.4})
        r.add((1, 10), Var("m"))
        r.add((1, 20), Var("n"))
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        assert_engines_agree(db, query)


class TestResultRows:
    def test_probability_is_non_zero_annotation(self):
        result = SproutEngine(simple_db()).run(relation("R"))
        by_values = {row.values: row for row in result}
        assert by_values[(1, 10)].probability() == pytest.approx(0.5)

    def test_value_distribution_of_aggregate(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        result = SproutEngine(db).run(query)
        row = {r.values[0]: r for r in result}[1]
        dist = row.value_distribution("s")
        assert dist[30] == pytest.approx(0.2)
        assert dist[0] == pytest.approx(0.3)  # empty group (marginal view)

    def test_value_distribution_of_constant_attribute(self):
        result = SproutEngine(simple_db()).run(relation("R"))
        dist = result.rows[0].value_distribution("v")
        assert dist[10] == 1.0

    def test_module_attributes_listing(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        result = SproutEngine(db).run(query)
        assert set(result.rows[0].module_attributes()) == {"s"}

    def test_annotation_distribution_bag(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        r = db.create_table("R", ["a"])
        reg.integer("m", {0: 0.25, 3: 0.75})
        r.add((1,), Var("m"))
        result = SproutEngine(db).run(relation("R"))
        dist = result.rows[0].annotation_distribution()
        assert dist[3] == pytest.approx(0.75)
        assert result.rows[0].probability() == pytest.approx(0.75)

    def test_timings_present(self):
        result = SproutEngine(simple_db()).run(relation("R"))
        assert result.timings["rewrite_seconds"] >= 0
        assert result.timings["probability_seconds"] >= 0

    def test_skip_probability_computation(self):
        result = SproutEngine(simple_db()).run(
            relation("R"), compute_probabilities=False
        )
        assert result.timings["probability_seconds"] == 0.0

    def test_pretty_output(self):
        result = SproutEngine(simple_db()).run(relation("R"))
        assert "P=" in result.pretty()


class TestDeterministicBaseline:
    def test_all_tuples_present(self):
        db = simple_db()
        rel, elapsed = SproutEngine(db).deterministic_baseline(relation("R"))
        assert len(rel) == 3
        assert elapsed >= 0

    def test_aggregate_baseline(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        rel, _ = SproutEngine(db).deterministic_baseline(query)
        assert rel.support() == {(1, 30), (2, 30)}

    def test_compiler_options_forwarded(self):
        engine = SproutEngine(simple_db(), heuristic="lexicographic")
        result = engine.run(relation("R"))
        assert result.rows[0].probability() == pytest.approx(0.5)
