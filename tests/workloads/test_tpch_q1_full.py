"""Tests for the multi-aggregate TPC-H Q1 variant."""

import pytest

from repro.engine.sprout import SproutEngine
from repro.workloads.tpch import TPCHConfig, generate_tpch, tpch_q1_full


@pytest.fixture(scope="module")
def tiny_db():
    return generate_tpch(TPCHConfig(scale_factor=0.02, seed=11))


class TestQ1Full:
    def test_schema(self, tiny_db):
        catalog = {n: t.schema for n, t in tiny_db.tables.items()}
        schema = tpch_q1_full().schema(catalog)
        assert schema.attributes == (
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "count_order",
        )
        assert schema.is_aggregation("sum_qty")
        assert not schema.is_aggregation("l_returnflag")

    def test_runs_and_reports_distributions(self, tiny_db):
        result = SproutEngine(tiny_db).run(tpch_q1_full())
        assert len(result) >= 1
        row = result.rows[0]
        qty = row.value_distribution("sum_qty")
        count = row.value_distribution("count_order")
        assert qty.total() == pytest.approx(1.0)
        assert count.total() == pytest.approx(1.0)
        # sums dominate counts valuewise (quantities are ≥ 1)
        assert qty.expectation() >= count.expectation()

    def test_joint_aggregates_are_consistent(self, tiny_db):
        # In every world, sum_qty ≥ count_order (each counted line has
        # quantity ≥ 1); check via the joint distribution.
        from repro.core import Compiler, JointCompiler

        result = SproutEngine(tiny_db).run(tpch_q1_full())
        row = result.rows[0]
        modules = row.module_attributes()
        compiler = Compiler(tiny_db.registry, tiny_db.semiring)
        joint = JointCompiler(compiler).joint_distribution(
            [modules["sum_qty"], modules["count_order"]]
        )
        for (qty, count), probability in joint.items():
            if probability > 0:
                assert qty >= count
