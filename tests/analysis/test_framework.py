"""Framework-level behavior: suppressions, baseline, reporters, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding, analyze_paths, write_baseline
from repro.analysis.__main__ import main
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.report import render_json, render_text
from repro.analysis.source import SourceModule

CHECKERS = [LockDisciplineChecker()]

RACY = """\
import threading

class Counter:
    _shared_state_ = {"_lock": ("total",)}

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        self.total += 1
"""


def write_fixture(tmp_path, source=RACY, name="fixture.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


class TestFindings:
    def test_findings_sort_by_location(self):
        a = Finding("a.py", 3, "rule-x", "error", "m")
        b = Finding("a.py", 10, "rule-x", "error", "m")
        c = Finding("b.py", 1, "rule-x", "error", "m")
        assert sorted([c, b, a]) == [a, b, c]

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("a.py", 1, "rule-x", "fatal", "m")

    def test_render_and_json(self):
        finding = Finding("a.py", 3, "rule-x", "warning", "watch out")
        assert finding.render() == "a.py:3: warning[rule-x] watch out"
        assert finding.to_json()["rule"] == "rule-x"


class TestSuppressions:
    def test_suppression_on_preceding_line(self, tmp_path):
        source = RACY.replace(
            "    def bump(self):\n",
            "    def bump(self):\n"
            "        # repro: allow(race-unguarded-write)\n",
        )
        path = write_fixture(tmp_path, source)
        result = analyze_paths([str(path)], checkers=CHECKERS)
        assert result.clean
        assert len(result.suppressed) == 1

    def test_unused_suppression_is_reported(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "# repro: allow(race-unguarded-write)\nx = 1\n",
        )
        result = analyze_paths([str(path)], checkers=CHECKERS)
        assert [f.rule_id for f in result.findings] == ["suppression-unused"]

    def test_suppression_inside_string_is_ignored(self, tmp_path):
        # The marker inside a string literal must not silence anything.
        source = RACY.replace(
            "        self.total += 1\n",
            '        note = "# repro: allow(race-unguarded-write)"\n'
            "        self.total += 1\n",
        )
        path = write_fixture(tmp_path, source)
        result = analyze_paths([str(path)], checkers=CHECKERS)
        assert [f.rule_id for f in result.findings] == ["race-unguarded-write"]

    def test_partial_rules_run_skips_suppression_lint(self, tmp_path):
        path = write_fixture(
            tmp_path,
            "# repro: allow(race-unguarded-write)\nx = 1\n",
        )
        result = analyze_paths(
            [str(path)], checkers=CHECKERS, rules=["race-await-under-lock"]
        )
        assert result.clean


class TestBaseline:
    def test_multiset_matching(self, tmp_path):
        # Two identical violations, one baseline entry: one absorbed,
        # one still reported — the baseline cannot hide a new duplicate.
        source = RACY + "\n    def bump_again(self):\n        self.total += 1\n"
        path = write_fixture(tmp_path, source)
        flagged = analyze_paths([str(path)], checkers=CHECKERS)
        assert len(flagged.findings) == 2
        entry = flagged.findings[0]
        baseline = Baseline(
            [
                {
                    "file": entry.file,
                    "rule": entry.rule_id,
                    "message": entry.message,
                    "why": "fixture",
                }
            ]
        )
        result = analyze_paths([str(path)], checkers=CHECKERS, baseline=baseline)
        assert len(result.baselined) == 1
        assert len(result.findings) == 1

    def test_stale_entry_is_reported(self, tmp_path):
        path = write_fixture(tmp_path, "x = 1\n")
        baseline = Baseline(
            [
                {
                    "file": "gone.py",
                    "rule": "race-unguarded-write",
                    "message": "no longer emitted",
                    "why": "fixture",
                }
            ]
        )
        result = analyze_paths([str(path)], checkers=CHECKERS, baseline=baseline)
        assert [f.rule_id for f in result.findings] == ["baseline-stale"]

    def test_write_and_load_round_trip(self, tmp_path):
        findings = [Finding("a.py", 3, "rule-x", "error", "msg")]
        target = tmp_path / "baseline.json"
        write_baseline(findings, target, why="because")
        payload = json.loads(target.read_text())
        assert payload["findings"][0]["why"] == "because"
        loaded = Baseline.load(target)
        assert loaded.absorbs(findings[0])
        assert loaded.stale_entries() == []

    def test_load_rejects_malformed_entries(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"findings": [{"file": "a.py"}]}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestParseErrors:
    def test_broken_file_becomes_parse_error_finding(self, tmp_path):
        good = write_fixture(tmp_path, "x = 1\n", name="good.py")
        bad = write_fixture(tmp_path, "def broken(:\n", name="bad.py")
        result = analyze_paths([str(tmp_path)], checkers=CHECKERS)
        assert [f.rule_id for f in result.findings] == ["parse-error"]
        assert result.findings[0].file == str(bad)
        assert result.files_scanned == 1  # the good file still parsed
        assert good.exists()


class TestReporters:
    def test_text_report_lists_findings_and_summary(self, tmp_path):
        path = write_fixture(tmp_path)
        result = analyze_paths([str(path)], checkers=CHECKERS)
        text = render_text(result)
        assert "race-unguarded-write" in text
        assert "1 finding(s)" in text
        assert result.exit_code() == 1

    def test_json_report_is_machine_readable(self, tmp_path):
        path = write_fixture(tmp_path)
        result = analyze_paths([str(path)], checkers=CHECKERS)
        payload = json.loads(render_json(result))
        assert payload["clean"] is False
        assert payload["counts"] == {"race-unguarded-write": 1}
        assert payload["findings"][0]["rule"] == "race-unguarded-write"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_fixture(tmp_path, "x = 1\n")
        code = main([str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_fixture(tmp_path)
        code = main([str(tmp_path), "--no-baseline"])
        assert code == 1
        assert "race-unguarded-write" in capsys.readouterr().out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        write_fixture(tmp_path)
        missing = tmp_path / "nope.json"
        code = main([str(tmp_path), "--baseline", str(missing)])
        assert code == 2

    def test_write_baseline_then_gate_is_clean(self, tmp_path, capsys):
        write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.exists()
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_json_output_artifact(self, tmp_path, capsys):
        write_fixture(tmp_path)
        artifact = tmp_path / "findings.json"
        code = main(
            [str(tmp_path), "--no-baseline", "--json-output", str(artifact)]
        )
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert payload["counts"] == {"race-unguarded-write": 1}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "race-unguarded-write",
            "fork-unpicklable-worker",
            "kernel-world-read",
            "stats-undeclared-key",
            "suppression-unused",
            "baseline-stale",
        ):
            assert rule in out

    def test_rules_filter(self, tmp_path, capsys):
        write_fixture(tmp_path)
        code = main(
            [str(tmp_path), "--no-baseline", "--rules", "race-await-under-lock"]
        )
        assert code == 0


class TestSourceModule:
    def test_parse_collects_suppressions(self):
        module = SourceModule.parse(
            "inline.py",
            text="x = 1  # repro: allow(rule-a, rule-b)\n",
        )
        assert module.suppressions[0].rules == ("rule-a", "rule-b")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
