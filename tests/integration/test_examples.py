"""Smoke tests: every shipped example runs end to end.

Keeps the `examples/` directory honest — an API change that breaks an
example breaks the build.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    script = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Distribution of SUM(price)" in out
        assert "Decomposition tree" in out

    def test_retail_pricing(self, capsys):
        out = run_example("retail_pricing.py", [], capsys)
        assert "Figure 1d" in out
        assert "Gap" in out and "M&S" in out
        assert "Shannon expansions" in out

    def test_sensor_network(self, capsys):
        out = run_example("sensor_network.py", [], capsys)
        assert "P(max temperature" in out
        assert "possible worlds" in out
        # the three methods agree on the alert probability line
        lines = [l for l in out.splitlines() if "compiled d-tree" in l]
        assert lines

    def test_tpch_analytics(self, capsys):
        out = run_example("tpch_analytics.py", ["0.02"], capsys)
        assert "Q1 =" in out
        assert "Q_hie" in out
        assert "P(supplier offers the minimum cost)" in out

    def test_anytime_topk(self, capsys):
        out = run_example("anytime_topk.py", [], capsys)
        assert "engine=auto -> approx" in out
        assert "mode=sample" in out
        assert "decided=True" in out
        assert "Top-2 incidents:" in out

    def test_risk_analysis(self, capsys):
        out = run_example("risk_analysis.py", [], capsys)
        assert "Total-penalty distribution" in out
        assert "exact" in out
        # the refined bounds line reports a closed interval
        assert "refined" in out
