"""Shared infrastructure for the experiment benchmarks.

Scaling note
------------
The paper's experiments ran compiled C code inside PostgreSQL on a Xeon
X5650; this reproduction runs pure Python.  All parameter sets are
therefore scaled down (fewer variables and terms, smaller value ranges)
relative to Section 7 — by roughly one order of magnitude — while keeping
every *ratio* the paper's qualitative claims depend on (e.g. the
``c``-sweep of Experiment A still crosses ``maxv``; Experiment C still
crosses the easy/hard/easy phase transition).  EXPERIMENTS.md records the
mapping and compares the measured shapes against the published figures.

Each ``bench_exp_*.py`` module doubles as a script: running it directly
prints the full sweep as the rows/series of the corresponding figure.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.workloads.random_expr import ExprParams, generate_condition

__all__ = [
    "evaluate_once",
    "average_time",
    "print_series",
    "run_point",
    "smoke_mode",
]


def smoke_mode(argv: list[str] | None = None) -> bool:
    """True when ``--smoke`` was passed on the command line.

    CI runs each experiment script with ``--smoke`` to exercise the
    measurement path on a trimmed sweep (one point per series, one run)
    without paying for the full figure.
    """
    args = sys.argv[1:] if argv is None else argv
    return "--smoke" in args


def evaluate_once(params: ExprParams, seed: int = 0, **compiler_options):
    """Generate one Eq.-11 condition, compile it, compute its distribution.

    Returns ``(elapsed_seconds, compiler)`` so callers can inspect
    compilation statistics.
    """
    expr, registry = generate_condition(params, seed=seed)
    start = time.perf_counter()
    compiler = Compiler(registry, BOOLEAN, **compiler_options)
    compiler.distribution(expr)
    return time.perf_counter() - start, compiler


def average_time(params: ExprParams, runs: int, seed: int = 0, **options) -> float:
    """Mean evaluation time over ``runs`` random expressions.

    Mirrors the paper's protocol of averaging #runs repetitions; with
    ``runs >= 3`` the slowest and fastest run are discarded, as in
    Section 7.
    """
    times = [
        evaluate_once(params, seed=seed * 1013 + i, **options)[0]
        for i in range(runs)
    ]
    if runs >= 3:
        times = sorted(times)[1:-1]
    return statistics.mean(times)


def run_point(params: ExprParams, runs: int = 2, seed: int = 0, **options):
    """One figure point: ``(mean_seconds, stdev_seconds)``."""
    times = [
        evaluate_once(params, seed=seed * 1013 + i, **options)[0]
        for i in range(runs)
    ]
    mean = statistics.mean(times)
    stdev = statistics.stdev(times) if len(times) > 1 else 0.0
    return mean, stdev


def print_series(title: str, header: list[str], rows: list[tuple]):
    """Print a figure's data series as an aligned table."""
    print(f"\n== {title} ==")
    widths = [
        max(len(header[i]), *(len(f"{row[i]}") for row in rows))
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(f"{cell}".ljust(widths[i]) for i, cell in enumerate(row)))
