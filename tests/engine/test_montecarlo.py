"""Tests for the Monte-Carlo sampling baseline."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import AggSpec, GroupAgg, Project, Select, relation
from repro.query.predicates import cmp_


def simple_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "v"])
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.3)
    r.add((1, 10), Var("x"))
    r.add((1, 20), Var("y"))
    return db


class TestEstimation:
    def test_seeded_runs_are_reproducible(self):
        db = simple_db()
        e1 = MonteCarloEngine(db, seed=7).tuple_probabilities(relation("R"), 200)
        e2 = MonteCarloEngine(db, seed=7).tuple_probabilities(relation("R"), 200)
        assert e1 == e2

    def test_estimates_converge_to_exact(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        exact = NaiveEngine(db).tuple_probabilities(query)
        estimate = MonteCarloEngine(db, seed=3).tuple_probabilities(query, 5000)
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.03)

    def test_having_query(self):
        db = simple_db()
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MAX", "v")])
        query = Project(Select(agg, cmp_("m", "<=", 15)), ["a"])
        exact = NaiveEngine(db).tuple_probabilities(query)
        p = MonteCarloEngine(db, seed=11).estimate_probability(query, (1,), 5000)
        assert p == pytest.approx(exact[(1,)], abs=0.03)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloEngine(simple_db()).tuple_probabilities(relation("R"), 0)

    def test_sample_valuation_covers_all_variables(self):
        db = simple_db()
        valuation = MonteCarloEngine(db, seed=1).sample_valuation()
        assert "x" in valuation and "y" in valuation


def two_table_db():
    """A database with an extra table the queries never touch."""
    db = simple_db()
    s = db.create_table("S", ["b"])
    for i in range(30):
        db.registry.bernoulli(f"s{i}", 0.5)
        s.add((i,), Var(f"s{i}"))
    return db


class TestBatchedSampler:
    def test_batched_and_per_world_paths_agree_exactly(self):
        """The vectorized batch evaluator is a pure optimisation: on the
        same sampled columns it must produce identical counts."""
        db = two_table_db()
        engine = MonteCarloEngine(db, seed=13)
        queries = [
            relation("R"),
            # global aggregates: $∅ must yield one tuple in every world,
            # with neutral values in worlds where no row is present
            GroupAgg(relation("R"), [], [AggSpec.of("t", "SUM", "v")]),
            GroupAgg(relation("R"), [], [AggSpec.of("m", "MIN", "v")]),
            GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")]),
            GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v"),
                                            AggSpec.of("n", "COUNT", None)]),
            Project(
                Select(
                    GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MAX", "v")]),
                    cmp_("m", "<=", 15),
                ),
                ["a"],
            ),
        ]
        for query in queries:
            drawn = engine._sample_index_columns(
                sorted(db.tables["R"].variables), 300
            )
            batched = engine._batched_counts(query, drawn, 300)
            generic = engine._per_world_counts(query, ["R"], drawn, 300)
            assert batched == generic

    def test_seeded_determinism_of_batched_runs(self):
        db = two_table_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        first = MonteCarloEngine(db, seed=9).tuple_probabilities(query, 500)
        second = MonteCarloEngine(db, seed=9).tuple_probabilities(query, 500)
        assert first == second
        third = MonteCarloEngine(db, seed=10).tuple_probabilities(query, 500)
        assert first != third  # astronomically unlikely to collide

    def test_only_referenced_relations_are_sampled(self):
        """Sampling is restricted to the query's relations, so the
        unrelated table's variables must not influence the estimate."""
        db = two_table_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        with_extra = MonteCarloEngine(db, seed=4).tuple_probabilities(query, 800)
        without_extra = MonteCarloEngine(simple_db(), seed=4).tuple_probabilities(
            query, 800
        )
        assert with_extra == without_extra

    def test_batched_fast_path_engages_and_agrees_with_compiled(self):
        db = two_table_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        engine = MonteCarloEngine(db, seed=2)
        estimate = engine.tuple_probabilities(query, 8000)
        from repro.prob import kernels

        if kernels.numpy_enabled():
            assert engine.last_run_info["batched"] is True
        # The oracle runs on the two-variable database: the extra table's
        # 30 variables are irrelevant to the query but would make naive
        # world enumeration intractable.
        exact = NaiveEngine(simple_db()).tuple_probabilities(query)
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.03)

    def test_complex_annotations_fall_back(self):
        """Rows with non-atomic annotations are outside the fast path's
        simple-TI assumption; the generic path must handle them."""
        db = simple_db()
        r = db.tables["R"]
        r.add((2, 30), Var("x") * Var("y"))  # conjunctive annotation
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        engine = MonteCarloEngine(db, seed=3)
        estimate = engine.tuple_probabilities(query, 5000)
        assert engine.last_run_info["batched"] is False
        exact = NaiveEngine(db).tuple_probabilities(query)
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.03)

    def test_float_sum_takes_generic_path(self):
        """Summation order differs between the matrix product and the
        per-world fold, so float-valued SUM columns must not be batched —
        otherwise answer keys could differ in the last ulp from the exact
        engines'."""
        db = PVCDatabase(registry=VariableRegistry(), semiring=BOOLEAN)
        r = db.create_table("R", ["a", "v"])
        for i in range(6):
            db.registry.bernoulli(f"f{i}", 0.5)
            r.add((0, 0.1 * (i + 1)), Var(f"f{i}"))
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        engine = MonteCarloEngine(db, seed=1)
        estimate = engine.tuple_probabilities(query, 4000)
        assert engine.last_run_info["batched"] is False
        exact = NaiveEngine(db).tuple_probabilities(query)
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.04)

    def test_huge_int_min_takes_generic_path(self):
        """Selection monoids cast values to float64 in the batched path;
        ints beyond 2**53 would round into fabricated answer keys."""
        db = PVCDatabase(registry=VariableRegistry(), semiring=BOOLEAN)
        r = db.create_table("R", ["a", "v"])
        db.registry.bernoulli("hx", 0.5)
        db.registry.bernoulli("hy", 0.5)
        r.add((1, 2**53 + 1), Var("hx"))
        r.add((1, 2**53 + 2), Var("hy"))
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        engine = MonteCarloEngine(db, seed=1)
        estimate = engine.tuple_probabilities(query, 500)
        assert engine.last_run_info["batched"] is False
        assert all(v in (2**53 + 1, 2**53 + 2) for (_, v) in estimate)

    def test_repeated_worlds_are_memoised(self):
        db = simple_db()  # two variables: only four distinct worlds
        engine = MonteCarloEngine(db, seed=8)
        engine._per_world_counts(
            relation("R"),
            ["R"],
            engine._sample_index_columns(["x", "y"], 1000),
            1000,
        )
        assert engine.last_run_info["distinct_worlds"] <= 4

    def test_capped_sum_saturates_in_batched_path(self):
        """CappedSumMonoid is a SumMonoid subclass: the batched matrix
        product must saturate at the cap like the per-world fold does."""
        from repro.algebra.monoid import CappedSumMonoid

        db = two_table_db()
        spec = AggSpec.of("s", CappedSumMonoid(12), "v")
        query = GroupAgg(relation("R"), ["a"], [spec])
        engine = MonteCarloEngine(db, seed=6)
        drawn = engine._sample_index_columns(
            sorted(db.tables["R"].variables), 400
        )
        batched = engine._batched_counts(query, drawn, 400)
        generic = engine._per_world_counts(query, ["R"], drawn, 400)
        assert batched == generic
        assert all(values[-1] <= 12 for values in batched)


class TestShardedSampler:
    """The deterministic sharded scheme behind the ``workers`` knob."""

    def test_counts_identical_across_worker_counts(self):
        db = two_table_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        estimates = [
            MonteCarloEngine(db, seed=7).tuple_probabilities(
                query, 2000, workers=workers, shard_size=256
            )
            for workers in (1, 2, 4, "auto")
        ]
        assert all(estimate == estimates[0] for estimate in estimates)

    def test_per_world_fallback_shards_identically(self):
        """Complex annotations force the generic per-world path; shard
        merging must still be worker-count independent there."""
        db = simple_db()
        db.tables["R"].add((2, 30), Var("x") * Var("y"))
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        first = MonteCarloEngine(db, seed=3).tuple_probabilities(
            query, 1200, workers=1, shard_size=128
        )
        second = MonteCarloEngine(db, seed=3).tuple_probabilities(
            query, 1200, workers=3, shard_size=128
        )
        assert first == second

    def test_sharded_runs_are_seed_reproducible(self):
        db = two_table_db()
        query = relation("R")
        first = MonteCarloEngine(db, seed=11).tuple_probabilities(
            query, 1000, workers=2
        )
        second = MonteCarloEngine(db, seed=11).tuple_probabilities(
            query, 1000, workers=2
        )
        assert first == second
        third = MonteCarloEngine(db, seed=12).tuple_probabilities(
            query, 1000, workers=2
        )
        assert first != third

    def test_sharded_estimates_converge_to_exact(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        exact = NaiveEngine(db).tuple_probabilities(query)
        estimate = MonteCarloEngine(db, seed=3).tuple_probabilities(
            query, 5000, workers=2
        )
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.03)

    def test_workers_none_keeps_the_legacy_stream(self):
        """The default stays byte-for-byte the pre-sharding sampler, so
        existing seeded workflows are unaffected."""
        db = simple_db()
        legacy = MonteCarloEngine(db, seed=5).tuple_probabilities(
            relation("R"), 400
        )
        explicit = MonteCarloEngine(db, seed=5).tuple_probabilities(
            relation("R"), 400, workers=None
        )
        assert legacy == explicit

    def test_run_info_reports_sharding(self):
        db = two_table_db()
        engine = MonteCarloEngine(db, seed=2)
        engine.tuple_probabilities(relation("R"), 1024, workers=2, shard_size=256)
        info = engine.last_run_info
        assert info["shards"] == 4
        assert info["workers"] == 2
        assert "parallel_fallback" not in info

    def test_sequential_stopping_trajectory_identical_across_workers(self):
        db = simple_db()
        trajectories = []
        for workers in (1, 2):
            engine = MonteCarloEngine(db, seed=19)
            trajectory = [
                (
                    {key: (i.low, i.high) for key, i in intervals.items()},
                    info["samples"],
                )
                for intervals, info in engine.estimate_intervals_iter(
                    relation("R"),
                    epsilon=0.05,
                    initial_batch=128,
                    shard_size=64,
                    workers=workers,
                )
            ]
            trajectories.append(trajectory)
        assert trajectories[0] == trajectories[1]

    def test_invalid_workers_rejected(self):
        from repro.errors import QueryValidationError

        with pytest.raises(QueryValidationError, match="workers"):
            MonteCarloEngine(simple_db()).tuple_probabilities(
                relation("R"), 100, workers=0
            )


class TestSequentialStopping:
    """The (ε, δ) sequential estimator behind spec mode 'sample'."""

    def test_intervals_cover_and_converge(self):
        db = simple_db()
        query = relation("R")
        exact = NaiveEngine(db).tuple_probabilities(query)
        intervals, info = MonteCarloEngine(db, seed=5).estimate_intervals(
            query, epsilon=0.08, delta=0.05
        )
        assert info["converged"]
        assert set(intervals) == set(exact)
        for key, interval in intervals.items():
            assert interval.width <= 0.08 + 1e-9
            assert interval.contains(exact[key])

    def test_budget_cap_stops_early(self):
        db = simple_db()
        intervals, info = MonteCarloEngine(db, seed=5).estimate_intervals(
            relation("R"), epsilon=1e-6, delta=0.05, max_samples=300
        )
        assert info["samples"] <= 300
        assert not info["converged"]
        assert all(i.width > 1e-6 for i in intervals.values())

    def test_rounds_double_and_snapshots_report_sample_counts(self):
        db = simple_db()
        engine = MonteCarloEngine(db, seed=9)
        samples_seen = [
            info["samples"]
            for _, info in engine.estimate_intervals_iter(
                relation("R"), epsilon=0.05, delta=0.1, initial_batch=64
            )
        ]
        assert samples_seen == sorted(samples_seen)
        assert samples_seen[0] == 64
        if len(samples_seen) > 1:
            assert samples_seen[1] == 128  # doubling schedule

    def test_seeded_sequential_runs_are_reproducible(self):
        db = simple_db()
        first = MonteCarloEngine(db, seed=21).estimate_intervals(
            relation("R"), epsilon=0.1, delta=0.1
        )
        second = MonteCarloEngine(db, seed=21).estimate_intervals(
            relation("R"), epsilon=0.1, delta=0.1
        )
        assert first[0] == second[0]
        assert first[1]["samples"] == second[1]["samples"]

    def test_invalid_parameters_rejected(self):
        engine = MonteCarloEngine(simple_db())
        with pytest.raises(ValueError):
            engine.estimate_intervals(relation("R"), epsilon=0.0)
        with pytest.raises(ValueError):
            engine.estimate_intervals(relation("R"), delta=1.5)
