"""Tractable query classes ``Q_ind`` and ``Q_hie`` (Section 6, Theorem 3).

The paper characterises a class of aggregate queries with polynomial-time
data complexity on tuple-independent databases.  The building blocks are

* **hierarchical** non-repeating select-project-join queries: for each two
  attribute classes ``A*``, ``B*`` (transitive closures of join
  equalities) that are neither projected out in the head nor equated to a
  constant, their relation-occurrence sets ``at(A*)``, ``at(B*)`` are
  disjoint or one contains the other;
* **root attributes**: classes occurring in *every* joined relation.

``Q_ind`` (Definition 8) contains queries whose result tuples are pairwise
independent; ``Q_hie`` (Definition 9) additionally allows one level of
grouping/aggregation over a hierarchical join of ``Q_ind`` queries.

The analysis implemented here is a *sufficient* syntactic check: it
classifies a query as ``QIND`` or ``QHIE`` when it matches the shapes of
Definitions 8/9, and as ``UNKNOWN`` otherwise (the query may still happen
to be tractable).  It mirrors how a query optimiser would dispatch between
the polynomial-time plan and generic compilation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.algebra.semimodule import ModuleExpr
from repro.algebra.expressions import Var
from repro.db.pvc_table import PVCDatabase
from repro.db.schema import Schema
from repro.query.ast import (
    BaseRelation,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
)
from repro.query.predicates import AttrRef, Comparison, Literal

__all__ = [
    "QueryClass",
    "Classification",
    "classify_query",
    "is_hierarchical",
    "root_attribute_classes",
    "attribute_classes",
    "tuple_independent_relations",
    "SPJBlock",
    "flatten_spj",
]


class QueryClass(enum.Enum):
    """Outcome of the static tractability analysis."""

    QIND = "Q_ind"
    QHIE = "Q_hie"
    UNKNOWN = "unknown"


@dataclass
class Classification:
    """Classification result with a human-readable justification trail."""

    query_class: QueryClass
    reasons: list[str] = field(default_factory=list)

    @property
    def tractable(self) -> bool:
        """True when Theorem 3 guarantees PTIME data complexity."""
        return self.query_class in (QueryClass.QIND, QueryClass.QHIE)

    def __repr__(self):
        return f"Classification({self.query_class.value}: {'; '.join(self.reasons)})"


@dataclass
class SPJBlock:
    """A query viewed as ``π_{A̅} σ_φ (Q₁ × ... × Qₙ)``."""

    head: tuple | None  # projection attributes; None = no outer projection
    atoms: list  # Comparison atoms of the selection
    leaves: list  # the Qᵢ


def flatten_spj(query: Query) -> SPJBlock:
    """View a query as a select-project-join block over opaque leaves.

    Only the *outermost* projection becomes the head; nested projections
    stay inside their leaf sub-queries (they change the leaf's schema, not
    the block structure).
    """
    head = None
    if isinstance(query, Project):
        head = query.attributes
        query = query.child
    atoms: list = []
    leaves: list = []

    def descend(node: Query):
        if isinstance(node, Select):
            atoms.extend(node.predicate.atoms())
            descend(node.child)
        elif isinstance(node, Product):
            descend(node.left)
            descend(node.right)
        else:
            leaves.append(node)

    descend(query)
    return SPJBlock(head, atoms, leaves)


def attribute_classes(
    block: SPJBlock, catalog: Mapping[str, Schema]
) -> tuple[dict[str, frozenset], set[str]]:
    """Equivalence classes ``A*`` of attributes under join equalities.

    Returns ``(class_of, constant_classes)`` where ``class_of`` maps each
    attribute to its class (a frozenset of attribute names) and
    ``constant_classes`` collects attributes transitively equated with a
    constant.
    """
    parent: dict[str, str] = {}

    def find(a: str) -> str:
        root = a
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(a, a) != a:
            parent[a], a = root, parent[a]
        return root

    def union(a: str, b: str):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    all_attrs: set[str] = set()
    for leaf in block.leaves:
        all_attrs |= set(leaf.schema(catalog).attributes)
    for attribute in all_attrs:
        parent.setdefault(attribute, attribute)

    constant_roots: set[str] = set()
    for atom in block.atoms:
        if not isinstance(atom, Comparison) or atom.op.symbol != "=":
            continue
        left, right = atom.left, atom.right
        if isinstance(left, AttrRef) and isinstance(right, AttrRef):
            if left.name in parent and right.name in parent:
                union(left.name, right.name)
        elif isinstance(left, AttrRef) and isinstance(right, Literal):
            constant_roots.add(left.name)
        elif isinstance(right, AttrRef) and isinstance(left, Literal):
            constant_roots.add(right.name)

    groups: dict[str, set[str]] = {}
    for attribute in all_attrs:
        groups.setdefault(find(attribute), set()).add(attribute)
    class_of = {
        attribute: frozenset(groups[find(attribute)]) for attribute in all_attrs
    }
    constants = {
        attribute
        for attribute in all_attrs
        if any(find(c) == find(attribute) for c in constant_roots)
    }
    return class_of, constants


def _at_sets(
    block: SPJBlock, catalog: Mapping[str, Schema], class_of
) -> dict[frozenset, frozenset]:
    """``at(A*)``: the leaf indices whose schema meets the class."""
    at: dict[frozenset, set[int]] = {}
    for index, leaf in enumerate(block.leaves):
        attrs = set(leaf.schema(catalog).attributes)
        for attribute in attrs:
            at.setdefault(class_of[attribute], set()).add(index)
    return {cls: frozenset(indices) for cls, indices in at.items()}


def _effective_head(block: SPJBlock, catalog) -> set:
    """The projected attributes; absence of a projection keeps them all."""
    if block.head is not None:
        return set(block.head)
    head: set = set()
    for leaf in block.leaves:
        head |= set(leaf.schema(catalog).attributes)
    return head


def is_hierarchical(query: Query, catalog: Mapping[str, Schema]) -> bool:
    """The hierarchical property of Section 6 for non-repeating queries."""
    if not query.is_non_repeating():
        return False
    block = flatten_spj(query)
    class_of, constants = attribute_classes(block, catalog)
    at = _at_sets(block, catalog, class_of)
    head = _effective_head(block, catalog)
    relevant = [
        cls
        for cls in set(class_of.values())
        if not (cls & head) and not (cls & constants)
    ]
    for i, cls_a in enumerate(relevant):
        for cls_b in relevant[i + 1:]:
            sa, sb = at[cls_a], at[cls_b]
            if not (sa.isdisjoint(sb) or sa <= sb or sb <= sa):
                return False
    return True


def root_attribute_classes(
    query: Query, catalog: Mapping[str, Schema]
) -> set[frozenset]:
    """Classes occurring in every joined relation (root attributes)."""
    block = flatten_spj(query)
    class_of, _ = attribute_classes(block, catalog)
    at = _at_sets(block, catalog, class_of)
    leaf_count = len(block.leaves)
    return {cls for cls, indices in at.items() if len(indices) == leaf_count}


def tuple_independent_relations(db: PVCDatabase) -> set[str]:
    """Base tables that are tuple-independent.

    A table qualifies when every tuple is annotated with its own variable
    (or is certain — a variable-free annotation is a deterministic
    multiplicity, trivially independent of everything), no variable is
    reused (within or across tables), and no tuple value is a semimodule
    expression.
    """
    usage: dict[str, int] = {}
    candidates: set[str] = set()
    for name, table in db.tables.items():
        independent = True
        for row in table:
            if not isinstance(row.annotation, Var) and row.annotation.variables:
                independent = False
            if any(isinstance(v, ModuleExpr) for v in row.values):
                independent = False
            for variable in row.annotation.variables:
                usage[variable] = usage.get(variable, 0) + 1
        if independent:
            candidates.add(name)
    return {
        name
        for name in candidates
        if all(
            usage[row.annotation.name] == 1
            for row in db.tables[name]
            if isinstance(row.annotation, Var)
        )
    }


def classify_query(
    query: Query,
    catalog: Mapping[str, Schema],
    tuple_independent: set[str],
) -> Classification:
    """Classify a query into ``Q_ind`` ⊂ ``Q_hie`` or ``UNKNOWN``.

    ``tuple_independent`` names the base relations known to be
    tuple-independent (see :func:`tuple_independent_relations`).
    """
    if not query.is_non_repeating():
        return Classification(
            QueryClass.UNKNOWN, ["query repeats a base relation"]
        )
    result = _classify_qind(query, catalog, tuple_independent)
    if result is not None:
        return result
    result = _classify_qhie(query, catalog, tuple_independent)
    if result is not None:
        return result
    return Classification(
        QueryClass.UNKNOWN,
        ["query matches neither Definition 8 nor Definition 9"],
    )


def _is_proper_block(block: SPJBlock, query: Query) -> bool:
    """True when flattening actually decomposed the query.

    Prevents the SPJ rules from recursing on a query that is its own
    single leaf (e.g. a bare GroupAgg or Union).
    """
    return not (len(block.leaves) == 1 and block.leaves[0] is query)


def _is_qind(query, catalog, ti) -> bool:
    result = _classify_qind(query, catalog, ti)
    return result is not None


def _classify_qind(
    query: Query, catalog, ti: set[str]
) -> Classification | None:
    # Definition 8.1: a tuple-independent base relation.
    if isinstance(query, BaseRelation):
        if query.name in ti:
            return Classification(
                QueryClass.QIND,
                [f"{query.name} is a tuple-independent relation (Def. 8.1)"],
            )
        return None

    # Definition 8.2(a): π_A σ_φ($_{A̅;γ}(Q1)) with γ not in A.
    inner, head, _ = _peel_project_select(query)
    if isinstance(inner, GroupAgg) and _is_qind(inner.child, catalog, ti):
        agg_outputs = {spec.output for spec in inner.aggregations}
        # The projection must drop the aggregation attribute (γ ∉ A̅); a
        # query exposing γ belongs to Definition 9.1, not 8.2(a).
        if head is not None and not (set(head) & agg_outputs):
            return Classification(
                QueryClass.QIND,
                [
                    "π σ over a grouped aggregation of a Q_ind query, "
                    "projecting away the aggregation attribute (Def. 8.2a)"
                ],
            )

    # Definition 8.2(c): π_∅ σ_{γ1 θ γ2}($_∅(Q1) × $_∅(Q2)).
    if head == ():
        block = flatten_spj(query)
        if (
            len(block.leaves) == 2
            and all(
                isinstance(leaf, GroupAgg)
                and not leaf.groupby
                and _is_qind(leaf.child, catalog, ti)
                for leaf in block.leaves
            )
        ):
            return Classification(
                QueryClass.QIND,
                [
                    "Boolean comparison of two independent ungrouped "
                    "aggregates (Def. 8.2c)"
                ],
            )

    # Definition 8.2(b): hierarchical π_A σ_φ(Q1 × ... × Qn) over Q_ind
    # queries with every head attribute a root attribute.
    block = flatten_spj(query)
    if _is_proper_block(block, query) and all(
        _is_qind(leaf, catalog, ti) for leaf in block.leaves
    ):
        if is_hierarchical(query, catalog):
            roots = root_attribute_classes(query, catalog)
            root_attrs = set().union(*roots) if roots else set()
            head_attrs = _effective_head(block, catalog)
            if head_attrs <= root_attrs:
                return Classification(
                    QueryClass.QIND,
                    [
                        "hierarchical join of Q_ind queries projecting "
                        "onto root attributes (Def. 8.2b)"
                    ],
                )
    return None


def _classify_qhie(
    query: Query, catalog, ti: set[str]
) -> Classification | None:
    # Definition 9.2: non-repeating hierarchical SPJ query over Q_ind.
    block = flatten_spj(query)
    if (
        _is_proper_block(block, query)
        and not any(isinstance(leaf, GroupAgg) for leaf in block.leaves)
        and all(_is_qind(leaf, catalog, ti) for leaf in block.leaves)
        and is_hierarchical(query, catalog)
    ):
        return Classification(
            QueryClass.QHIE,
            ["non-repeating hierarchical SPJ query over Q_ind inputs (Def. 9.2)"],
        )

    # Definition 9.1: π_A $_{A;γ}(σ_ψ(Q1 × ... × Qn)) with the underlying
    # SPJ query hierarchical.
    node = query
    head = None
    if isinstance(node, Project):
        head = node.attributes
        node = node.child
    if isinstance(node, GroupAgg):
        agg = node
        inner_block = flatten_spj(agg.child)
        if all(_is_qind(leaf, catalog, ti) for leaf in inner_block.leaves):
            spj_view = Project(agg.child, agg.groupby)
            if is_hierarchical(spj_view, catalog):
                if head is None or set(head) <= set(agg.groupby):
                    return Classification(
                        QueryClass.QHIE,
                        [
                            "grouped aggregation over a hierarchical join "
                            "of Q_ind queries (Def. 9.1)"
                        ],
                    )
    return None


def _peel_project_select(query: Query):
    """Strip one optional ``π`` and any ``σ`` layers; returns
    ``(core, head, atoms)`` with ``head=None`` when no projection."""
    head = None
    if isinstance(query, Project):
        head = query.attributes
        query = query.child
    atoms = []
    while isinstance(query, Select):
        atoms.extend(query.predicate.atoms())
        query = query.child
    return query, head, atoms
