"""Unit tests for semiring-aware normalisation."""

import math

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, ZERO, SConst, Var, sprod, ssum
from repro.algebra.monoid import MIN, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.simplify import Normalizer, normalize


class TestBooleanRewrites:
    def test_absorption_on_true(self):
        # ⊤ + Φ = ⊤
        assert normalize(ssum([ONE, Var("x")]), BOOLEAN) == ONE

    def test_sum_idempotence(self):
        assert normalize(ssum([Var("x"), Var("x")]), BOOLEAN) == Var("x")

    def test_prod_idempotence(self):
        expr = sprod([Var("x"), Var("x"), Var("y")])
        assert normalize(expr, BOOLEAN) == sprod([Var("x"), Var("y")])

    def test_large_constants_coerce(self):
        # After substitutions, N-style constants collapse to 0/1 in B.
        assert normalize(SConst(1), BOOLEAN) == ONE

    def test_zero_sum_stays(self):
        assert normalize(ssum([ZERO, Var("x")]), BOOLEAN) == Var("x")


class TestNaturalsRewrites:
    def test_constants_fold_arithmetically(self):
        expr = ssum([SConst(2), SConst(3), Var("x")])
        result = normalize(expr, NATURALS)
        assert SConst(5) in result.children

    def test_no_idempotence_in_naturals(self):
        # x + x must NOT collapse under bag semantics.
        expr = ssum([Var("x"), Var("x")])
        result = normalize(expr, NATURALS)
        assert len(result.children) == 2

    def test_product_constants_fold(self):
        expr = sprod([SConst(2), SConst(3), Var("x")])
        result = normalize(expr, NATURALS)
        assert SConst(6) in result.children

    def test_zero_product_annihilates(self):
        expr = sprod([SConst(2), SConst(0), Var("x")])
        assert normalize(expr, NATURALS) == ZERO


class TestModuleRewrites:
    def test_variable_free_tensor_folds(self):
        expr = tensor(SConst(3), MConst(SUM, 5))
        assert normalize(expr, NATURALS) == MConst(SUM, 15)
        assert normalize(tensor(SConst(1), MConst(SUM, 5)), BOOLEAN) == MConst(SUM, 5)

    def test_zero_scalar_folds_to_module_zero(self):
        expr = tensor(SConst(0), MConst(MIN, 5))
        assert normalize(expr, BOOLEAN) == MConst(MIN, math.inf)

    def test_aggsum_constants_fold(self):
        # The constants fold to min(7, 3) = 3, which then dominates the
        # optional 9-valued term (min(3, x ? 9 : +∞) = 3 in every world),
        # so the whole sum collapses to the certain constant.
        expr = aggsum(
            MIN,
            [tensor(Var("x"), MConst(MIN, 9)), MConst(MIN, 7), MConst(MIN, 3)],
        )
        result = normalize(expr, BOOLEAN)
        assert result == MConst(MIN, 3)

    def test_aggsum_dominated_terms_drop(self):
        # A certain 5 keeps the optional 2 (it can lower the minimum) but
        # drops the optional 9 (it never can).
        expr = aggsum(
            MIN,
            [
                tensor(Var("x"), MConst(MIN, 9)),
                tensor(Var("y"), MConst(MIN, 2)),
                MConst(MIN, 5),
            ],
        )
        result = normalize(expr, BOOLEAN)
        assert MConst(MIN, 5) in result.children
        assert tensor(Var("y"), MConst(MIN, 2)) in result.children
        assert len(result.children) == 2

    def test_comparison_folds_after_normalisation(self):
        # [2 ⊗ 5 <= 12] has no variables: folds to 0/1 via evaluation.
        expr = compare(tensor(SConst(2), MConst(SUM, 5)), "<=", MConst(SUM, 12))
        assert normalize(expr, NATURALS) == ONE


class TestNormalizerBehaviour:
    def test_memoisation_returns_same_object(self):
        normalizer = Normalizer(BOOLEAN)
        expr = ssum([Var("x"), Var("y")])
        assert normalizer(expr) is normalizer(expr)

    def test_normalisation_preserves_semantics(self):
        from repro.algebra.valuation import Valuation

        expr = ssum([sprod([Var("x"), Var("x")]), Var("y"), ZERO])
        simplified = normalize(expr, BOOLEAN)
        for x in (False, True):
            for y in (False, True):
                nu = Valuation({"x": x, "y": y}, BOOLEAN)
                assert nu(expr) == nu(simplified)

    def test_idempotent(self):
        expr = ssum([sprod([Var("x"), Var("x")]), SConst(2)])
        once = normalize(expr, NATURALS)
        twice = normalize(once, NATURALS)
        assert once == twice
