"""Tests for ``Session.explain`` — the step-I pipeline report."""

from repro import connect


def make_session():
    s = connect()
    items = s.table("items", ["name", "price", "cat"])
    items.insert(("inkjet", 99, 1), p=0.7)
    items.insert(("laser", 300, 1), p=0.5)
    cats = s.table("cats", ["cat_id", "label"])
    cats.insert((1, "printers"))
    return s


class TestExplain:
    def test_shows_logical_and_physical_sections(self):
        s = make_session()
        text = s.explain(
            "SELECT name, label FROM items, cats WHERE cat = cat_id"
        )
        assert "== logical plan ==" in text
        assert "== physical plan ==" in text
        assert "HashJoin" in text
        assert "Scan[items]" in text and "Scan[cats]" in text

    def test_reports_fired_rules(self):
        s = make_session()
        text = s.explain(
            "SELECT name FROM items WHERE price <= 100 AND price <= 100"
        )
        assert "rules fired:" in text
        assert "merge-selections" in text or "pushdown-projections" in text

    def test_optimize_false_skips_rules(self):
        s = make_session()
        text = s.explain("SELECT name FROM items", optimize=False)
        assert "rules fired: (none)" in text

    def test_accepts_builders_and_ast(self):
        s = make_session()
        builder = s.table("items").select("name")
        text = s.explain(builder)
        assert "Scan[items]" in text

    def test_explain_does_not_evaluate(self):
        s = make_session()
        # 10^6-row cross products would hang if explain executed the plan;
        # here we simply check explain leaves the tables untouched.
        before = {name: len(t) for name, t in s.tables.items()}
        s.explain("SELECT name, label FROM items, cats WHERE cat = cat_id")
        assert {name: len(t) for name, t in s.tables.items()} == before
