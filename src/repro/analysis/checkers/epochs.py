"""Cache-epoch discipline checker.

The mutable-table work keys every memoised view (row scans, hash
indexes, columnar layouts, bound plans) on a per-object **epoch**
counter instead of the row count — an equal-size in-place update changes
no ``len()`` and would serve stale caches forever.  The discipline is
structural and therefore statically checkable:

``cache-epoch``
    A method of a *cache-bearing* class (one that stores memoised state
    in ``*_cache`` attributes) mutates its row storage (``self.rows`` /
    ``self._tuples`` — rebinding, item store/delete, or a mutating
    method such as ``.append`` / ``.pop`` / ``.clear``) without bumping
    the epoch in the same function: no ``self._version`` write and no
    ``self.invalidate_caches()`` / ``self.bump_epoch()`` call.

``__init__``-family methods are exempt (they populate storage before
any cache exists), as are ``*_locked`` helpers whose callers own the
bump, matching the lock checker's conventions.  Classes without cache
attributes are ignored entirely — plain row containers owe nobody an
epoch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import EXEMPT_METHODS, LOCKED_SUFFIX
from repro.analysis.runner import AnalysisContext, BaseChecker
from repro.analysis.source import SourceModule

__all__ = ["CacheEpochChecker", "ROW_STORAGE_ATTRS", "EPOCH_BUMP_CALLS"]

#: Attributes holding the row storage the memoised views derive from.
ROW_STORAGE_ATTRS = frozenset({"rows", "_tuples"})

#: ``self.<name>(...)`` calls that count as an epoch bump.
EPOCH_BUMP_CALLS = frozenset({"invalidate_caches", "bump_epoch"})

#: The epoch counter attribute; any write to it counts as a bump.
EPOCH_ATTR = "_version"

#: Method names treated as mutations of the receiver (superset of the
#: lock checker's list: sort/reverse reorder rows, which invalidates
#: positional caches just as surely as growth does).
_MUTATING_METHODS = frozenset({
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "appendleft",
    "popleft",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_attribute(node: ast.expr) -> str | None:
    """``name`` when ``node`` is ``self.<name>`` (unwrapping subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _class_cache_attrs(cls: ast.ClassDef) -> set[str]:
    """The ``*_cache`` attributes a class assigns on ``self`` anywhere."""
    caches: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None and attr.endswith("_cache"):
                    caches.add(attr)
    return caches


def _row_mutations(fn: ast.AST) -> Iterator[tuple[ast.AST, str, str]]:
    """Yield ``(node, attr, how)`` for each row-storage mutation in ``fn``."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attribute(target)
                if attr in ROW_STORAGE_ATTRS:
                    yield node, attr, "assigns"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attribute(target)
                if attr in ROW_STORAGE_ATTRS:
                    yield node, attr, "deletes from"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                attr = _self_attribute(func.value)
                if attr in ROW_STORAGE_ATTRS:
                    yield node, attr, f"calls .{func.attr}() on"


def _bumps_epoch(fn: ast.AST) -> bool:
    """Whether ``fn`` writes ``self._version`` or calls a bump helper."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if _self_attribute(target) == EPOCH_ATTR:
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in EPOCH_BUMP_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                return True
    return False


class CacheEpochChecker(BaseChecker):
    """Row-storage mutations in cache-bearing classes must bump the epoch."""

    name = "epochs"
    rules = ("cache-epoch",)

    def check_module(
        self, module: SourceModule, context: AnalysisContext
    ) -> Iterator[Finding]:
        for statement in module.tree.body:
            if not isinstance(statement, ast.ClassDef):
                continue
            caches = _class_cache_attrs(statement)
            if not caches:
                continue
            for item in statement.body:
                if not isinstance(item, _FUNCTION_NODES):
                    continue
                if item.name in EXEMPT_METHODS or item.name.endswith(
                    LOCKED_SUFFIX
                ):
                    continue
                if _bumps_epoch(item):
                    continue
                for node, attr, how in _row_mutations(item):
                    yield Finding(
                        file=module.path,
                        line=getattr(node, "lineno", item.lineno),
                        rule_id="cache-epoch",
                        severity="error",
                        message=(
                            f"{statement.name}.{item.name} {how} "
                            f"self.{attr} but never bumps the epoch: the "
                            f"memoised {sorted(caches)} views key on "
                            f"self.{EPOCH_ATTR} and will serve stale data; "
                            f"add 'self.{EPOCH_ATTR} += 1' or call "
                            f"self.invalidate_caches()"
                        ),
                    )
