"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` binds :class:`FaultSpec` entries to *named fault
points* — bare ``fault_point("pool.worker")`` calls instrumented at
the seams of the stack.  When no plan is installed (the default, and
always in production) every fault point is a strict no-op: one module
global read and an immediate return.

Fault kinds
-----------

``crash``
    ``os._exit`` — an abrupt worker death (SIGKILL-like).
``hang``
    Sleep for a very long time — a wedged worker, caught only by the
    pool watchdog.
``slow``
    Sleep ``delay`` seconds — injected latency.
``pickle``
    Raise :class:`pickle.PicklingError` — a payload/result that cannot
    cross the process boundary.
``io``
    Raise :class:`ConnectionError` — a transient network/IO failure
    (bound with ``times=N`` it models a fault that heals after N hits).

``crash``, ``hang`` and ``pickle`` only fire inside forked pool worker
processes (``multiprocessing.parent_process() is not None``): the
parent's serial fallback rerun of the same payloads is then fault-free,
which is what lets the chaos conformance grid assert bit-identical
answer fingerprints under injected faults.  ``slow`` and ``io`` fire
anywhere.

Determinism: hit counters and per-point seeded RNGs (for ``rate``-based
faults) live on the plan, so a given ``(plan, seed)`` always fires the
same faults at the same hits within one process.  Forked workers
inherit the plan by copy-on-write — each worker process counts its own
hits independently.

Fault-point catalogue (instrumented in this codebase):

==========================  ====================================================
``pool.worker``             per task, inside the forked worker (``_invoke``)
``engine.sprout.row``       per result row, before compiling its probability
``engine.approx.round``     per approximate refinement round
``engine.montecarlo.round`` per Monte-Carlo doubling round
``engine.montecarlo.world`` per sample in the per-world fallback path
``server.http.request``     per HTTP ``POST /query`` dispatch
``server.tcp.line``         per TCP request line dispatch
``server.codec.encode``     per result encoded onto the wire
==========================  ====================================================
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import QueryValidationError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear_plan",
    "fault_plan",
    "fault_point",
    "in_worker_process",
    "install_plan",
]

#: The supported fault kinds.
FAULT_KINDS = ("crash", "hang", "slow", "pickle", "io")

#: Kinds that only fire inside forked pool workers, so the parent's
#: serial fallback rerun stays fault-free and answers deterministic.
_WORKER_ONLY = frozenset({"crash", "hang", "pickle"})

#: How long a "hang" sleeps when no explicit delay is given — far past
#: any watchdog timeout, close enough to forever for a test suite.
_HANG_FOREVER = 3600.0

#: Default injected latency of a "slow" fault.
_SLOW_DEFAULT = 0.01


@dataclass(frozen=True)
class FaultSpec:
    """One fault bound to a fault point.

    ``times``
        Fire for at most this many eligible hits (None: every hit).
    ``rate``
        Fire each eligible hit with this probability, decided by the
        plan's per-point seeded RNG (None: fire deterministically).
    ``delay``
        Sleep length for ``slow``/``hang`` (None: kind default).
    ``after``
        Skip the first ``after`` hits before becoming eligible.
    """

    kind: str
    times: "int | None" = 1
    rate: "float | None" = None
    delay: "float | None" = None
    after: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise QueryValidationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.times is not None and (
            not isinstance(self.times, int) or self.times < 1
        ):
            raise QueryValidationError(
                f"fault times must be a positive int or None, "
                f"got {self.times!r}"
            )
        if self.rate is not None and not 0.0 < self.rate <= 1.0:
            raise QueryValidationError(
                f"fault rate must be in (0, 1], got {self.rate!r}"
            )
        if self.delay is not None and self.delay < 0:
            raise QueryValidationError(
                f"fault delay must be >= 0, got {self.delay!r}"
            )
        if not isinstance(self.after, int) or self.after < 0:
            raise QueryValidationError(
                f"fault after must be a non-negative int, got {self.after!r}"
            )


class FaultPlan:
    """A seeded set of faults, installable as the process-wide plan."""

    def __init__(self, faults=None, seed: int = 0):
        self.faults: "dict[str, FaultSpec]" = dict(faults or {})
        self.seed = seed
        self.hits: "dict[str, int]" = {}
        self.fires: "dict[str, int]" = {}
        #: ``(point, kind)`` log of faults that actually fired in *this*
        #: process (forked workers keep their own copies).
        self.fired: "list[tuple[str, str]]" = []
        self._rngs: "dict[str, random.Random]" = {}
        self._lock = threading.Lock()

    def add(self, point: str, kind: str, **options) -> "FaultPlan":
        """Bind a fault to a point; chainable."""
        self.faults[point] = FaultSpec(kind, **options)
        return self

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            # str seeds hash deterministically through random.seed().
            rng = self._rngs[point] = random.Random(f"{self.seed}:{point}")
        return rng

    def decide(self, point: str) -> "FaultSpec | None":
        """Count a hit at ``point``; return the spec iff it fires now."""
        spec = self.faults.get(point)
        if spec is None:
            return None
        with self._lock:
            hit = self.hits.get(point, 0)
            self.hits[point] = hit + 1
            if hit < spec.after:
                return None
            if spec.kind in _WORKER_ONLY and not in_worker_process():
                return None
            if spec.times is not None and self.fires.get(point, 0) >= spec.times:
                return None
            if spec.rate is not None and self._rng(point).random() >= spec.rate:
                return None
            self.fires[point] = self.fires.get(point, 0) + 1
            self.fired.append((point, spec.kind))
            return spec

    def __repr__(self) -> str:
        binding = ", ".join(
            f"{point}={spec.kind}" for point, spec in sorted(self.faults.items())
        )
        return f"FaultPlan({binding or 'empty'}, seed={self.seed})"


#: The installed plan.  Module global so forked pool workers inherit it
#: by copy-on-write; ``None`` means every fault point is a no-op.
_PLAN: "FaultPlan | None" = None


def install_plan(plan: FaultPlan) -> FaultPlan:
    global _PLAN
    _PLAN = plan
    return plan


def clear_plan() -> None:
    global _PLAN
    _PLAN = None


def active_plan() -> "FaultPlan | None":
    return _PLAN


@contextmanager
def fault_plan(plan: FaultPlan):
    """Install ``plan`` for the enclosed block, then clear it."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


def in_worker_process() -> bool:
    """True inside a forked pool worker (has a multiprocessing parent)."""
    return multiprocessing.parent_process() is not None


def fault_point(name: str) -> None:
    """A named chaos seam.  Strict no-op unless a plan is installed."""
    if _PLAN is None:
        return
    spec = _PLAN.decide(name)
    if spec is None:
        return
    if spec.kind == "crash":
        os._exit(23)
    elif spec.kind == "hang":
        time.sleep(_HANG_FOREVER if spec.delay is None else spec.delay)
    elif spec.kind == "slow":
        time.sleep(_SLOW_DEFAULT if spec.delay is None else spec.delay)
    elif spec.kind == "pickle":
        raise pickle.PicklingError(f"injected pickle fault at {name!r}")
    elif spec.kind == "io":
        raise ConnectionError(f"injected transient IO fault at {name!r}")
