"""Lower a physical plan to one fused Python kernel (plan-to-code).

The emitter turns a :mod:`repro.query.physical` tree into the source of a
single function

``def _kernel(_world, _st, _trace, _ckd): ...``

whose body is a flat sequence of *blocks*.  Pipeline-safe operators —
scans, filters, hash-join probes, nested-loop probes, reorders, extends —
fuse into one loop nest; operators whose semantics require a
materialised mapping (projection and union, which merge duplicate keys,
and group-aggregation, which folds groups) or whose result is shared by
several consumers start a new block.  Fusion is exact because every
pipeline operator preserves key uniqueness (tuple concatenation over
unique-keyed inputs is injective, reorder is a permutation, filter is a
subset), so streaming rows into a plain dict assignment reproduces the
interpreter's mapping — content *and* insertion order.

Common-subexpression elimination happens at two levels:

* **shared subplans** — physical operators are structurally hashable, so
  a subtree appearing under several consumers (``op in shared``) is
  materialised once into a CSE temp and each consumer iterates the temp;
* **world-invariant work** — every block first consults the ``_st``
  statics mapping (``_tN = _st.get('bK')``).  A bound plan
  (:mod:`repro.codegen.binding`) pre-populates ``_st`` with the scans,
  hash-index builds, join build sides and whole subplan results that
  only touch deterministic tables, hoisting them out of the per-world
  loop entirely.

``_trace`` (a callable or None) fires once per *computed* block — the
test suite uses it to prove a shared subplan is evaluated exactly once —
and ``_ckd`` (``check_deadline`` or None) fires at the same block
boundaries so the PR-7 resilience contracts hold inside compiled
execution.

Semiring arithmetic is baked in: the Boolean semiring becomes ``or`` /
``and`` literals, the naturals become ``+`` / ``*``, and any other
semiring goes through constants bound into the kernel's namespace.  The
same specialisation applies to the standard aggregation monoids inside
group-aggregation folds, replicating the interpreter's
``acc = monoid.add(acc, monoid.act(mult, contribution, semiring))``
update expression-for-expression so float results stay bit-identical.
"""

from __future__ import annotations

import math
import time
from collections import Counter

from repro.algebra.monoid import (
    CountMonoid,
    MaxMonoid,
    MinMonoid,
    ProdMonoid,
    SumMonoid,
)
from repro.algebra.semiring import BooleanSemiring, NaturalsSemiring
from repro.codegen.runtime import (
    KERNEL_GLOBALS,
    CodegenUnsupported,
    record_compile,
)
from repro.query.physical import (
    EmptyResult,
    ExtendOp,
    Filter,
    GroupAggOp,
    HashJoin,
    NestedLoopProduct,
    PhysicalOp,
    ProjectOp,
    ReorderOp,
    Scan,
    UnionOp,
    explain_plan,
)
from repro.query.predicates import AttrRef

__all__ = ["CompiledPlan", "compile_plan"]


#: Comparison symbols whose Python spelling is identical in value to the
#: registered ``ComparisonOp`` (all of them are thin ``operator`` wrappers).
_COMPARE_SYMBOLS = {
    "=": "==",
    "!=": "!=",
    "<=": "<=",
    ">=": ">=",
    "<": "<",
    ">": ">",
}

#: Operators that force a materialisation block: they merge duplicate
#: keys (π, ∪) or fold groups ($), so they cannot stream row-at-a-time
#: into a plain assignment.
_MERGE_OPS = (ProjectOp, UnionOp, GroupAggOp)


class _Emitter:
    def __init__(self, plan: PhysicalOp, semiring):
        self.plan = plan
        self.semiring = semiring
        if type(semiring) is BooleanSemiring:
            self.kind = "B"
        elif type(semiring) is NaturalsSemiring:
            self.kind = "N"
        else:
            self.kind = "G"
        counts: Counter = Counter()
        for op in plan.walk():
            counts[op] += 1
        self.counts = counts
        self.shared = {
            op
            for op, n in counts.items()
            if n > 1 and not isinstance(op, (Scan, EmptyResult))
        }
        self.blocks: list[list[str]] = []
        self.stack: list[list[str]] = []
        self.temp_memo: dict = {}
        self.consts: dict[str, object] = {}
        self._const_names: dict[int, str] = {}
        self.scan_names: list[str] = []
        self.index_sites: list[tuple] = []
        self.block_sites: list[tuple] = []
        self.block_scans: dict[str, tuple[str, ...]] = {}
        self.trace_labels: dict[str, str] = {}
        self._n = 0
        self._sites = 0

    # -- small helpers --------------------------------------------------------

    def sym(self, prefix: str) -> str:
        self._n += 1
        return f"_{prefix}{self._n}"

    def emit(self, depth: int, line: str = "") -> None:
        self.stack[-1].append("    " * depth + line if line else "")

    def const(self, value) -> str:
        """An expression for ``value``: a literal when repr round-trips,
        otherwise a name bound in the kernel namespace."""
        if value is None or value is True or value is False:
            return repr(value)
        t = type(value)
        if t is int or t is str:
            return repr(value)
        if t is float and math.isfinite(value):
            return repr(value)
        name = self._const_names.get(id(value))
        if name is None:
            name = f"_k{len(self.consts)}"
            self.consts[name] = value
            self._const_names[id(value)] = name
        return name

    def mul_expr(self, a: str, b: str) -> str:
        if self.kind == "B":
            return f"({a} and {b})"
        if self.kind == "N":
            return f"({a} * {b})"
        return f"{self.const(self.semiring)}.mul({a}, {b})"

    def add_expr(self, a: str, b: str) -> str:
        if self.kind == "B":
            return f"({a} or {b})"
        if self.kind == "N":
            return f"({a} + {b})"
        return f"{self.const(self.semiring)}.add({a}, {b})"

    def zero_expr(self) -> str:
        if self.kind == "B":
            return "False"
        if self.kind == "N":
            return "0"
        return f"{self.const(self.semiring)}.zero"

    def one_expr(self) -> str:
        if self.kind == "B":
            return "True"
        if self.kind == "N":
            return "1"
        return f"{self.const(self.semiring)}.one"

    @staticmethod
    def key_expr(var: str, indices) -> str:
        if not indices:
            return "()"
        if len(indices) == 1:
            return f"({var}[{indices[0]}],)"
        return "(" + ", ".join(f"{var}[{i}]" for i in indices) + ")"

    @staticmethod
    def tuple_expr(parts) -> str:
        return "(" + "".join(f"{part}, " for part in parts) + ")"

    def new_site(self, op: PhysicalOp, kind: str, extra=None) -> str:
        key = f"b{self._sites}"
        self._sites += 1
        self.block_sites.append((key, kind, op, extra))
        # The site's world-dependency scope: every base table the block's
        # subtree can read.  Binding hoists the block iff all of these are
        # deterministic; the kernel verifier proves the emitted body reads
        # nothing outside this set.
        self.block_scans[key] = tuple(
            sorted(
                {node.name for node in op.walk() if isinstance(node, Scan)}
            )
        )
        self.trace_labels[key] = op.label()
        return key

    # -- materialisation blocks ----------------------------------------------

    def materialize(self, op: PhysicalOp) -> str:
        """Emit (once) a top-level block computing ``op`` into a dict temp
        guarded by its statics slot; return the temp's name."""
        tv = self.temp_memo.get(op)
        if tv is not None:
            return tv
        tv = self.sym("t")
        self.temp_memo[op] = tv
        key = self.new_site(op, "dict")
        buf: list[str] = []
        self.stack.append(buf)
        shared = f"  (shared x{self.counts[op]})" if op in self.shared else ""
        self.emit(1, f"# {key}: {tv} := {op.label()}{shared}")
        self.emit(1, f"{tv} = _st.get('{key}')")
        self.emit(1, f"if {tv} is None:")
        self.emit(2, f"if _ckd is not None: _ckd('codegen:{type(op).__name__}')")
        self.emit(2, f"if _trace is not None: _trace('{key}')")
        self.emit_block_body(op, tv, 2)
        self.stack.pop()
        buf.append("")
        self.blocks.append(buf)
        return tv

    def emit_block_body(self, op: PhysicalOp, tv: str, depth: int) -> None:
        if isinstance(op, ProjectOp):
            loops = self.prepare_stream(op.child, depth)
            indices = [op.child.schema.index(a) for a in op.attributes]
            self.emit(depth, f"{tv} = {{}}")

            def sink(v, m, d):
                pv = self.sym("p")
                self.emit(d, f"{pv} = {self.key_expr(v, indices)}")
                self.emit_merge(tv, pv, m, d)

            loops(sink, depth)
        elif isinstance(op, UnionOp):
            self.emit(depth, f"{tv} = {{}}")
            left_loops = self.prepare_stream(op.left, depth)
            left_loops(lambda v, m, d: self.emit(d, f"{tv}[{v}] = {m}"), depth)
            right_loops = self.prepare_stream(op.right, depth)
            right_loops(lambda v, m, d: self.emit_merge(tv, v, m, d), depth)
        elif isinstance(op, GroupAggOp):
            self.emit_group_agg(op, tv, depth)
        else:
            # Pipeline root (or a shared pipeline subtree): plain
            # assignment, exactly the interpreter's dict construction.
            loops = self.prepare_stream(op, depth, fuse_root=True)
            self.emit(depth, f"{tv} = {{}}")
            loops(lambda v, m, d: self.emit(d, f"{tv}[{v}] = {m}"), depth)

    def emit_merge(self, tv: str, v: str, m: str, d: int) -> None:
        """The interpreter's ``_merge_into``: sum annotations, drop zeros."""
        cu = self.sym("u")
        cb = self.sym("x")
        self.emit(d, f"{cu} = {tv}.get({v})")
        self.emit(d, f"if {cu} is None:")
        self.emit(d + 1, f"{tv}[{v}] = {m}")
        self.emit(d, "else:")
        self.emit(d + 1, f"{cb} = {self.add_expr(cu, m)}")
        self.emit(d + 1, f"if {cb} == {self.zero_expr()}:")
        self.emit(d + 2, f"del {tv}[{v}]")
        self.emit(d + 1, "else:")
        self.emit(d + 2, f"{tv}[{v}] = {cb}")

    # -- streaming ------------------------------------------------------------

    def prepare_stream(self, op: PhysicalOp, depth: int, fuse_root: bool = False):
        """Emit world-invariant setup for ``op``'s pipeline at ``depth``
        (scan lookups, build-side hash tables, product partner lists) and
        return ``loops(sink, depth)`` emitting the row loop itself."""
        if not fuse_root and (isinstance(op, _MERGE_OPS) or op in self.shared):
            tv = self.materialize(op)
            return self._dict_loops(tv)
        if isinstance(op, Scan):
            wv = self.sym("w")
            if op.name not in self.scan_names:
                self.scan_names.append(op.name)
            self.emit(depth, f"{wv} = _st.get({'t:' + op.name!r})")
            self.emit(depth, f"if {wv} is None:")
            self.emit(depth + 1, f"{wv} = _table(_world, {op.name!r})")
            return self._dict_loops(wv)
        if isinstance(op, EmptyResult):
            return lambda sink, d: None
        if isinstance(op, Filter):
            inner = self.prepare_stream(op.child, depth)
            guards = self.compile_filter(op)

            def loops(sink, d):
                inner(lambda v, m, dd: (guards(v, dd), sink(v, m, dd)), d)

            return loops
        if isinstance(op, ReorderOp):
            inner = self.prepare_stream(op.child, depth)
            indices = [op.child.schema.index(a) for a in op.attributes]

            def loops(sink, d):
                def reorder(v, m, dd):
                    nv = self.sym("v")
                    self.emit(dd, f"{nv} = {self.key_expr(v, indices)}")
                    sink(nv, m, dd)

                inner(reorder, d)

            return loops
        if isinstance(op, ExtendOp):
            inner = self.prepare_stream(op.child, depth)
            index = op.child.schema.index(op.source)

            def loops(sink, d):
                def extend(v, m, dd):
                    nv = self.sym("v")
                    self.emit(dd, f"{nv} = {v} + ({v}[{index}],)")
                    sink(nv, m, dd)

                inner(extend, d)

            return loops
        if isinstance(op, HashJoin):
            return self._prepare_hash_join(op, depth)
        if isinstance(op, NestedLoopProduct):
            return self._prepare_product(op, depth)
        raise CodegenUnsupported(
            f"no code generation for operator {type(op).__name__}"
        )

    def _dict_loops(self, var: str):
        def loops(sink, d):
            v = self.sym("v")
            m = self.sym("m")
            self.emit(d, f"for {v}, {m} in {var}.items():")
            sink(v, m, d + 1)

        return loops

    def _prepare_hash_join(self, op: HashJoin, depth: int):
        right_indices = tuple(op.right.schema.index(a) for a in op.right_keys)
        left_indices = [op.left.schema.index(a) for a in op.left_keys]
        bk = self.sym("b")
        if isinstance(op.right, Scan):
            # Base-table build side: the world relation's (cached) hash
            # index, exactly as the interpreter builds it.
            key = f"i:{op.right.name}:{','.join(op.right_keys)}"
            if op.right.name not in self.scan_names:
                self.scan_names.append(op.right.name)
            self.index_sites.append(
                (key, op.right.name, tuple(op.right_keys), right_indices)
            )
            self.emit(depth, f"{bk} = _st.get({key!r})")
            self.emit(depth, f"if {bk} is None:")
            self.emit(
                depth + 1,
                f"{bk} = _index(_world, {op.right.name!r}, "
                f"{tuple(op.right_keys)!r}, {right_indices!r})",
            )
        else:
            skey = self.new_site(op.right, "index", right_indices)
            self.emit(depth, f"{bk} = _st.get('{skey}')")
            self.emit(depth, f"if {bk} is None:")
            self.emit(
                depth + 1,
                "if _ckd is not None: _ckd('codegen:HashJoinBuild')",
            )
            self.emit(depth + 1, f"if _trace is not None: _trace('{skey}')")
            inner = self.prepare_stream(op.right, depth + 1)
            self.emit(depth + 1, f"{bk} = {{}}")

            def build(v, m, d):
                kv = self.sym("k")
                bu = self.sym("g")
                self.emit(d, f"{kv} = {self.key_expr(v, right_indices)}")
                self.emit(d, f"{bu} = {bk}.get({kv})")
                self.emit(d, f"if {bu} is None:")
                self.emit(d + 1, f"{bk}[{kv}] = {bu} = []")
                self.emit(d, f"{bu}.append(({v}, {m}))")

            inner(build, depth + 1)
        left_loops = self.prepare_stream(op.left, depth)

        def loops(sink, d):
            def probe(v, m, dd):
                rv = self.sym("v")
                rm = self.sym("m")
                self.emit(
                    dd,
                    f"for {rv}, {rm} in "
                    f"{bk}.get({self.key_expr(v, left_indices)}, ()):",
                )
                nv = self.sym("v")
                nm = self.sym("m")
                self.emit(dd + 1, f"{nv} = {v} + {rv}")
                self.emit(dd + 1, f"{nm} = {self.mul_expr(m, rm)}")
                sink(nv, nm, dd + 1)

            left_loops(probe, d)

        return loops

    def _prepare_product(self, op: NestedLoopProduct, depth: int):
        right = op.right
        if isinstance(right, _MERGE_OPS) or right in self.shared:
            # Already a materialised dict: iterate its items per left
            # row, exactly as the interpreter iterates the right mapping.
            rv_var = self.materialize(right)
            right_iter = self._dict_loops(rv_var)
        else:
            ls = self.sym("l")
            skey = self.new_site(right, "list")
            self.emit(depth, f"{ls} = _st.get('{skey}')")
            self.emit(depth, f"if {ls} is None:")
            self.emit(
                depth + 1, "if _ckd is not None: _ckd('codegen:ProductBuild')"
            )
            self.emit(depth + 1, f"if _trace is not None: _trace('{skey}')")
            inner = self.prepare_stream(right, depth + 1)
            self.emit(depth + 1, f"{ls} = []")
            inner(
                lambda v, m, d: self.emit(d, f"{ls}.append(({v}, {m}))"),
                depth + 1,
            )

            def right_iter(sink, d):
                v = self.sym("v")
                m = self.sym("m")
                self.emit(d, f"for {v}, {m} in {ls}:")
                sink(v, m, d + 1)

        left_loops = self.prepare_stream(op.left, depth)

        def loops(sink, d):
            def outer(v, m, dd):
                def pair(rv, rm, ddd):
                    nv = self.sym("v")
                    nm = self.sym("m")
                    self.emit(ddd, f"{nv} = {v} + {rv}")
                    self.emit(ddd, f"{nm} = {self.mul_expr(m, rm)}")
                    sink(nv, nm, ddd)

                right_iter(pair, dd)

            left_loops(outer, d)

        return loops

    # -- filters --------------------------------------------------------------

    def compile_filter(self, op: Filter):
        """Compile the conjunction once; return ``guards(v, depth)``
        emitting per-row ``continue`` guards mirroring the interpreter's
        atom loop (symbolic operands drop the row)."""
        schema = op.child.schema
        atoms = list(dict.fromkeys(op.predicate.atoms()))
        dropped = len(list(op.predicate.atoms())) - len(atoms)
        plans = []
        for atom in atoms:
            operands = []
            for operand in (atom.left, atom.right):
                if isinstance(operand, AttrRef):
                    index = schema.index(operand.name)
                    operands.append(
                        ("attr", index, schema.is_aggregation(operand.name))
                    )
                else:
                    operands.append(("const", operand.value, None))
            plans.append((operands, atom.op))

        def guards(v, d):
            if dropped:
                self.emit(d, f"# cse: {dropped} duplicate predicate atom(s)")
            for (left, right), cmp_op in plans:
                exprs = []
                checks = []
                for tag, payload, is_agg in (left, right):
                    if tag == "attr":
                        expr = f"{v}[{payload}]"
                        if is_agg:
                            checks.append(expr)
                    else:
                        expr = self.const(payload)
                        if not isinstance(payload, (bool, int, float, str)):
                            checks.append(expr)
                    exprs.append(expr)
                if checks:
                    cond = " or ".join(
                        f"isinstance({expr}, _MX)" for expr in checks
                    )
                    self.emit(d, f"if {cond}:")
                    self.emit(d + 1, "continue")
                symbol = _COMPARE_SYMBOLS.get(cmp_op.symbol)
                if symbol is not None:
                    self.emit(
                        d, f"if not ({exprs[0]} {symbol} {exprs[1]}):"
                    )
                else:
                    opc = self.const(cmp_op)
                    self.emit(d, f"if not {opc}({exprs[0]}, {exprs[1]}):")
                self.emit(d + 1, "continue")

        return guards

    # -- group aggregation -----------------------------------------------------

    def emit_group_agg(self, op: GroupAggOp, tv: str, depth: int) -> None:
        child_schema = op.child.schema
        group_indices = [child_schema.index(a) for a in op.groupby]
        agg_indices = [
            None if spec.attribute is None else child_schema.index(spec.attribute)
            for spec in op.aggregations
        ]
        loops = self.prepare_stream(op.child, depth)
        g = self.sym("g")
        self.emit(depth, f"{g} = {{}}")

        def sink(v, m, d):
            kv = self.sym("k")
            bu = self.sym("g")
            self.emit(d, f"{kv} = {self.key_expr(v, group_indices)}")
            self.emit(d, f"{bu} = {g}.get({kv})")
            self.emit(d, f"if {bu} is None:")
            self.emit(d + 1, f"{g}[{kv}] = {bu} = []")
            self.emit(d, f"{bu}.append(({v}, {m}))")

        loops(sink, depth)
        if not op.groupby:
            self.emit(depth, f"if not {g}:")
            self.emit(depth + 1, f"{g}[()] = []  # $∅ always yields one tuple")
        self.emit(depth, f"{tv} = {{}}")
        kv = self.sym("k")
        ms = self.sym("r")
        self.emit(depth, f"for {kv}, {ms} in {g}.items():")
        accs = []
        updates = []
        for spec, index in zip(op.aggregations, agg_indices):
            acc = self.sym("a")
            zero, update = self._agg_update(spec, index, acc)
            self.emit(depth + 1, f"{acc} = {zero}")
            accs.append(acc)
            updates.append(update)
        if updates:
            v = self.sym("v")
            m = self.sym("m")
            self.emit(depth + 1, f"for {v}, {m} in {ms}:")
            for update in updates:
                self.emit(depth + 2, update(v, m))
        self.emit(
            depth + 1,
            f"{tv}[{kv} + {self.tuple_expr(accs)}] = {self.one_expr()}",
        )

    def _agg_update(self, spec, index, acc: str):
        """``(zero_expr, update(v, m) -> line)`` replicating the
        interpreter's ``acc = monoid.add(acc, monoid.act(m, c, sr))``."""
        monoid = spec.monoid
        mtype = type(monoid)
        count_like = index is None or isinstance(monoid, CountMonoid)

        def c(v):
            return "1" if count_like else f"{v}[{index}]"

        kind = self.kind
        if kind == "B":
            if mtype in (SumMonoid, CountMonoid):
                return "0", lambda v, m: (
                    f"{acc} = {acc} + ({c(v)} if {m} else 0)"
                )
            if mtype is MinMonoid:
                inf = self.const(math.inf)
                return inf, lambda v, m: (
                    f"{acc} = min({acc}, {c(v)} if {m} else {inf})"
                )
            if mtype is MaxMonoid:
                ninf = self.const(-math.inf)
                return ninf, lambda v, m: (
                    f"{acc} = max({acc}, {c(v)} if {m} else {ninf})"
                )
            if mtype is ProdMonoid:
                return "1", lambda v, m: (
                    f"{acc} = {acc} * ({c(v)} if {m} else 1)"
                )
        elif kind == "N":
            if mtype in (SumMonoid, CountMonoid):
                if count_like:
                    return "0", lambda v, m: f"{acc} = {acc} + {m}"
                return "0", lambda v, m: f"{acc} = {acc} + {m} * {c(v)}"
            if mtype is MinMonoid:
                inf = self.const(math.inf)
                return inf, lambda v, m: (
                    f"{acc} = min({acc}, {c(v)} if {m} > 0 else {inf})"
                )
            if mtype is MaxMonoid:
                ninf = self.const(-math.inf)
                return ninf, lambda v, m: (
                    f"{acc} = max({acc}, {c(v)} if {m} > 0 else {ninf})"
                )
            if mtype is ProdMonoid:
                return "1", lambda v, m: f"{acc} = {acc} * {c(v)} ** {m}"
        mo = self.const(monoid)
        sr = self.const(self.semiring)
        return f"{mo}.zero", lambda v, m: (
            f"{acc} = {mo}.add({acc}, {mo}.act({m}, {c(v)}, {sr}))"
        )

    # -- assembly -------------------------------------------------------------

    def build(self) -> str:
        root_buf: list[str] = []
        self.stack.append(root_buf)
        root = self.materialize(self.plan)
        self.emit(1, f"return {root}")
        self.stack.pop()
        self.blocks.append(root_buf)

        header = ["# repro.codegen kernel"]
        header.append(f"# semiring: {self.semiring.name}")
        header.append("# plan:")
        for line in explain_plan(self.plan).splitlines():
            header.append(f"#   {line}")
        if self.block_sites or self.index_sites:
            header.append("# statics / CSE temps:")
            for key, kind, op, _extra in self.block_sites:
                shared = (
                    f"  (shared x{self.counts[op]})" if op in self.shared else ""
                )
                header.append(f"#   {key} [{kind}] {op.label()}{shared}")
            for key, name, attrs, _indices in self.index_sites:
                header.append(
                    f"#   {key} [hash-index] {name} on {', '.join(attrs)}"
                )
        lines = header + ["def _kernel(_world, _st, _trace, _ckd):"]
        for buf in self.blocks:
            lines.extend(buf)
        return "\n".join(lines) + "\n"


class CompiledPlan:
    """A picklable compiled form of one physical plan.

    Carries the generated source, the constants its namespace needs, and
    the statics layout (scan slots, hash-index sites, block sites) a
    :class:`~repro.codegen.binding.BoundPlan` uses to hoist
    world-invariant work.  The exec'd function is rebuilt lazily and
    excluded from pickles, so shipping a compiled plan to a pool worker
    costs one source string.
    """

    __slots__ = (
        "plan",
        "semiring",
        "source",
        "consts",
        "scan_names",
        "index_sites",
        "block_sites",
        "block_scans",
        "trace_labels",
        "compile_seconds",
        "_fn",
    )

    def __init__(
        self,
        plan,
        semiring,
        source,
        consts,
        scan_names,
        index_sites,
        block_sites,
        block_scans,
        trace_labels,
        compile_seconds,
    ):
        self.plan = plan
        self.semiring = semiring
        self.source = source
        self.consts = consts
        self.scan_names = scan_names
        self.index_sites = index_sites
        self.block_sites = block_sites
        self.block_scans = block_scans
        self.trace_labels = trace_labels
        self.compile_seconds = compile_seconds
        self._fn = None

    @property
    def fn(self):
        fn = self._fn
        if fn is None:
            namespace = dict(KERNEL_GLOBALS)
            namespace.update(self.consts)
            exec(compile(self.source, "<repro.codegen>", "exec"), namespace)
            fn = self._fn = namespace["_kernel"]
        return fn

    def execute(self, world, statics=None, trace=None, check_deadline=None):
        """Run the kernel over one world; returns the raw result mapping."""
        return self.fn(
            world, {} if statics is None else statics, trace, check_deadline
        )

    def bind(self, db, names, supports=None):
        """Pre-instantiate everything world-invariant against ``db``.

        Returns a :class:`~repro.codegen.binding.BoundPlan` whose
        ``run_indices`` / ``run_assignment`` evaluate one world of the
        given variable ``names`` as a tight loop.  Raises
        :class:`CodegenUnsupported` when the database's annotations have
        no compiled form.
        """
        from repro.codegen.binding import BoundPlan

        return BoundPlan(self, db, names, supports)

    def __getstate__(self):
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_fn"
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        if "block_scans" not in state:
            # Pickles from before the scope metadata existed: recover the
            # scopes from the plan subtrees carried by block_sites.
            self.block_scans = {
                key: tuple(
                    sorted(
                        {
                            node.name
                            for node in op.walk()
                            if isinstance(node, Scan)
                        }
                    )
                )
                for key, _kind, op, _extra in self.block_sites
            }
        self._fn = None

    def __repr__(self):
        return (
            f"<CompiledPlan {self.semiring.name} "
            f"blocks={len(self.block_sites)} scans={len(self.scan_names)}>"
        )


def compile_plan(plan: PhysicalOp, semiring) -> CompiledPlan:
    """Compile ``plan`` into a fused kernel for ``semiring``.

    Raises :class:`CodegenUnsupported` (never anything else) when the
    plan has no compiled form; callers fall back to the interpreter.
    """
    started = time.perf_counter()
    try:
        emitter = _Emitter(plan, semiring)
        source = emitter.build()
        compile(source, "<repro.codegen>", "exec")  # surface syntax bugs now
    except CodegenUnsupported:
        raise
    except Exception as exc:  # defensive: fall back, never crash a query
        raise CodegenUnsupported(
            f"plan compilation failed: {type(exc).__name__}: {exc}"
        ) from exc
    elapsed = time.perf_counter() - started
    record_compile(elapsed)
    return CompiledPlan(
        plan,
        semiring,
        source,
        emitter.consts,
        tuple(emitter.scan_names),
        tuple(emitter.index_sites),
        tuple(emitter.block_sites),
        dict(emitter.block_scans),
        dict(emitter.trace_labels),
        elapsed,
    )
