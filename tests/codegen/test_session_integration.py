"""End-to-end: sessions, engines, specs and the wire codec.

The headline conformance property: the fingerprint of a query answer —
the canonical serialisation used by the server conformance checks — is
byte-identical with codegen on and off, for every engine and worker
count, so ``REPRO_CODEGEN`` can be flipped on a live deployment without
changing a single answer.
"""

from __future__ import annotations

import pytest

from repro.engine.spec import EvalSpec
from repro.errors import QueryValidationError
from repro.server.codec import VOLATILE_STAT_KEYS, fingerprint, spec_payload
from repro.session import connect


def shop(engine="sprout", **kwargs):
    s = connect(engine=engine, **kwargs)
    t = s.table("items", ["name", "cat", "price"])
    t.insert(("inkjet", 1, 99), p=0.5)
    t.insert(("toner", 1, 120), p=0.7)
    t.insert(("apple", 2, 1), p=0.9)
    c = s.table("cats", ["cat_id", "label"])
    c.insert((1, "office"), p=0.6)
    c.insert((2, "food"))
    return s


JOIN = "SELECT name, label FROM items, cats WHERE cat = cat_id"
GROUP = (
    "SELECT label, COUNT(*) AS n FROM items, cats "
    "WHERE cat = cat_id GROUP BY label"
)


class TestFingerprintInvariance:
    @pytest.mark.parametrize("sql", [JOIN, GROUP], ids=["join", "group"])
    @pytest.mark.parametrize("workers", [1, 2], ids=["w1", "w2"])
    def test_naive_codegen_invisible(self, sql, workers):
        prints = set()
        for codegen in (True, False):
            result = shop("naive").run(sql, workers=workers, codegen=codegen)
            prints.add(fingerprint(result))
        assert len(prints) == 1

    @pytest.mark.parametrize("sql", [JOIN, GROUP], ids=["join", "group"])
    @pytest.mark.parametrize("workers", [1, 2], ids=["w1", "w2"])
    def test_montecarlo_codegen_invisible(self, sql, workers):
        prints = set()
        for codegen in (True, False):
            result = shop("montecarlo", seed=11).run(
                sql, spec="sample", budget=256, workers=workers, codegen=codegen
            )
            prints.add(fingerprint(result))
        assert len(prints) == 1

    def test_naive_reports_codegen_used(self):
        on = shop("naive").run(JOIN, codegen=True)
        off = shop("naive").run(JOIN, codegen=False)
        assert on.stats["codegen_used"] is True
        assert on.stats["kernels_compiled"] >= 1
        assert off.stats["codegen_used"] is False
        assert off.stats["kernels_compiled"] == 0

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        result = shop("naive").run(JOIN)
        assert result.stats["codegen_used"] is False
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        again = shop("naive").run(JOIN)
        assert again.stats["codegen_used"] is True
        assert fingerprint(result) == fingerprint(again)


class TestExplainCode:
    def test_code_format_returns_kernel_source(self):
        s = shop()
        source = s.explain(JOIN, format="code")
        assert "# repro.codegen kernel" in source
        assert "statics / CSE temps" in source
        assert "def _kernel(" in source

    def test_plan_format_unchanged(self):
        s = shop()
        assert "== logical plan ==" in s.explain(JOIN)

    def test_unknown_format_rejected(self):
        with pytest.raises(QueryValidationError, match="explain format"):
            shop().explain(JOIN, format="assembly")


class TestSpecPlumbing:
    def test_spec_field_round_trips(self):
        spec = EvalSpec.make("approx", codegen=False)
        assert spec.codegen is False
        assert EvalSpec.from_json(spec.to_json()) == spec

    def test_spec_validates_codegen(self):
        with pytest.raises(QueryValidationError):
            EvalSpec(codegen="yes")

    def test_codegen_is_execution_only(self):
        assert EvalSpec(codegen=True).execution_only
        assert EvalSpec(codegen=False).execution_only
        assert not EvalSpec(mode="approx", codegen=True).execution_only

    def test_spec_payload_carries_codegen(self):
        payload = spec_payload(None, codegen=False)
        assert payload == {"codegen": False}
        assert spec_payload(None) is None

    def test_codec_treats_codegen_stats_as_volatile(self):
        assert {
            "codegen_used",
            "kernels_compiled",
            "kernel_cache_hits",
            "codegen_compile_seconds",
        } <= VOLATILE_STAT_KEYS
