"""The wire codec: lossless round-trips for every engine's results."""

import json

import pytest

from repro import EvalSpec, ProbInterval, connect, count_, sum_
from repro.errors import QueryValidationError
from repro.server.codec import (
    RemoteResult,
    SymbolicValue,
    VOLATILE_STAT_KEYS,
    decode_value,
    encode_value,
    fingerprint,
    jsonable,
    result_from_json,
    result_to_json,
    spec_payload,
)


@pytest.fixture
def session():
    s = connect(seed=11)
    t = s.table("R", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5), ("a", 20, 0.4), ("b", 30, 0.7),
    ]:
        t.insert((kind, value), p=p)
    return s


class TestIntervalCodec:
    def test_round_trip_preserves_both_endpoints(self):
        interval = ProbInterval(0.25, 0.75)
        decoded = ProbInterval.from_json(interval.to_json())
        assert decoded.low == 0.25 and decoded.high == 0.75

    def test_bare_json_dumps_would_lose_the_bracket(self):
        # The motivating bug: a ProbInterval is a float, so json.dumps
        # flattens it to the midpoint.
        assert json.loads(json.dumps(ProbInterval(0.2, 0.4))) == pytest.approx(0.3)
        assert ProbInterval(0.2, 0.4).to_json() == {"low": 0.2, "high": 0.4}

    def test_bad_payloads_raise_cleanly(self):
        for bad in (None, 3.5, {"low": 0.2}, {"low": "x", "high": 0.5}, []):
            with pytest.raises(QueryValidationError):
                ProbInterval.from_json(bad)


class TestSpecCodec:
    def test_round_trip_identity(self):
        spec = EvalSpec(mode="sample", epsilon=0.01, delta=0.1, budget=500)
        assert EvalSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip_including_nulls(self):
        spec = EvalSpec()
        payload = spec.to_json()
        assert payload["budget"] is None  # defaults are explicit nulls
        assert EvalSpec.from_json(payload) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(QueryValidationError):
            EvalSpec.from_json({"mode": "approx", "eps": 0.1})

    def test_values_validated_like_local_construction(self):
        with pytest.raises(QueryValidationError):
            EvalSpec.from_json({"budget": -5})

    def test_spec_payload_merges_overrides(self):
        payload = spec_payload("approx", epsilon=0.01)
        assert payload == {"mode": "approx", "epsilon": 0.01}
        assert spec_payload(None) is None
        assert spec_payload(None, budget=10) == {"budget": 10}
        full = spec_payload(EvalSpec(mode="sample"), budget=7)
        assert full["mode"] == "sample" and full["budget"] == 7
        with pytest.raises(QueryValidationError):
            spec_payload(3.5)


class TestResultCodec:
    @pytest.mark.parametrize("engine", ["sprout", "naive", "montecarlo"])
    def test_every_engine_round_trips(self, session, engine):
        result = session.table("R").select("kind").run(engine=engine)
        payload = result_to_json(result)
        json.dumps(payload)  # must be wire-encodable as-is
        decoded = result_from_json(payload)
        assert decoded.engine == engine
        assert decoded.columns == ["kind"]
        assert len(decoded) == len(result.rows)
        for local, remote in zip(result.rows, decoded.rows):
            assert remote.values == local.values
            assert remote.probability.low == local.probability().low
            assert remote.probability.high == local.probability().high

    def test_approx_intervals_survive(self, session):
        result = session.table("R").select("kind").run(
            engine="approx", spec=EvalSpec(mode="approx", budget=1)
        )
        decoded = result_from_json(result_to_json(result))
        widths = [row.probability.width for row in decoded.rows]
        locals_ = [row.probability().width for row in result.rows]
        assert widths == locals_

    def test_symbolic_group_agg_values_encode(self, session):
        # sprout group-agg rows carry symbolic semimodule values; a bare
        # json.dumps of those raises TypeError.
        result = (
            session.table("R").group_by("kind").agg(total=sum_("value"))
            .run(engine="sprout")
        )
        payload = result_to_json(result)
        json.dumps(payload)
        decoded = result_from_json(payload)
        symbolic = [
            value
            for row in decoded.rows
            for value in row.values
            if isinstance(value, SymbolicValue)
        ]
        assert symbolic, "expected symbolic aggregate values on the wire"

    def test_stats_always_jsonable(self, session):
        query = session.table("R").group_by("kind").agg(n=count_())
        for engine in ("sprout", "naive", "montecarlo"):
            result = query.run(engine=engine)
            json.dumps(jsonable(result.stats))
            json.dumps(jsonable(result.timings))

    def test_jsonable_is_total(self):
        exotic = {
            ("tuple", "key"): {1, 2},
            "interval": ProbInterval(0.1, 0.9),
            "nested": [object()],
        }
        encoded = jsonable(exotic)
        json.dumps(encoded)
        assert encoded["interval"] == {"low": 0.1, "high": 0.9}

    def test_remote_result_reencodes_to_same_payload(self, session):
        result = (
            session.table("R").group_by("kind").agg(total=sum_("value"))
            .run(engine="sprout")
        )
        payload = result_to_json(result)
        assert result_from_json(payload).to_json() == payload

    def test_decode_rejects_garbage(self):
        with pytest.raises(QueryValidationError):
            result_from_json({"not": "a result"})

    def test_encode_decode_value_inverse(self):
        for value in (1, 2.5, "x", None, True):
            assert decode_value(encode_value(value)) == value
        marker = decode_value({"symbolic": "x + y"})
        assert marker == SymbolicValue("x + y")
        assert encode_value(marker) == {"symbolic": "x + y"}


class TestFingerprint:
    def test_volatile_stats_do_not_change_fingerprint(self, session):
        result = session.table("R").select("kind").run(engine="sprout")
        payload = result_to_json(result)
        noisy = dict(payload)
        noisy["stats"] = dict(payload["stats"])
        for key in VOLATILE_STAT_KEYS:
            noisy["stats"][key] = 123456
        assert fingerprint(payload) == fingerprint(noisy)

    def test_answer_changes_change_fingerprint(self, session):
        result = session.table("R").select("kind").run(engine="sprout")
        payload = result_to_json(result)
        other = json.loads(json.dumps(payload))
        other["rows"][0]["probability"]["low"] += 1e-6
        assert fingerprint(payload) != fingerprint(other)

    def test_accepts_all_three_shapes(self, session):
        result = session.table("R").select("kind").run(engine="sprout")
        payload = result_to_json(result)
        assert (
            fingerprint(result)
            == fingerprint(payload)
            == fingerprint(result_from_json(payload))
        )
