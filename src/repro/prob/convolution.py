"""The convolution equations (4)-(10) of Section 5, as named operations.

:meth:`Distribution.convolve` implements the generic Proposition 1; this
module provides thin, documented wrappers binding it to the six structural
cases used at d-tree nodes:

====================  ==============================================
Equation              Operation
====================  ==============================================
Eq. (4)               semiring sum of independent annotations
Eq. (5)               semiring product of independent annotations
Eq. (6)               monoid sum of independent semimodule values
Eq. (7)               scalar action ``Φ ⊗ α``
Eq. (8) / Eq. (9)     conditional expressions ``[· θ ·]``
Eq. (10)              mutex partitioning (Shannon expansion)
====================  ==============================================
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.conditions import ComparisonOp
from repro.algebra.monoid import Monoid
from repro.algebra.semiring import Semiring
from repro.prob.distribution import Distribution

__all__ = [
    "semiring_add",
    "semiring_mul",
    "monoid_add",
    "scalar_action",
    "comparison",
    "mutex_mixture",
]


def semiring_add(
    dist_phi: Distribution, dist_psi: Distribution, semiring: Semiring
) -> Distribution:
    """Eq. (4): distribution of ``Φ + Ψ`` for independent ``Φ``, ``Ψ``."""
    return dist_phi.convolve(dist_psi, semiring.add)


def semiring_mul(
    dist_phi: Distribution, dist_psi: Distribution, semiring: Semiring
) -> Distribution:
    """Eq. (5): distribution of ``Φ · Ψ`` for independent ``Φ``, ``Ψ``."""
    return dist_phi.convolve(dist_psi, semiring.mul)


def monoid_add(
    dist_alpha: Distribution, dist_beta: Distribution, monoid: Monoid
) -> Distribution:
    """Eq. (6): distribution of ``α +_M β`` for independent ``α``, ``β``."""
    return dist_alpha.convolve(dist_beta, monoid.add)


def scalar_action(
    dist_phi: Distribution,
    dist_alpha: Distribution,
    monoid: Monoid,
    semiring: Semiring,
) -> Distribution:
    """Eq. (7): distribution of ``Φ ⊗ α`` for independent ``Φ``, ``α``."""
    return dist_phi.convolve(
        dist_alpha, lambda s, m: monoid.act(s, m, semiring)
    )


def comparison(
    dist_left: Distribution,
    dist_right: Distribution,
    op: ComparisonOp,
    semiring: Semiring,
) -> Distribution:
    """Eqs. (8)/(9): distribution of ``[left θ right]``.

    The result is a distribution over ``{0_S, 1_S}`` regardless of whether
    the operands are semiring or semimodule valued.
    """
    return dist_left.convolve(
        dist_right, lambda a, b: semiring.from_condition(op(a, b))
    )


def mutex_mixture(
    branches: Iterable[tuple[float, Distribution]]
) -> Distribution:
    """Eq. (10): ``P_Φ[s] = Σ_{s'} P_x[s'] · P_{Φ|x←s'}[s]``.

    ``branches`` pairs the probability ``P_x[s']`` of each eliminated
    value with the distribution of the corresponding restriction.
    """
    return Distribution.mixture(branches)
