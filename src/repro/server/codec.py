"""The documented JSON codec of the query-server wire protocol.

Everything the server sends — and everything the async client decodes —
goes through this module, so the encoding rules live in exactly one
place:

* :class:`~repro.engine.spec.ProbInterval` → ``{"low": l, "high": h}``.
  A bare ``json.dumps`` would serialise the float midpoint and silently
  lose the bracket; the codec keeps both endpoints.
* Symbolic row values (semimodule aggregates, semiring annotations) →
  ``{"symbolic": "<repr>"}``.  They decode to :class:`SymbolicValue`
  markers — the server keeps the compiled distributions, the wire carries
  a stable textual form.
* Row value tuples → JSON arrays (decoded back to tuples).
* ``stats``/``timings`` dictionaries → sanitised recursively by
  :func:`jsonable`: numpy scalars become Python scalars, intervals become
  low/high objects, non-string keys become strings, and anything exotic
  falls back to its ``repr`` (the wire never raises ``TypeError`` on an
  engine counter).
* A whole :class:`~repro.engine.sprout.QueryResult` →
  :func:`result_to_json`, decoded by :func:`result_from_json` into a
  :class:`RemoteResult` (values + interval probabilities + stats; the
  symbolic machinery itself does not travel).

:func:`fingerprint` canonicalises an encoded result for conformance
checks — tuples, interval endpoints and deterministic stats, with
timing/caching/parallelism counters (volatile across runs by nature)
dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.algebra.expressions import SemiringExpr
from repro.algebra.semimodule import ModuleExpr
from repro.engine.spec import EvalSpec, ProbInterval
from repro.engine.sprout import QueryResult
from repro.errors import QueryValidationError
from repro.resilience.faults import fault_point

__all__ = [
    "SymbolicValue",
    "RemoteRow",
    "RemoteResult",
    "jsonable",
    "encode_value",
    "decode_value",
    "result_to_json",
    "result_from_json",
    "fingerprint",
    "VOLATILE_STAT_KEYS",
    "DETERMINISTIC_STAT_KEYS",
]

#: Stats keys that legitimately differ between two runs of the same
#: query — wall-clock, cache warmth, and how work was parallelised —
#: and are therefore excluded from conformance fingerprints.
VOLATILE_STAT_KEYS = frozenset({
    "wall_seconds",
    "cache_hits",
    "cache_misses",
    "workers",
    "shards",
    "parallel_compiled",
    "parallel_mutex_nodes",
    "parallel_fallback",
    # Deadline outcomes depend on wall-clock, not on the answer: a run
    # that trips spec.time_limit still returns sound intervals, and how
    # many rows it finished exactly varies with machine load.
    "deadline_hit",
    "rows_exact",
    # Codegen diagnostics: whether the compiled kernels ran (and how
    # warm the kernel cache was) never changes an answer — compiled and
    # interpreted execution are bit-identical by construction — so runs
    # differing only in REPRO_CODEGEN fingerprint identically.
    "codegen_used",
    "kernels_compiled",
    "kernel_cache_hits",
    "codegen_compile_seconds",
    # Whether the vectorised batch evaluator ran depends on numpy being
    # importable, so the same seeded run fingerprints differently across
    # the with/without-numpy CI legs unless this is dropped too.
    "batched",
    # Mutation/epoch accounting.  db_generation counts *every* mutation
    # ever applied to the database, so a warm session that answered
    # through three updates reports a different generation than a fresh
    # session rebuilt from the same final data — while their answers are
    # bit-identical.  The incremental-maintenance counters likewise
    # describe how caches were patched, never what the answer is.
    "db_generation",
    "rows_changed",
    "variables_invalidated",
    "mutations_applied",
})

#: Stats keys that are a deterministic function of the query, the data
#: and the seed — the keys :func:`fingerprint` keeps.  Every stats key
#: the engines emit must appear in exactly one of these two sets; the
#: ``statskeys`` checker of :mod:`repro.analysis` enforces the union
#: statically against every ``stats[...]``/``last_run_info[...]`` write
#: in ``engine/``, ``codegen/`` and ``server/``.
DETERMINISTIC_STAT_KEYS = frozenset({
    "rows",
    "samples",
    "rounds",
    "expansions",
    "converged",
    "max_width",
    "epsilon",
    "distinct_worlds",
    "top_k_decided",
})


@dataclass(frozen=True)
class SymbolicValue:
    """Client-side marker for a symbolic (semimodule) attribute value.

    The server holds the compiled distribution; the wire carries the
    expression's textual form only.
    """

    text: str

    def __repr__(self):
        return f"SymbolicValue({self.text!r})"


def _is_numpy_scalar(value) -> bool:
    return type(value).__module__.split(".")[0] == "numpy"


def jsonable(value):
    """Recursively coerce ``value`` into JSON-encodable Python objects.

    Total: every input maps to *something* encodable (exotic objects fall
    back to their ``repr``), so serialising engine diagnostics can never
    raise.
    """
    if isinstance(value, ProbInterval):
        return value.to_json()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _is_numpy_scalar(value):
        return value.item()
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (ModuleExpr, SemiringExpr)):
        return {"symbolic": repr(value)}
    return repr(value)


def encode_value(value):
    """Encode one row attribute value for the wire."""
    if isinstance(value, (ModuleExpr, SemiringExpr)):
        return {"symbolic": repr(value)}
    if isinstance(value, SymbolicValue):
        return {"symbolic": value.text}
    if _is_numpy_scalar(value):
        return value.item()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def decode_value(value):
    """Inverse of :func:`encode_value` (symbolic markers come back as
    :class:`SymbolicValue`)."""
    if isinstance(value, dict) and set(value) == {"symbolic"}:
        return SymbolicValue(value["symbolic"])
    return value


@dataclass(frozen=True)
class RemoteRow:
    """One decoded answer tuple: concrete/symbolic values + interval."""

    values: tuple
    probability: ProbInterval


@dataclass
class RemoteResult:
    """A decoded :class:`~repro.engine.sprout.QueryResult`.

    Mirrors the local result surface a client typically consumes —
    ``columns``, rows with interval probabilities, ``stats``/``timings``
    — plus the server-side envelope: ``degraded`` is True when admission
    control rewrote the request to a budgeted anytime spec, and
    ``statement_cache_hit`` when the shared prepared-statement cache
    skipped parse/plan/compile work.
    """

    engine: str
    columns: list[str]
    rows: list[RemoteRow]
    timings: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    degraded: bool = False
    statement_cache_hit: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self, include_probability: bool = True) -> list[dict]:
        records = []
        for row in self.rows:
            record = dict(zip(self.columns, row.values))
            if include_probability:
                record["probability"] = row.probability
            records.append(record)
        return records

    def to_json(self) -> dict:
        """Re-encode as the wire payload (the inverse of decoding).

        ``result_from_json(payload).to_json() == payload``, which lets
        conformance checks :func:`fingerprint` a decoded client-side
        result against a locally computed :class:`QueryResult`.
        """
        return {
            "engine": self.engine,
            "columns": list(self.columns),
            "rows": [
                {
                    "values": [encode_value(value) for value in row.values],
                    "probability": row.probability.to_json(),
                }
                for row in self.rows
            ],
            "timings": dict(self.timings),
            "stats": dict(self.stats),
        }


def result_to_json(result: QueryResult) -> dict:
    """Encode a :class:`QueryResult` as the documented wire object."""
    fault_point("server.codec.encode")
    return {
        "engine": result.engine,
        "columns": list(result.schema.attributes),
        "rows": [
            {
                "values": [encode_value(value) for value in row.values],
                "probability": row.probability().to_json(),
            }
            for row in result.rows
        ],
        "timings": jsonable(result.timings),
        "stats": jsonable(result.stats),
    }


def result_from_json(payload: dict, **envelope) -> RemoteResult:
    """Decode the wire object back into a :class:`RemoteResult`."""
    if not isinstance(payload, dict) or "rows" not in payload:
        raise QueryValidationError(
            f"cannot decode {payload!r} as a query result"
        )
    rows = [
        RemoteRow(
            values=tuple(decode_value(value) for value in row["values"]),
            probability=ProbInterval.from_json(row["probability"]),
        )
        for row in payload["rows"]
    ]
    return RemoteResult(
        engine=payload.get("engine", "unknown"),
        columns=list(payload.get("columns", ())),
        rows=rows,
        timings=dict(payload.get("timings", {})),
        stats=dict(payload.get("stats", {})),
        **envelope,
    )


def fingerprint(result) -> str:
    """A canonical string for answer-conformance comparison.

    Accepts a local :class:`QueryResult`, a decoded client-side
    :class:`RemoteResult`, or an already encoded wire payload.  Timings and the :data:`VOLATILE_STAT_KEYS` are dropped;
    everything that defines the *answer* — tuples, interval endpoints,
    engine, deterministic convergence counters — is kept, serialised with
    sorted keys so equal answers produce byte-equal fingerprints.
    """
    if isinstance(result, QueryResult):
        payload = result_to_json(result)
    elif isinstance(result, RemoteResult):
        payload = result.to_json()
    else:
        payload = result
    stable = {
        "engine": payload["engine"],
        "columns": payload["columns"],
        "rows": payload["rows"],
        "stats": {
            key: value
            for key, value in payload.get("stats", {}).items()
            if key not in VOLATILE_STAT_KEYS
        },
    }
    return json.dumps(stable, sort_keys=True)


def spec_payload(
    spec: EvalSpec | str | dict | None,
    mode: str | None = None,
    epsilon: float | None = None,
    delta: float | None = None,
    budget: int | None = None,
    time_limit: float | None = None,
    workers: int | str | None = None,
    on_timeout: str | None = None,
    codegen: bool | None = None,
) -> dict | None:
    """Assemble the wire form of an evaluation spec from client inputs.

    Accepts the same shapes :meth:`EvalSpec.make` does (an
    :class:`EvalSpec`, a mode string, ``None``) plus an already encoded
    dict, and merges the inline keyword overrides the session API offers.
    Returns ``None`` when nothing was requested (the server then keeps
    the engines' legacy point-answer behavior).
    """
    overrides = {
        key: value
        for key, value in (
            ("mode", mode),
            ("epsilon", epsilon),
            ("delta", delta),
            ("budget", budget),
            ("time_limit", time_limit),
            ("workers", workers),
            ("on_timeout", on_timeout),
            ("codegen", codegen),
        )
        if value is not None
    }
    if isinstance(spec, EvalSpec):
        base = spec.to_json()
    elif isinstance(spec, str):
        base = {"mode": spec}
    elif isinstance(spec, dict):
        base = dict(spec)
    elif spec is None:
        if not overrides:
            return None
        base = {}
    else:
        raise QueryValidationError(
            f"cannot use {spec!r} as an evaluation spec; expected an "
            f"EvalSpec, a mode string, a dict, or None"
        )
    base.update(overrides)
    return base
