"""Serving: the async multi-tenant query server in five minutes.

Boots a :class:`~repro.server.QueryServer` in-process on ephemeral
ports, then drives it with the async :class:`~repro.server.ServerClient`:

1. two tenants run SQL over the same shared database — the second
   tenant's repeated statement is answered from the server-wide
   prepared-statement cache (no parse, no plan, no recompilation);
2. an explicit evaluation spec requests budgeted anytime answers
   (interval-valued results, exactly as with a local ``Session``);
3. the TCP streaming protocol delivers progressively tightening
   interval snapshots — consume until the current width is good enough;
4. ``GET /stats`` shows the cross-tenant cache hits and server counters.

Run with::

    python examples/server_quickstart.py
"""

import asyncio

from repro.server import QueryServer, ServerClient, ServerConfig, demo_database


async def main():
    # 1. Boot the server in-process on ephemeral ports (port=0). In
    #    production you would run `python -m repro.server --port 8642`
    #    and connect from other processes/machines.
    db = demo_database(scale=1)
    async with QueryServer(db, ServerConfig(port=0)) as server:
        host, http_port = server.http_address
        _, tcp_port = server.tcp_address
        print(f"server at http://{host}:{http_port} (tcp {tcp_port})\n")

        async with ServerClient(host, http_port, tcp_port=tcp_port) as alice, \
                   ServerClient(host, http_port, tcp_port=tcp_port) as bob:

            # 2. Two tenants, one shared database. Alice pays the parse
            #    + plan + compile cost; Bob's identical statement hits
            #    the shared prepared-statement cache.
            sql = "SELECT kind, SUM(value) AS total FROM R GROUP BY kind"
            first = await alice.query(sql, tenant="alice")
            again = await bob.query(sql, tenant="bob")
            print(f"alice: {len(first)} rows via {first.engine} "
                  f"(statement cache hit: {first.statement_cache_hit})")
            print(f"bob:   {len(again)} rows via {again.engine} "
                  f"(statement cache hit: {again.statement_cache_hit})\n")

            # 3. Anytime evaluation over the wire: the same EvalSpec
            #    surface as Session.run. Interval endpoints survive the
            #    JSON codec (a bare float would lose the bracket).
            approx = await alice.query(
                "SELECT kind FROM R WHERE value >= 20",
                tenant="alice", mode="approx", epsilon=0.05,
            )
            for row in approx:
                p = row.probability
                print(f"  {row.values[0]!r}: [{p.low:.4f}, {p.high:.4f}]")
            print()

            # 4. Streaming: one snapshot per refinement round over TCP.
            print("streaming Monte-Carlo refinement:")
            async for snap in bob.stream(
                "SELECT COUNT(*) AS n FROM R",
                tenant="bob",
                spec={"mode": "sample", "epsilon": 0.02, "budget": 4000},
            ):
                widths = max(row.probability.width for row in snap.rows)
                print(f"  snapshot via {snap.engine}: max width {widths:.4f}")
            print()

            # 5. Server-side observability: shared cache hit rates.
            stats = await alice.stats()
            for cache in ("statement_cache", "plan_cache", "distribution_cache"):
                c = stats[cache]
                print(f"{cache}: {c['hits']} hits / {c['misses']} misses "
                      f"({c['entries']} entries)")
            server_stats = stats["server"]
            print(f"served {server_stats['completed']} requests for "
                  f"{server_stats['tenants']} tenants")


if __name__ == "__main__":
    asyncio.run(main())
