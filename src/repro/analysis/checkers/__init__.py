"""The registered checkers.

``all_checkers`` is the single registration point: the CLI, the CI gate
and the self-hosting test all run exactly this list, so adding a checker
here is the whole wiring step.
"""

from __future__ import annotations

from repro.analysis.checkers.epochs import CacheEpochChecker
from repro.analysis.checkers.forksafety import ForkSafetyChecker
from repro.analysis.checkers.kernels import KernelChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.statskeys import StatsKeyChecker

__all__ = [
    "CacheEpochChecker",
    "ForkSafetyChecker",
    "KernelChecker",
    "LockDisciplineChecker",
    "StatsKeyChecker",
    "all_checkers",
]


def all_checkers() -> list:
    return [
        LockDisciplineChecker(),
        ForkSafetyChecker(),
        KernelChecker(),
        StatsKeyChecker(),
        CacheEpochChecker(),
    ]
