"""A small text parser for the Figure-2 expression grammar.

The parser accepts the notation used throughout the paper (modulo ASCII):

* semiring expressions: ``x1*y11*(z1 + z5) + x2*y21``
* tensor terms with ``@`` for ``⊗``: ``x*y @ 5``
* conditional expressions in brackets: ``[x@10 + y@20 <= 15]``

Monoid sums need a monoid: pass it as the ``monoid`` argument, e.g.
``parse_expr("x@10 + y@20", monoid=MIN)`` builds
``x ⊗ 10 +min y ⊗ 20``.  Operator precedence is ``@`` > ``*`` > ``+``.

This front-end exists for tests, examples and the interactive experience;
programmatic construction through :class:`~repro.algebra.expressions.Var`
and the smart constructors is the primary API.
"""

from __future__ import annotations

import re

from repro.algebra.conditions import COMPARISON_OPS, compare
from repro.algebra.expressions import Expr, SConst, SemiringExpr, Var, sprod, ssum
from repro.algebra.monoid import Monoid
from repro.algebra.semimodule import MConst, ModuleExpr, aggsum, tensor
from repro.errors import ParseError

__all__ = ["parse_expr", "tokenize"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<int>\d+)"
    r"|(?P<cmp><=|>=|!=|<>|==|[=<>])"
    r"|(?P<punct>[+*()\[\]@]))"
)


def tokenize(text: str) -> list[tuple[str, str, int]]:
    """Split ``text`` into ``(kind, value, position)`` tokens."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"unexpected character {text[pos]!r}", pos)
            break
        for kind in ("name", "int", "cmp", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value, match.start(kind)))
                break
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str, monoid: Monoid | None):
        self.text = text
        self.monoid = monoid
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return (None, None, len(self.text))

    def advance(self):
        token = self.peek()
        self.index += 1
        return token

    def expect(self, value: str):
        kind, got, pos = self.advance()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}", pos)

    def parse(self) -> Expr:
        expr = self.parse_sum()
        kind, value, pos = self.peek()
        if kind is not None:
            raise ParseError(f"unexpected trailing token {value!r}", pos)
        return expr

    def parse_sum(self) -> Expr:
        terms = [self.parse_product()]
        while self.peek()[1] == "+":
            self.advance()
            terms.append(self.parse_product())
        if len(terms) == 1:
            return terms[0]
        if any(isinstance(t, ModuleExpr) for t in terms):
            if self.monoid is None:
                raise ParseError(
                    "module-expression sum requires a monoid; "
                    "pass parse_expr(..., monoid=...)"
                )
            lifted = [
                t if isinstance(t, ModuleExpr) else tensor(t, MConst(self.monoid, 1))
                for t in terms
                if not (isinstance(t, SConst) and t.value == 0)
            ]
            return aggsum(self.monoid, lifted)
        return ssum(terms)

    def parse_product(self) -> Expr:
        factors = [self.parse_atom()]
        while self.peek()[1] == "*":
            self.advance()
            factors.append(self.parse_atom())
        modules = [f for f in factors if isinstance(f, ModuleExpr)]
        if modules:
            _, _, pos = self.peek()
            raise ParseError("cannot multiply semimodule expressions", pos)
        left = factors[0] if len(factors) == 1 else sprod(factors)
        if self.peek()[1] != "@":
            return left
        _, _, pos = self.advance()
        if not isinstance(left, SemiringExpr):
            raise ParseError("left side of '@' must be a semiring expression", pos)
        right = self.parse_atom()
        if isinstance(right, SConst):
            if self.monoid is None:
                raise ParseError(
                    "tensor '@' requires a monoid; pass parse_expr(..., monoid=...)",
                    pos,
                )
            right = MConst(self.monoid, right.value)
        if not isinstance(right, ModuleExpr):
            raise ParseError("right side of '@' must be a monoid value", pos)
        if self.peek()[1] == "*":
            raise ParseError(
                "cannot multiply semimodule expressions", self.peek()[2]
            )
        return tensor(left, right)

    def parse_atom(self) -> Expr:
        kind, value, pos = self.advance()
        if kind == "name":
            return Var(value)
        if kind == "int":
            return SConst(int(value))
        if value == "(":
            inner = self.parse_sum()
            self.expect(")")
            return inner
        if value == "[":
            left = self.parse_sum()
            op_kind, op_value, op_pos = self.advance()
            if op_kind != "cmp":
                raise ParseError(f"expected comparison operator, got {op_value!r}", op_pos)
            right = self.parse_sum()
            self.expect("]")
            return compare(left, COMPARISON_OPS[op_value], right)
        raise ParseError(f"unexpected token {value!r}", pos)


def parse_expr(text: str, monoid: Monoid | None = None) -> Expr:
    """Parse a semiring or semimodule expression from text.

    >>> parse_expr("x1*y11*(z1 + z5)")
    x1*y11*(z1 + z5)
    >>> from repro.algebra.monoid import MIN
    >>> parse_expr("[x@10 + y@20 <= 15]", monoid=MIN)
    [(x⊗10 +min y⊗20) <= 15]
    """
    return _Parser(text, monoid).parse()
